//! The reproduction's central correctness property: the timed DX100 engine
//! — with all its reordering, coalescing, interleaving, and condition
//! gating — produces *bit-identical* results to the functional model for
//! arbitrary instruction programs.

use dx100::common::{AluOp, DType};
use dx100::core::engine::Dx100Engine;
use dx100::core::functional::FunctionalDx100;
use dx100::core::isa::{Instruction, RegId, TileId};
use dx100::core::ports::TestPorts;
use dx100::core::{Dx100Config, MemoryImage};
use dx100::dram::DramConfig;
use proptest::prelude::*;

const T_IDX: TileId = TileId::new(0);
const T_VAL: TileId = TileId::new(1);
const T_COND: TileId = TileId::new(2);
const T_DST: TileId = TileId::new(3);
const R3: RegId = RegId::new(3);

/// One randomly generated bulk operation.
#[derive(Debug, Clone)]
enum Op {
    Gather,
    Scatter { cond: bool },
    Rmw { op: AluOp, cond: bool },
    AluThenGather { imm: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Gather),
        any::<bool>().prop_map(|cond| Op::Scatter { cond }),
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Min),
                Just(AluOp::Max),
                Just(AluOp::Xor)
            ],
            any::<bool>()
        )
            .prop_map(|(op, cond)| Op::Rmw { op, cond }),
        (1u64..7).prop_map(|imm| Op::AluThenGather { imm }),
    ]
}

#[derive(Debug, Clone)]
struct Case {
    a_len: u64,
    indices: Vec<u64>,
    values: Vec<u64>,
    conds: Vec<u64>,
    ops: Vec<Op>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (16u64..512, 1usize..48).prop_flat_map(|(a_len, n)| {
        (
            proptest::collection::vec(0..a_len.saturating_sub(8).max(1), n),
            proptest::collection::vec(any::<u32>().prop_map(|v| v as u64), n),
            proptest::collection::vec(0u64..2, n),
            proptest::collection::vec(op_strategy(), 1..5),
        )
            .prop_map(move |(indices, values, conds, ops)| Case {
                a_len,
                indices,
                values,
                conds,
                ops,
            })
    })
}

fn build_program(case: &Case, a_base: u64) -> Vec<Instruction> {
    let mut prog = Vec::new();
    for op in &case.ops {
        match op {
            Op::Gather => prog.push(Instruction::ild(DType::U32, a_base, T_DST, T_IDX)),
            Op::Scatter { cond } => {
                let mut i = Instruction::ist(DType::U32, a_base, T_IDX, T_VAL);
                if *cond {
                    i = i.with_condition(T_COND);
                }
                prog.push(i);
            }
            Op::Rmw { op, cond } => {
                let mut i = Instruction::irmw(DType::U32, *op, a_base, T_IDX, T_VAL);
                if *cond {
                    i = i.with_condition(T_COND);
                }
                prog.push(i);
            }
            Op::AluThenGather { .. } => {
                // idx2 = idx + imm (stays in bounds by construction), then
                // gather through it.
                prog.push(Instruction::Alus {
                    dtype: DType::U32,
                    op: AluOp::Add,
                    td: TileId::new(4),
                    ts: T_IDX,
                    rs: R3,
                    tc: None,
                });
                prog.push(Instruction::ild(DType::U32, a_base, T_DST, TileId::new(4)));
            }
        }
    }
    prog
}

fn fresh_image(case: &Case) -> (MemoryImage, dx100::core::ArrayHandle) {
    let mut mem = MemoryImage::new();
    let a = mem.alloc("A", DType::U32, case.a_len);
    for i in 0..case.a_len {
        mem.write_elem(a, i, (i * 2654435761) & 0xffff_ffff);
    }
    (mem, a)
}

fn small_cfg() -> Dx100Config {
    let mut cfg = Dx100Config::paper();
    cfg.tile_elems = 64;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Functional and timed execution agree on memory and tile contents.
    #[test]
    fn timed_engine_matches_functional(case in case_strategy()) {
        let imm = case.ops.iter().find_map(|o| match o {
            Op::AluThenGather { imm } => Some(*imm),
            _ => None,
        }).unwrap_or(1);

        // Functional run.
        let (mut fmem, fa) = fresh_image(&case);
        let mut fx = FunctionalDx100::new(small_cfg());
        fx.write_tile(T_IDX, &case.indices);
        fx.write_tile(T_VAL, &case.values);
        fx.write_tile(T_COND, &case.conds);
        fx.write_reg(R3, imm);
        let prog = build_program(&case, fa.base());
        fx.run(&prog, &mut fmem).expect("functional run");

        // Timed run against permissive test ports.
        let (mut tmem, ta) = fresh_image(&case);
        prop_assert_eq!(fa.base(), ta.base());
        let mut engine = Dx100Engine::new(small_cfg(), &DramConfig::ddr4_3200_2ch());
        engine.preload_ptes(0, tmem.high_water());
        engine.write_tile(T_IDX, &case.indices);
        engine.write_tile(T_VAL, &case.values);
        engine.write_tile(T_COND, &case.conds);
        engine.write_reg(R3, imm);
        for instr in &prog {
            engine.push_instruction(*instr, None).expect("legal instruction");
        }
        let mut ports = TestPorts::new(13);
        let mut now = 0;
        while !engine.is_idle() {
            while let Some(id) = ports.pop_ready(now) {
                engine.mem_response(id);
            }
            engine.tick(now, &mut tmem, &mut ports);
            prop_assert!(engine.error().is_none(), "engine halted: {:?}", engine.error());
            now += 1;
            prop_assert!(now < 4_000_000, "engine did not drain");
        }

        // Memory must agree bit for bit.
        prop_assert_eq!(tmem.to_vec(ta), fmem.to_vec(fa));
        // Destination tiles agree too.
        for t in [T_DST, TileId::new(4)] {
            if let (Some(fl), Some(tl)) = (fx.tile(t).len(), engine.tile(t).len()) {
                prop_assert_eq!(fl, tl);
                prop_assert_eq!(engine.tile(t).valid(), fx.tile(t).valid());
            }
        }
    }

    /// Ablation configurations change timing, never results.
    #[test]
    fn ablations_preserve_results(case in case_strategy(), which in 0usize..4) {
        let (mut fmem, fa) = fresh_image(&case);
        let mut fx = FunctionalDx100::new(small_cfg());
        fx.write_tile(T_IDX, &case.indices);
        fx.write_tile(T_VAL, &case.values);
        fx.write_tile(T_COND, &case.conds);
        fx.write_reg(R3, 1);
        let prog = build_program(&case, fa.base());
        fx.run(&prog, &mut fmem).expect("functional run");

        let mut cfg = small_cfg();
        match which {
            0 => cfg.reorder = false,
            1 => cfg.coalesce = false,
            2 => cfg.interleave = false,
            _ => cfg.direct_dram = false,
        }
        let (mut tmem, _) = fresh_image(&case);
        let mut engine = Dx100Engine::new(cfg, &DramConfig::ddr4_3200_2ch());
        engine.preload_ptes(0, tmem.high_water());
        engine.write_tile(T_IDX, &case.indices);
        engine.write_tile(T_VAL, &case.values);
        engine.write_tile(T_COND, &case.conds);
        engine.write_reg(R3, 1);
        for instr in &prog {
            engine.push_instruction(*instr, None).expect("legal instruction");
        }
        let mut ports = TestPorts::new(7);
        let mut now = 0;
        while !engine.is_idle() {
            while let Some(id) = ports.pop_ready(now) {
                engine.mem_response(id);
            }
            engine.tick(now, &mut tmem, &mut ports);
            now += 1;
            prop_assert!(now < 4_000_000, "engine did not drain");
        }
        prop_assert_eq!(tmem.to_vec(fa), fmem.to_vec(fa));
    }
}

/// Deterministic regression: duplicate indices in one scatter tile must
/// resolve last-writer-wins even when the columns split across requests.
#[test]
fn duplicate_index_scatter_is_sequential() {
    let mut indices = vec![5u64; 40];
    indices.extend([6, 7, 5, 5, 9]);
    let values: Vec<u64> = (0..45).collect();
    let case = Case {
        a_len: 64,
        indices,
        values,
        conds: vec![1; 45],
        ops: vec![Op::Scatter { cond: false }],
    };
    let (mut fmem, fa) = fresh_image(&case);
    let mut fx = FunctionalDx100::new(small_cfg());
    fx.write_tile(T_IDX, &case.indices);
    fx.write_tile(T_VAL, &case.values);
    fx.write_tile(T_COND, &case.conds);
    let prog = build_program(&case, fa.base());
    fx.run(&prog, &mut fmem).unwrap();
    assert_eq!(fmem.read_elem(fa, 5), 43); // last write to index 5

    let (mut tmem, _) = fresh_image(&case);
    let mut engine = Dx100Engine::new(small_cfg(), &DramConfig::ddr4_3200_2ch());
    engine.preload_ptes(0, tmem.high_water());
    engine.write_tile(T_IDX, &case.indices);
    engine.write_tile(T_VAL, &case.values);
    engine.write_tile(T_COND, &case.conds);
    for instr in &prog {
        engine.push_instruction(*instr, None).unwrap();
    }
    let mut ports = TestPorts::new(31);
    let mut now = 0;
    while !engine.is_idle() {
        while let Some(id) = ports.pop_ready(now) {
            engine.mem_response(id);
        }
        engine.tick(now, &mut tmem, &mut ports);
        now += 1;
        assert!(now < 1_000_000);
    }
    assert_eq!(tmem.read_elem(fa, 5), 43);
    assert_eq!(tmem.to_vec(fa), fmem.to_vec(fa));
}
