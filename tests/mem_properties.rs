//! Property tests on the cache hierarchy: every demand access completes
//! exactly once under random traffic (the drain property whose violation
//! was the nastiest bug class during bring-up — orphaned MSHR entries), and
//! snoop/invalidate behave like a coherence directory.

use dx100::common::{DelayQueue, LineAddr};
use dx100::mem::{Access, HierarchyConfig, MemoryHierarchy, Requester};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Traffic {
    /// (core, line, is_write, stream)
    accesses: Vec<(usize, u64, bool, u32)>,
    dram_latency: u64,
}

fn traffic() -> impl Strategy<Value = Traffic> {
    (10u64..120, 1usize..250).prop_flat_map(|(lat, n)| {
        proptest::collection::vec((0usize..4, 0u64..2000, any::<bool>(), 0u32..6), n).prop_map(
            move |accesses| Traffic {
                accesses,
                dram_latency: lat,
            },
        )
    })
}

fn small_hierarchy() -> MemoryHierarchy {
    let mut cfg = HierarchyConfig::paper_baseline(4);
    cfg.l1.size_bytes = 4 * 1024;
    cfg.l2.size_bytes = 16 * 1024;
    cfg.llc.size_bytes = 64 * 1024;
    cfg.llc.ways = 16;
    MemoryHierarchy::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once completion and full drain under random mixed traffic.
    #[test]
    fn hierarchy_conserves_accesses(t in traffic()) {
        let mut mem = small_hierarchy();
        let mut fills: DelayQueue<LineAddr> = DelayQueue::new();
        let mut to_dram = Vec::new();
        let mut seen = vec![0u32; t.accesses.len()];
        let mut issued = 0usize;
        let mut done = 0usize;
        let mut now = 0u64;
        while done < t.accesses.len() {
            // Issue a couple of accesses per cycle.
            for _ in 0..2 {
                if issued < t.accesses.len() {
                    let (core, line, w, stream) = t.accesses[issued];
                    let acc = if w {
                        Access::store(issued as u64, LineAddr(line), stream, Requester::Core(core))
                    } else {
                        Access::load(issued as u64, LineAddr(line), stream, Requester::Core(core))
                    };
                    mem.core_access(acc, now);
                    issued += 1;
                }
            }
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                if !d.is_write {
                    fills.push_at(now + t.dram_latency, d.line);
                }
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            while let Some(r) = mem.pop_core_response() {
                let idx = r.id as usize;
                prop_assert_eq!(t.accesses[idx].0, r.core, "routed to wrong core");
                seen[idx] += 1;
                prop_assert_eq!(seen[idx], 1, "access {} completed twice", idx);
                done += 1;
            }
            now += 1;
            prop_assert!(now < 2_000_000, "hierarchy drain timeout: {}/{}", done, t.accesses.len());
        }
        // After the last fill settles, the hierarchy must go fully idle.
        for _ in 0..400 {
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                if !d.is_write {
                    fills.push_at(now + t.dram_latency, d.line);
                }
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            while mem.pop_core_response().is_some() {}
            now += 1;
        }
        prop_assert!(mem.is_idle(), "hierarchy did not drain");
    }

    /// `contains` reflects fills; `invalidate` removes every copy and
    /// reports dirtiness iff a store touched the line.
    #[test]
    fn snoop_and_invalidate_are_directory_accurate(
        lines in proptest::collection::vec((0u64..64, any::<bool>()), 1usize..20)
    ) {
        let mut mem = small_hierarchy();
        let mut fills: DelayQueue<LineAddr> = DelayQueue::new();
        let mut to_dram = Vec::new();
        let mut now = 0;
        for (i, (line, w)) in lines.iter().enumerate() {
            let acc = if *w {
                Access::store(i as u64, LineAddr(*line), 0, Requester::Core(0))
            } else {
                Access::load(i as u64, LineAddr(*line), 0, Requester::Core(0))
            };
            mem.core_access(acc, now);
        }
        let mut done = 0;
        while done < lines.len() {
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                if !d.is_write {
                    fills.push_at(now + 30, d.line);
                }
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            while mem.pop_core_response().is_some() {
                done += 1;
            }
            now += 1;
            prop_assert!(now < 1_000_000);
        }
        for (line, _) in &lines {
            prop_assert!(mem.contains(LineAddr(*line)), "line {} lost", line);
        }
        for (line, _) in &lines {
            let was_dirty = mem.invalidate(LineAddr(*line));
            let any_store = lines.iter().any(|(l, w)| l == line && *w);
            // A dirty line implies some store touched it. (The converse can
            // fail: a dirty line may already have been written back by an
            // eviction, or invalidated by an earlier iteration.)
            if was_dirty {
                prop_assert!(any_store, "clean-line invalidate reported dirty");
            }
            prop_assert!(!mem.contains(LineAddr(*line)));
        }
    }
}
