//! Full-system smoke tests: every paper kernel, every machine mode, on the
//! assembled simulator at small scale — plus the scaled (Figure 14) and
//! tile-swept (Figure 13) configurations. Each DX100 run self-verifies
//! against its functional reference inside `KernelRun::run`.

use dx100::sim::SystemConfig;
use dx100::workloads::{all_kernels, Mode, Scale};

const TINY: Scale = Scale(1.0 / 128.0);

#[test]
fn all_kernels_all_modes_verify() {
    for kernel in all_kernels(TINY) {
        for (mode, cfg) in [
            (Mode::Baseline, SystemConfig::paper_baseline()),
            (Mode::Dmp, SystemConfig::paper_dmp()),
            (Mode::Dx100, SystemConfig::paper_dx100()),
        ] {
            let r = kernel.run(mode, &cfg, 99);
            assert!(
                r.stats.cycles > 0,
                "{} [{}]: empty ROI",
                kernel.name(),
                mode.label()
            );
        }
    }
}

#[test]
fn checksums_agree_across_modes() {
    for kernel in all_kernels(TINY) {
        let base = kernel.run(Mode::Baseline, &SystemConfig::paper_baseline(), 5);
        let dx = kernel.run(Mode::Dx100, &SystemConfig::paper_dx100(), 5);
        assert_eq!(
            base.checksum,
            dx.checksum,
            "{}: checksum divergence",
            kernel.name()
        );
    }
}

#[test]
fn dx100_reduces_instructions_on_every_kernel() {
    for kernel in all_kernels(Scale(1.0 / 64.0)) {
        // BFS is the paper's own exception (spin-wait synchronization).
        if kernel.name() == "bfs" {
            continue;
        }
        let base = kernel.run(Mode::Baseline, &SystemConfig::paper_baseline(), 3);
        let dx = kernel.run(Mode::Dx100, &SystemConfig::paper_dx100(), 3);
        assert!(
            dx.stats.instructions < base.stats.instructions,
            "{}: {} !< {}",
            kernel.name(),
            dx.stats.instructions,
            base.stats.instructions
        );
    }
}

#[test]
fn tile_size_sweep_stays_correct() {
    let kernel = &all_kernels(TINY)[0]; // IS
    for tile in [1024usize, 4096, 16384, 32768] {
        let cfg = SystemConfig::paper_dx100().with_tile_elems(tile);
        let r = kernel.run(Mode::Dx100, &cfg, 11);
        assert!(r.stats.cycles > 0, "tile {tile}");
    }
}

#[test]
fn scaled_eight_core_two_instance_machine_verifies() {
    // Figure 14's largest machine: 8 cores, 4 channels, 2 DX100 instances
    // with region coherence between them.
    let cfg = SystemConfig::scaled(8, 2);
    for kernel in all_kernels(TINY) {
        let r = kernel.run(Mode::Dx100, &cfg, 21);
        assert!(r.stats.cycles > 0, "{} on 8c/2x", kernel.name());
    }
}

#[test]
fn eight_core_single_instance_machine_verifies() {
    let cfg = SystemConfig::scaled(8, 1);
    let kernels = all_kernels(TINY);
    // A representative subset keeps the suite fast.
    for kernel in kernels.iter().take(4) {
        let r = kernel.run(Mode::Dx100, &cfg, 22);
        assert!(r.stats.cycles > 0, "{} on 8c/1x", kernel.name());
    }
}

#[test]
fn ablated_machines_stay_correct() {
    let kernel = &all_kernels(TINY)[0]; // IS exercises RMW + gather + stream
    for f in [
        (|d: &mut dx100::core::Dx100Config| d.reorder = false) as fn(&mut _),
        |d| d.coalesce = false,
        |d| d.interleave = false,
        |d| d.direct_dram = false,
    ] {
        let mut cfg = SystemConfig::paper_dx100();
        f(cfg.dx100.as_mut().unwrap());
        let r = kernel.run(Mode::Dx100, &cfg, 31);
        assert!(r.stats.cycles > 0);
    }
}
