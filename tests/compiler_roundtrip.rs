//! Property tests for the compiler pipeline: any legal generated loop must
//! produce identical arrays when run (a) by the plain interpreter and
//! (b) offloaded — packed ops executed on the functional DX100 with the
//! residual loop interpreted, tile by tile.

use dx100::compiler::interp::Env;
use dx100::compiler::ir::{BinOp, Expr, Program, RmwOp, Stmt};
use dx100::compiler::pipeline::{compile_loop, offload_env, run_offloaded, CompileError};
use proptest::prelude::*;

/// A generated kernel shape (always legal by construction).
#[derive(Debug, Clone)]
enum Shape {
    /// `C[i] = A[B[i]]`
    Gather,
    /// `C[i] = A[B[A2[i]]]` (two levels)
    Gather2,
    /// `A[B[i]] = C[i] * 2`
    Scatter,
    /// `if (D[i] >= k) A[B[i]] += C[i]`
    CondRmw { k: i64, op: RmwOp },
    /// `H[(K[i] & mask)] += 1`
    Histogram { mask: i64 },
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Gather),
        Just(Shape::Gather2),
        Just(Shape::Scatter),
        (
            0i64..8,
            prop_oneof![Just(RmwOp::Add), Just(RmwOp::Min), Just(RmwOp::Max)]
        )
            .prop_map(|(k, op)| Shape::CondRmw { k, op }),
        (prop_oneof![Just(7i64), Just(15), Just(31)]).prop_map(|mask| Shape::Histogram { mask }),
    ]
}

fn build(shape: &Shape, n: i64) -> Program {
    let mut p = Program::new();
    let i = p.var();
    let body = match shape {
        Shape::Gather => {
            let a = p.array("A", 64);
            let b = p.array("B", n as usize);
            let c = p.array("C", n as usize);
            vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )]
        }
        Shape::Gather2 => {
            let a = p.array("A", 64);
            let b = p.array("B", 64);
            let a2 = p.array("A2", n as usize);
            let c = p.array("C", n as usize);
            vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::load(a2, Expr::Var(i)))),
            )]
        }
        Shape::Scatter => {
            let a = p.array("A", 64);
            let b = p.array("B", n as usize);
            let c = p.array("C", n as usize);
            vec![Stmt::Store(
                a,
                Expr::load(b, Expr::Var(i)),
                Expr::bin(BinOp::Mul, Expr::load(c, Expr::Var(i)), Expr::Const(2)),
            )]
        }
        Shape::CondRmw { k, op } => {
            let a = p.array("A", 64);
            let b = p.array("B", n as usize);
            let c = p.array("C", n as usize);
            let d = p.array("D", n as usize);
            vec![Stmt::If(
                Expr::bin(BinOp::Ge, Expr::load(d, Expr::Var(i)), Expr::Const(*k)),
                vec![Stmt::Rmw(
                    a,
                    Expr::load(b, Expr::Var(i)),
                    *op,
                    Expr::load(c, Expr::Var(i)),
                )],
            )]
        }
        Shape::Histogram { mask } => {
            let h = p.array("H", (*mask + 1) as usize);
            let k = p.array("K", n as usize);
            vec![Stmt::Rmw(
                h,
                Expr::bin(BinOp::And, Expr::load(k, Expr::Var(i)), Expr::Const(*mask)),
                RmwOp::Add,
                Expr::Const(1),
            )]
        }
    };
    p.body
        .push(Stmt::for_loop(i, Expr::Const(0), Expr::Const(n), body));
    p
}

fn seed_env(env: &mut Env, seed: u64) {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for arr in env.arrays.iter_mut() {
        let n = arr.len().max(1);
        for v in arr.iter_mut() {
            // Small non-negative values keep every index shape in bounds
            // (indices are reduced mod the target array's length below).
            *v = (next() % (n as u64).min(64)) as i64;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn offloaded_execution_matches_interpreter(
        shape in shape_strategy(),
        n in 4i64..96,
        tile in prop_oneof![Just(4i64), Just(8), Just(16), Just(64)],
        seed in any::<u64>(),
    ) {
        let program = build(&shape, n);
        let compiled = match compile_loop(&program, tile) {
            Ok(c) => c,
            Err(CompileError::Illegal(e)) => {
                return Err(TestCaseError::fail(format!("generated shape must be legal: {e}")));
            }
            Err(e) => return Err(TestCaseError::fail(format!("compile failed: {e}"))),
        };
        let mut reference = Env::for_program(&program);
        seed_env(&mut reference, seed);
        let mut offloaded = offload_env(&program, &compiled);
        offloaded.arrays = reference.arrays.clone();
        reference.run(&program);
        run_offloaded(&compiled, &mut offloaded);
        prop_assert_eq!(&reference.arrays, &offloaded.arrays);
    }
}

#[test]
fn histogram_counts_exactly() {
    let program = build(&Shape::Histogram { mask: 15 }, 64);
    let compiled = compile_loop(&program, 16).unwrap();
    let mut reference = Env::for_program(&program);
    seed_env(&mut reference, 7);
    // The histogram itself starts from zero.
    reference.arrays[0].fill(0);
    let mut offloaded = offload_env(&program, &compiled);
    offloaded.arrays = reference.arrays.clone();
    reference.run(&program);
    run_offloaded(&compiled, &mut offloaded);
    assert_eq!(reference.arrays, offloaded.arrays);
    let total: i64 = offloaded.arrays[0].iter().sum();
    assert_eq!(total, 64, "histogram must count every iteration");
}
