//! System-glue ordering and routing regressions:
//!
//! * Multi-instance MMIO delivery must keep register writes behind older
//!   instructions — a younger `WriteReg` overtaking an instruction stalled
//!   on region acquisition corrupts its scalar-operand snapshot (this
//!   exact scenario lost BFS depth updates on the 8-core / 2-instance
//!   Figure 14 machine).
//! * `mark_host_resident` must steer the engine's accesses through the
//!   LLC (page-granular H-bits), and unmarked data must keep the
//!   direct-DRAM path.

use dx100::common::DType;
use dx100::core::isa::{Instruction, RegId, TileId};
use dx100::core::MemoryImage;
use dx100::sim::{Driver, DriverStatus, System, SystemConfig};

/// A driver that just waits for every core to drain.
struct DrainDriver;

impl Driver for DrainDriver {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        if sys.cores_idle() {
            DriverStatus::Done
        } else {
            DriverStatus::Running
        }
    }
}

fn image_with_arrays(n: u64) -> (MemoryImage, Vec<dx100::core::ArrayHandle>) {
    let mut image = MemoryImage::new();
    let handles: Vec<_> = (0..3)
        .map(|k| {
            let h = image.alloc(["A", "B", "C"][k], DType::U32, n);
            for i in 0..n {
                image.write_elem(h, i, (k as u64 + 1) * 1000 + i * 10);
            }
            h
        })
        .collect();
    (image, handles)
}

/// The register snapshot of a queued instruction must come from program
/// order, not arrival-time races: a younger register write sent while
/// older instructions stall on region acquisition must not be visible.
#[test]
fn queued_instruction_ignores_younger_reg_write() {
    let (image, hs) = image_with_arrays(256);
    let (a, b, c) = (hs[0], hs[1], hs[2]);
    // Two instances put every engine-bound MMIO through the in-order
    // delivery queue with region-coherence gating.
    let cfg = SystemConfig::scaled(8, 2);
    let mut sys = System::new(cfg, image);

    let t_idx = TileId::new(0);
    let t_dst = TileId::new(1);
    let t_sld = TileId::new(2);
    let (r0, r1, r2) = (RegId::new(0), RegId::new(1), RegId::new(2));

    // A small index tile, installed directly (functional setup).
    sys.dx100(0).write_tile(t_idx, &[0, 1, 2, 3]);

    let f = sys.alloc_flag();
    sys.send_reg_write(0, r0, 5); // start = 5
    sys.send_reg_write(0, r1, 1); // stride = 1
    sys.send_reg_write(0, r2, 8); // count = 8
                                  // Three gathers to distinct regions: each first touch stalls the
                                  // delivery head for the region-acquisition latency, so the SLD below
                                  // sits queued long after the clobbering register write lands.
    sys.send_instruction(
        0,
        Instruction::ild(DType::U32, a.base(), t_dst, t_idx),
        None,
    );
    sys.send_instruction(
        0,
        Instruction::ild(DType::U32, b.base(), t_dst, t_idx),
        None,
    );
    sys.send_instruction(
        0,
        Instruction::ild(DType::U32, c.base(), t_dst, t_idx),
        None,
    );
    sys.send_instruction(
        0,
        Instruction::sld(DType::U32, a.base(), t_sld, r0, r1, r2),
        Some(f),
    );
    // The clobber: one MMIO beat, lands long before the SLD is delivered.
    sys.send_reg_write(0, r0, 99);
    sys.push_wait(0, f, false);

    sys.run(&mut DrainDriver);

    // SLD must have streamed A[5..13] (start 5), not A[99..107].
    let tile = sys.dx100_ref(0).tile(t_sld);
    assert_eq!(tile.len(), Some(8));
    let got: Vec<u64> = (0..8).map(|i| tile.valid()[i]).collect();
    let want: Vec<u64> = (5..13).map(|i| 1000 + i * 10).collect();
    assert_eq!(got, want, "SLD snapshotted the younger register value");
}

/// H-bit routing: marked pages send the engine to the LLC; unmarked pages
/// go direct to DRAM.
#[test]
fn host_resident_pages_route_via_llc() {
    for marked in [false, true] {
        let (image, hs) = image_with_arrays(4096);
        let a = hs[0];
        let cfg = SystemConfig::scaled(4, 1);
        let mut sys = System::new(cfg, image);
        if marked {
            sys.mark_host_resident(a.base(), a.size_bytes());
        }
        let t_idx = TileId::new(0);
        let t_dst = TileId::new(1);
        let idx: Vec<u64> = (0..512).map(|i| (i * 37) % 4096).collect();
        sys.dx100(0).write_tile(t_idx, &idx);
        let f = sys.alloc_flag();
        sys.roi_begin();
        sys.send_instruction(
            0,
            Instruction::ild(DType::U32, a.base(), t_dst, t_idx),
            Some(f),
        );
        sys.push_wait(0, f, false);
        sys.run(&mut DrainDriver);
        sys.roi_end();
        let stats = sys.collect_stats();
        let llc_dx = stats.hierarchy.llc.dx100_accesses;
        if marked {
            assert!(llc_dx > 0, "marked pages should be looked up in the LLC");
        } else {
            assert_eq!(llc_dx, 0, "unmarked cold pages must go direct to DRAM");
        }
        // Routing never changes results.
        let tile = sys.dx100_ref(0).tile(t_dst);
        for (i, &ix) in idx.iter().enumerate() {
            assert_eq!(tile.valid()[i], 1000 + ix * 10);
        }
    }
}

/// Repeated gathers of a marked array hit the LLC after first touch —
/// the reuse-capture behaviour the Figure 9 kernels rely on.
#[test]
fn marked_pages_capture_reuse_across_instructions() {
    let (image, hs) = image_with_arrays(4096);
    let a = hs[0];
    let cfg = SystemConfig::scaled(4, 1);
    let mut sys = System::new(cfg, image);
    sys.mark_host_resident(a.base(), a.size_bytes());
    let t_idx = TileId::new(0);
    let idx: Vec<u64> = (0..512).map(|i| (i * 13) % 4096).collect();
    sys.dx100(0).write_tile(t_idx, &idx);
    sys.roi_begin();
    let mut flag = None;
    for round in 0..3 {
        let f = sys.alloc_flag();
        sys.send_instruction(
            0,
            Instruction::ild(DType::U32, a.base(), TileId::new(1 + round), t_idx),
            Some(f),
        );
        flag = Some(f);
    }
    sys.push_wait(0, flag.unwrap(), false);
    sys.run(&mut DrainDriver);
    sys.roi_end();
    let stats = sys.collect_stats();
    let llc = &stats.hierarchy.llc;
    assert!(
        llc.dx100_hits * 2 > llc.dx100_accesses,
        "later rounds should mostly hit lines allocated by round one \
         (hits {} of {})",
        llc.dx100_hits,
        llc.dx100_accesses
    );
}
