//! Property tests on the DRAM substrate: conservation (every request
//! completes exactly once), bounded starvation, and the ordering guarantee
//! for conflicting same-line accesses. Timing-constraint violations are
//! guarded by debug assertions inside the bank/channel models, which these
//! tests exercise under random traffic.

use std::collections::VecDeque;

use dx100::common::LineAddr;
use dx100::dram::{DramConfig, DramSystem, MemRequest};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Traffic {
    /// (line, is_write), lines bounded to stress bank conflicts.
    reqs: Vec<(u64, bool)>,
    /// Requests enqueued per tick.
    rate: usize,
}

fn traffic() -> impl Strategy<Value = Traffic> {
    (1usize..5, 1usize..300).prop_flat_map(|(rate, n)| {
        proptest::collection::vec((0u64..4096, any::<bool>()), n)
            .prop_map(move |reqs| Traffic { reqs, rate })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request gets exactly one response; the system drains.
    #[test]
    fn conservation_under_random_traffic(t in traffic()) {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200_2ch());
        let mut pending: VecDeque<(u64, LineAddr, bool)> = t
            .reqs
            .iter()
            .enumerate()
            .map(|(i, (l, w))| (i as u64, LineAddr(*l), *w))
            .collect();
        let mut seen = vec![0u32; t.reqs.len()];
        let mut now = 0u64;
        let mut done = 0;
        while done < t.reqs.len() {
            for _ in 0..t.rate {
                let Some(&(id, line, w)) = pending.front() else { break };
                let req = if w { MemRequest::write(id, line) } else { MemRequest::read(id, line) };
                if dram.try_enqueue(req, now) {
                    pending.pop_front();
                } else {
                    break;
                }
            }
            dram.tick(now);
            while let Some(resp) = dram.pop_response() {
                let idx = resp.id as usize;
                seen[idx] += 1;
                prop_assert_eq!(seen[idx], 1, "request {} answered twice", idx);
                prop_assert_eq!(resp.line, LineAddr(t.reqs[idx].0));
                prop_assert_eq!(resp.is_write, t.reqs[idx].1);
                done += 1;
            }
            now += 1;
            prop_assert!(now < 4_000_000, "drain timeout: {}/{} done", done, t.reqs.len());
        }
        prop_assert!(dram.is_idle());
        // Stats account for every request.
        let s = dram.stats();
        prop_assert_eq!(s.requests() as usize, t.reqs.len());
        prop_assert_eq!(s.row_hits_misses.total() as usize, t.reqs.len());
    }

    /// Same-line write/read pairs are answered in arrival order.
    #[test]
    fn same_line_conflicts_keep_order(lines in proptest::collection::vec(0u64..4, 2usize..40)) {
        let mut dram = DramSystem::new(DramConfig::ddr4_3200_2ch());
        // Alternate write/read per entry to maximize conflicts over 4 lines.
        let mut order_per_line: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut queue: VecDeque<MemRequest> = VecDeque::new();
        for (i, l) in lines.iter().enumerate() {
            let id = i as u64;
            let req = if i % 2 == 0 {
                MemRequest::write(id, LineAddr(*l))
            } else {
                MemRequest::read(id, LineAddr(*l))
            };
            order_per_line[*l as usize].push(id);
            queue.push_back(req);
        }
        let mut completed: Vec<Vec<u64>> = vec![Vec::new(); 4];
        let mut now = 0;
        let mut done = 0;
        let total = lines.len();
        while done < total {
            while let Some(&req) = queue.front() {
                if dram.try_enqueue(req, now) {
                    queue.pop_front();
                } else {
                    break;
                }
            }
            dram.tick(now);
            while let Some(resp) = dram.pop_response() {
                completed[resp.line.0 as usize].push(resp.id);
                done += 1;
            }
            now += 1;
            prop_assert!(now < 2_000_000);
        }
        // Command-order invariant per line: writes never overtake older
        // same-line requests, and reads never overtake older writes. (A
        // write *ack* may be delivered before an older read's data returns
        // — acks fire at CAS issue, reads at data return — so read-after-
        // read completion order is the only same-line pair that may swap
        // freely, and only among reads.)
        for l in 0..4 {
            let arrival_pos = |id: u64| order_per_line[l].iter().position(|&x| x == id).unwrap();
            for (ci, &id) in completed[l].iter().enumerate() {
                let is_write = id % 2 == 0;
                for &later in &completed[l][ci + 1..] {
                    let later_is_write = later % 2 == 0;
                    if arrival_pos(later) < arrival_pos(id) {
                        // `later` arrived earlier but completed later: legal
                        // only when `later` is a read whose data outlived a
                        // younger write's ack.
                        prop_assert!(
                            !later_is_write && is_write,
                            "line {}: {} (write={}) overtook older {} (write={})",
                            l, id, is_write, later, later_is_write
                        );
                    }
                }
            }
        }
    }
}

/// A stream constructed to hit one row repeatedly must be nearly all row
/// hits; rotating rows in one bank must be nearly all misses.
#[test]
fn row_buffer_hit_rate_extremes() {
    use dx100::dram::{AddrMap, DramCoord};
    let cfg = DramConfig::ddr4_3200_2ch();
    let org = cfg.organization.clone();
    let run = |coords: Vec<DramCoord>| {
        let mut dram = DramSystem::new(cfg.clone());
        let mut now = 0;
        let mut queue: VecDeque<MemRequest> = coords
            .iter()
            .enumerate()
            .map(|(i, c)| MemRequest::read(i as u64, AddrMap::ChBgColBaRow.encode(*c, &org)))
            .collect();
        let total = queue.len();
        let mut done = 0;
        while done < total {
            while let Some(&req) = queue.front() {
                if dram.try_enqueue(req, now) {
                    queue.pop_front();
                } else {
                    break;
                }
            }
            dram.tick(now);
            while dram.pop_response().is_some() {
                done += 1;
            }
            now += 1;
            assert!(now < 4_000_000);
        }
        dram.stats().row_buffer_hit_rate()
    };
    let same_row: Vec<DramCoord> = (0..128)
        .map(|col| DramCoord {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: 3,
            col,
        })
        .collect();
    // Rotate over more rows than the 32-entry buffer can pair up.
    let rotate_rows: Vec<DramCoord> = (0..128)
        .map(|i| DramCoord {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
            row: (i % 64) as u64,
            col: (i / 64) as u64,
        })
        .collect();
    let hit = run(same_row);
    let miss = run(rotate_rows);
    assert!(hit > 0.95, "same-row stream must hit: {hit}");
    assert!(miss < 0.2, "row-rotating stream must mostly miss: {miss}");
}

/// Refresh fires at the tREFI cadence and costs bandwidth.
#[test]
fn refresh_happens_and_is_bounded() {
    let cfg = DramConfig::ddr4_3200_2ch();
    let mut dram = DramSystem::new(cfg.clone());
    let mut now = 0u64;
    let mut id = 0u64;
    let horizon = cfg.timings.t_refi * 4;
    while now < horizon {
        // Keep a trickle of traffic so banks open and close.
        if now.is_multiple_of(64)
            && dram.try_enqueue(MemRequest::read(id, LineAddr(id % 2048)), now)
        {
            id += 1;
        }
        dram.tick(now);
        while dram.pop_response().is_some() {}
        now += 1;
    }
    let refreshes = dram.stats().refreshes;
    assert!(
        (4..=10).contains(&refreshes),
        "expected ~4 refreshes per channel pair over 4*tREFI, got {refreshes}"
    );
}
