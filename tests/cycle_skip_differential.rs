//! Differential and property tests for event-driven cycle skipping.
//!
//! The skip layer in `System::step` must be *invisible*: with
//! `cycle_skip` on, every kernel must produce bit-identical statistics,
//! epoch samples, and trace events to a cycle-by-cycle run — only
//! wall-clock time may differ. These tests run every paper kernel both
//! ways and compare, check that skipping actually engages on an
//! idle-heavy run, and property-test the `next_event` contracts of the
//! two substrate schedulers ([`DelayQueue`] and the DRAM channel
//! controller) that the skip decision is built on.

use dx100::common::{DType, DelayQueue, LineAddr};
use dx100::cpu::CoreOp;
use dx100::dram::{DramConfig, DramSystem, MemRequest};
use dx100::sim::driver::NullDriver;
use dx100::sim::{System, SystemConfig};
use dx100::workloads::{all_kernels, Mode, Scale};
use dx100_core::MemoryImage;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::VecDeque;

/// Small enough that a full kernel sweep stays test-suite friendly.
const TINY: Scale = Scale(1.0 / 128.0);
const SEED: u64 = 7;

fn cfg_for(mode: Mode, skip: bool) -> SystemConfig {
    let mut cfg = match mode {
        Mode::Baseline => SystemConfig::paper_baseline(),
        Mode::Dmp => SystemConfig::paper_dmp(),
        Mode::Dx100 => SystemConfig::paper_dx100(),
    };
    cfg.cycle_skip = skip;
    // Enable every observer so the comparison covers trace events and
    // epoch samples, not just end-of-run counters.
    cfg.obs.trace = true;
    cfg.obs.epoch_cycles = Some(5000);
    cfg
}

/// Skip-on and skip-off runs must agree bit-for-bit: checksum, cycle
/// count, every counter, every epoch sample, every trace event. `RunStats`
/// has no `PartialEq`, but its `Debug` output prints floats with
/// shortest-roundtrip formatting, so Debug-string equality is bit equality.
#[test]
fn skip_on_off_bit_identical_all_kernels() {
    for kernel in all_kernels(TINY) {
        for mode in [Mode::Baseline, Mode::Dx100] {
            let on = kernel.run(mode, &cfg_for(mode, true), SEED);
            let off = kernel.run(mode, &cfg_for(mode, false), SEED);
            let label = format!("{} [{}]", kernel.name(), mode.label());
            assert_eq!(on.checksum, off.checksum, "checksum diverged: {label}");
            assert_eq!(
                format!("{:?}", on.stats),
                format!("{:?}", off.stats),
                "stats diverged with cycle skipping: {label}"
            );
        }
    }
}

/// The DMP prefetcher path (pending-injection forbid rule) gets its own
/// differential pass on the two most prefetch-sensitive kernels.
#[test]
fn skip_on_off_bit_identical_dmp() {
    for kernel in all_kernels(TINY) {
        if !matches!(kernel.name(), "is" | "pr") {
            continue;
        }
        let on = kernel.run(Mode::Dmp, &cfg_for(Mode::Dmp, true), SEED);
        let off = kernel.run(Mode::Dmp, &cfg_for(Mode::Dmp, false), SEED);
        assert_eq!(
            on.checksum,
            off.checksum,
            "checksum diverged: {}",
            kernel.name()
        );
        assert_eq!(
            format!("{:?}", on.stats),
            format!("{:?}", off.stats),
            "stats diverged with cycle skipping: {} [dmp]",
            kernel.name()
        );
    }
}

fn cfg_profiled(mode: Mode, skip: bool) -> SystemConfig {
    let mut cfg = cfg_for(mode, skip);
    cfg.obs.profile = true;
    cfg
}

/// With profiling on, the attribution itself must be bit-identical between
/// cycle-skip on and off: every elided span is batch-credited through the
/// same settle path that credits stats, and the counter-event series is
/// sampled only at never-elided cycles. Also re-checks the MECE sums in
/// release builds, where `collect_profile`'s debug_asserts are compiled
/// out.
#[test]
fn profile_bit_identical_skip_on_off() {
    for kernel in all_kernels(TINY) {
        for mode in [Mode::Baseline, Mode::Dx100] {
            let on = kernel.run(mode, &cfg_profiled(mode, true), SEED);
            let off = kernel.run(mode, &cfg_profiled(mode, false), SEED);
            let label = format!("{} [{}]", kernel.name(), mode.label());
            assert_eq!(
                on.telemetry.profile, off.telemetry.profile,
                "cycle attribution diverged with cycle skipping: {label}"
            );
            assert_eq!(
                on.telemetry.counters, off.telemetry.counters,
                "counter-event series diverged with cycle skipping: {label}"
            );
            let p = on.telemetry.profile.as_ref().expect("profile enabled");
            // MECE: all core-cycles land in exactly one bucket or `drained`.
            assert_eq!(
                p.cores.attributed() + p.core_drained,
                p.elapsed * p.num_cores as u64,
                "core attribution does not sum to elapsed core-cycles: {label}"
            );
            // Every DX100 instance attributes each elapsed cycle once.
            if let Some(e) = &p.engines {
                assert!(
                    e.attributed() > 0 && e.attributed() % p.elapsed == 0,
                    "engine attribution is not a whole number of instances: {label}"
                );
            }
            // Channels tick in lockstep; each attributes every tick once.
            for (i, ch) in p.dram.iter().enumerate() {
                assert_eq!(
                    ch.attributed(),
                    p.dram[0].attributed(),
                    "channel {i} attributed a different tick count: {label}"
                );
                assert_eq!(
                    ch.queue_depth.total(),
                    ch.attributed(),
                    "channel {i} queue-depth samples != ticks: {label}"
                );
            }
        }
    }
}

/// Turning the profiler on must not perturb the simulation: `RunStats`
/// (including traces and epoch samples, which `cfg_for` enables) and the
/// checksum stay byte-identical with `--profile` on vs off.
#[test]
fn run_stats_identical_profile_on_off() {
    for kernel in all_kernels(TINY) {
        for mode in [Mode::Baseline, Mode::Dx100] {
            let prof = kernel.run(mode, &cfg_profiled(mode, true), SEED);
            let bare = kernel.run(mode, &cfg_for(mode, true), SEED);
            let label = format!("{} [{}]", kernel.name(), mode.label());
            assert_eq!(prof.checksum, bare.checksum, "checksum diverged: {label}");
            assert_eq!(
                format!("{:?}", prof.stats),
                format!("{:?}", bare.stats),
                "stats/trace/epochs diverged with profiling on: {label}"
            );
        }
    }
}

/// A serial pointer-chase over a cold array: one core, each load dependent
/// on the previous one, so the machine spends most cycles waiting on DRAM.
fn sparse_chase() -> (MemoryImage, Vec<CoreOp>) {
    let mut image = MemoryImage::new();
    let a = image.alloc("A", DType::U32, 1 << 20); // 4 MB, exceeds L2
    let mut ops = Vec::new();
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..64u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (x >> 33) % (1 << 20);
        let load = CoreOp::load(a.addr_of(idx), 1);
        ops.push(if i == 0 { load } else { load.with_dep(1) });
    }
    (image, ops)
}

/// Skipping must actually engage on an idle-heavy run (otherwise the whole
/// optimisation could silently regress to a no-op) while leaving the final
/// cycle count untouched.
#[test]
fn skip_engages_on_idle_heavy_run() {
    let run = |skip: bool| {
        let (image, ops) = sparse_chase();
        let mut cfg = SystemConfig::paper_baseline();
        cfg.cycle_skip = skip;
        let mut sys = System::new(cfg, image);
        sys.push_ops(0, ops);
        let stats = sys.run(&mut NullDriver);
        (stats.cycles, sys.skip_stats())
    };
    let (cycles_on, (skipped, skip_events)) = run(true);
    let (cycles_off, (skipped_off, _)) = run(false);
    assert_eq!(
        cycles_on, cycles_off,
        "skipping changed the final cycle count"
    );
    assert_eq!(
        skipped_off, 0,
        "skip telemetry must stay zero with skipping off"
    );
    assert!(
        skipped > cycles_on / 2,
        "a serial miss chain should skip most cycles: {skipped} of {cycles_on}"
    );
    assert!(skip_events > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `DelayQueue::next_ready_at` is tight: it names exactly the earliest
    /// ready cycle (nothing pops strictly before it, something pops at it),
    /// and equal-cycle items drain in FIFO order.
    #[test]
    fn delay_queue_next_ready_at_is_tight(delays in proptest::collection::vec(0u64..100, 1..50)) {
        let mut q = DelayQueue::new();
        let mut remaining: Vec<(u64, usize)> =
            delays.iter().enumerate().map(|(i, d)| (*d, i)).collect();
        for &(d, i) in &remaining {
            q.push_at(d, i);
        }
        remaining.sort(); // pop order: (ready cycle, insertion sequence)
        for &(ready, idx) in &remaining {
            let t = q.next_ready_at();
            prop_assert_eq!(t, Some(ready), "next_ready_at must be the min ready cycle");
            if ready > 0 {
                prop_assert!(q.pop_ready(ready - 1).is_none(), "popped before ready");
            }
            prop_assert_eq!(q.pop_ready(ready), Some(idx), "FIFO order violated");
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.next_ready_at(), None);
    }

    /// The DRAM scheduler's quiescence contract, phrased exactly as the
    /// system skip layer uses it: whenever `next_event(now)` names a future
    /// tick `t`, (a) ticking each cycle of the gap one-by-one and (b)
    /// jumping over it with `credit_idle_ticks` must leave bit-identical
    /// statistics — including the cycle-attribution profile, whose elided
    /// spans are batch-credited — and produce the same response schedule
    /// for the rest of the run; and while approaching `t`, `next_event`
    /// never moves the event later (no missed wakeups). The profile must
    /// also stay MECE: every channel attributes exactly `ticks` ticks, no
    /// matter how the random request stream carves the run into spans.
    #[test]
    fn dram_gap_skip_equals_tick_by_tick(
        reqs in proptest::collection::vec((0u64..4096, any::<bool>()), 1usize..120),
        rate in 1usize..4,
    ) {
        // (response id, tick) schedule plus final stats and profiles,
        // driving with or without gap skipping.
        type Driven = Result<(Vec<(u64, u64)>, String, String, u64), TestCaseError>;
        let drive = |skip: bool| -> Driven {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200_2ch());
            dram.enable_profile();
            let mut pending: VecDeque<(u64, LineAddr, bool)> = reqs
                .iter()
                .enumerate()
                .map(|(i, (l, w))| (i as u64, LineAddr(*l), *w))
                .collect();
            let mut schedule = Vec::new();
            let mut skipped = 0u64;
            let mut now = 0u64;
            while schedule.len() < reqs.len() {
                for _ in 0..rate {
                    let Some(&(id, line, w)) = pending.front() else { break };
                    let req = if w { MemRequest::write(id, line) } else { MemRequest::read(id, line) };
                    if dram.try_enqueue(req, now) {
                        pending.pop_front();
                    } else {
                        break;
                    }
                }
                // Only skip once arrivals stop, mirroring the system layer
                // (which never skips while external input is due).
                if skip && pending.is_empty() {
                    if let Some(t) = dram.next_event(now) {
                        if t > now {
                            // No missed wakeups while approaching `t`.
                            for probe in [now + 1, (now + t) / 2, t - 1] {
                                if probe > now && probe < t {
                                    let e = dram.next_event(probe);
                                    prop_assert!(
                                        e.is_some_and(|x| x <= t),
                                        "event receded: next_event({probe}) = {e:?} > {t}"
                                    );
                                }
                            }
                            dram.credit_idle_ticks(now, t - now);
                            skipped += t - now;
                            now = t;
                        }
                    }
                }
                dram.tick(now);
                while let Some(resp) = dram.pop_response() {
                    schedule.push((resp.id, now));
                }
                now += 1;
                prop_assert!(now < 4_000_000, "drain timeout");
            }
            let ticks = dram.stats().ticks;
            let profiles = dram.channel_profiles();
            for (i, p) in profiles.iter().enumerate() {
                let p = p.expect("profile enabled");
                prop_assert_eq!(
                    p.attributed(), ticks,
                    "channel {} attribution is not MECE (skip={})", i, skip
                );
                prop_assert_eq!(
                    p.queue_depth.total(), ticks,
                    "channel {} queue-depth samples != ticks (skip={})", i, skip
                );
            }
            Ok((
                schedule,
                format!("{:?}", dram.stats()),
                format!("{:?}", profiles),
                skipped,
            ))
        };
        let (sched_skip, stats_skip, prof_skip, skipped) = drive(true)?;
        let (sched_tick, stats_tick, prof_tick, _) = drive(false)?;
        prop_assert_eq!(sched_skip, sched_tick, "response schedule diverged");
        prop_assert_eq!(stats_skip, stats_tick, "DRAM stats diverged (skipped {} ticks)", skipped);
        prop_assert_eq!(prof_skip, prof_tick, "DRAM attribution diverged (skipped {} ticks)", skipped);
    }
}
