//! Property tests on the ISA: the 192-bit wire format round-trips every
//! legal instruction, and the legality rules carve out exactly the subsets
//! the paper specifies.

use dx100::common::{AluOp, DType};
use dx100::core::isa::{IllegalInstruction, Instruction, RegId, TileId};
use proptest::prelude::*;

fn dtype() -> impl Strategy<Value = DType> {
    proptest::sample::select(DType::ALL.to_vec())
}

fn aluop() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn tile() -> impl Strategy<Value = TileId> {
    (0u8..TileId::MAX).prop_map(TileId::new)
}

fn reg() -> impl Strategy<Value = RegId> {
    (0u8..RegId::MAX).prop_map(RegId::new)
}

fn cond() -> impl Strategy<Value = Option<TileId>> {
    proptest::option::of(tile())
}

/// Base addresses are 64-bit but realistically below 2^48.
fn base() -> impl Strategy<Value = u64> {
    0u64..(1 << 48)
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (dtype(), base(), tile(), tile(), cond()).prop_map(|(dtype, base, td, ts1, tc)| {
            Instruction::Ild {
                dtype,
                base,
                td,
                ts1,
                tc,
            }
        }),
        (dtype(), base(), tile(), tile(), cond()).prop_map(|(dtype, base, ts1, ts2, tc)| {
            Instruction::Ist {
                dtype,
                base,
                ts1,
                ts2,
                tc,
            }
        }),
        (dtype(), aluop(), base(), tile(), tile(), cond()).prop_map(
            |(dtype, op, base, ts1, ts2, tc)| Instruction::Irmw {
                dtype,
                op,
                base,
                ts1,
                ts2,
                tc
            }
        ),
        (dtype(), base(), tile(), reg(), reg(), reg(), cond()).prop_map(
            |(dtype, base, td, rs1, rs2, rs3, tc)| Instruction::Sld {
                dtype,
                base,
                td,
                rs1,
                rs2,
                rs3,
                tc
            }
        ),
        (dtype(), base(), tile(), reg(), reg(), reg(), cond()).prop_map(
            |(dtype, base, ts, rs1, rs2, rs3, tc)| Instruction::Sst {
                dtype,
                base,
                ts,
                rs1,
                rs2,
                rs3,
                tc
            }
        ),
        (dtype(), aluop(), tile(), tile(), tile(), cond()).prop_map(
            |(dtype, op, td, ts1, ts2, tc)| Instruction::Aluv {
                dtype,
                op,
                td,
                ts1,
                ts2,
                tc
            }
        ),
        (dtype(), aluop(), tile(), tile(), reg(), cond()).prop_map(
            |(dtype, op, td, ts, rs, tc)| Instruction::Alus {
                dtype,
                op,
                td,
                ts,
                rs,
                tc
            }
        ),
        (tile(), tile(), tile(), tile(), reg(), cond()).prop_map(
            |(td1, td2, ts1, ts2, rs1, tc)| Instruction::Rng {
                td1,
                td2,
                ts1,
                ts2,
                rs1,
                tc
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode = identity over the whole instruction space.
    #[test]
    fn wire_format_round_trips(instr in instruction()) {
        let words = instr.encode();
        let back = Instruction::decode(words).expect("decodable");
        prop_assert_eq!(back, instr);
    }

    /// The validator accepts exactly the paper's legality envelope.
    #[test]
    fn validation_rules(instr in instruction()) {
        let verdict = instr.validate();
        // Rule 1: IRMW only with associative/commutative ops.
        if let Instruction::Irmw { op, .. } = &instr {
            if !op.is_rmw_legal() {
                prop_assert_eq!(verdict, Err(IllegalInstruction::NonAssociativeRmw(*op)));
                return Ok(());
            }
        }
        // Rule 2: integer-only ops never touch float lanes.
        if let Instruction::Irmw { op, dtype, .. }
        | Instruction::Aluv { op, dtype, .. }
        | Instruction::Alus { op, dtype, .. } = &instr
        {
            if op.is_integer_only() && dtype.is_float() {
                prop_assert!(matches!(
                    verdict,
                    Err(IllegalInstruction::IntegerOpOnFloat(_, _))
                ));
                return Ok(());
            }
        }
        // Rule 3: destinations never alias sources.
        let dests = instr.dest_tiles();
        let srcs = instr.source_tiles();
        if dests.iter().any(|d| srcs.contains(d)) {
            prop_assert!(matches!(verdict, Err(IllegalInstruction::DestIsSource(_))));
            return Ok(());
        }
        prop_assert!(verdict.is_ok(), "spuriously rejected: {:?}", instr);
    }

    /// Arbitrary 192-bit words either decode to something that re-encodes
    /// to itself, or are rejected — never a mangled accept.
    #[test]
    fn decode_is_total_and_consistent(w0 in any::<u64>(), w1 in any::<u64>()) {
        if let Ok(instr) = Instruction::decode([w0, w1, 0]) {
            // Re-encoding reproduces all *meaningful* bits: decode again and
            // compare instructions (unused bits are dropped by design).
            let again = Instruction::decode(instr.encode()).expect("canonical form decodes");
            prop_assert_eq!(again, instr);
        }
    }
}
