//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds on machines with no crates.io access, so the
//! `[patch.crates-io]` table points `rand` at this vendored implementation.
//! It covers exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! and `Rng::gen_bool` — with a deterministic xoshiro256** generator, so
//! dataset generation stays reproducible per seed (the property the
//! workloads tests assert). The stream differs from upstream `rand`; nothing
//! in the workspace depends on upstream's exact values.

use core::ops::{Range, RangeInclusive};

/// Seedable generators. Only `seed_from_u64` is provided; that is the sole
/// constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random-value convenience methods over a raw `u64` source.
pub trait Rng {
    /// Next raw 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive, int or float).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types `gen_range` accepts; the type parameter plus the single
/// blanket impl per range shape tie the element type to the use site, so
/// integer literals infer exactly like upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128;
                (base + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128 + 1;
                (base + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the conventional way to fill a xoshiro
            // state from a 64-bit seed (guarantees a nonzero state).
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
            let w = r.gen_range(0u64..u64::MAX);
            assert!(w < u64::MAX);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        assert!(buckets.iter().all(|&b| (700..1300).contains(&b)), "{buckets:?}");
    }
}
