//! Test configuration, the case-failure error type, and the deterministic
//! RNG driving generation.

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold; the message explains how.
    Fail(String),
    /// The input was rejected as invalid (unused by this workspace but part
    /// of the upstream API shape).
    Reject(String),
}

impl TestCaseError {
    /// A failed property with an explanatory message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xoshiro256** generator; each property test gets one seeded
/// from its own name, so runs are reproducible without any environment
/// setup.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name picks the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// RNG from an explicit seed (SplitMix64 state expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi]`.
    pub fn below_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
