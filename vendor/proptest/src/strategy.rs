//! The `Strategy` trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        (**self).sample_value(rng)
    }
}

/// Boxes a strategy for storage in heterogeneous lists (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].sample_value(rng)
    }
}

/// Element types range strategies can draw; the blanket impls below keep
/// integer-literal inference flowing from the use site.
pub trait RangeElement: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn draw_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn draw_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

impl<T: RangeElement> Strategy for core::ops::Range<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::draw_half_open(self.start, self.end, rng)
    }
}

impl<T: RangeElement> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::draw_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_range_element {
    ($($t:ty),* $(,)?) => {$(
        impl RangeElement for $t {
            fn draw_half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range strategy");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128;
                (base + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn draw_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range strategy");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128 + 1;
                (base + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_element!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
