//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds on machines with no crates.io access, so the
//! `[patch.crates-io]` table points `proptest` at this vendored
//! implementation. It reproduces the subset of proptest the workspace's
//! property tests use: the `proptest!` macro (with `#![proptest_config]`),
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`Just` strategies,
//! `any::<T>()`, `proptest::collection::vec`, `proptest::sample::select`,
//! `proptest::option::of`, `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name), and there is **no shrinking** —
//! a failing case reports its case index and message only. That is
//! sufficient for CI-style pass/fail property checking.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// `Result` type property-test bodies implicitly return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Strategies for collections (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose length
    /// is uniform within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Strategies drawing from explicit value sets (`proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Picks uniformly from `values` (which must be non-empty).
    pub fn select<T: Clone + core::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty set");
        Select { values }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

/// Strategies for `Option` (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `None` a quarter of the time, `Some(inner)` otherwise (matching
    /// upstream's default 3:1 weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample_value(rng))
            }
        }
    }
}

/// `any::<T>()` support (`proptest::arbitrary`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value from the type's whole domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Uniform in [-1e9, 1e9]: plenty of spread without hitting
            // NaN/inf bit patterns.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts `cond`, failing the current case (not panicking directly) so the
/// runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts two expressions are unequal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);
                )*
                #[allow(unreachable_code)]
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
