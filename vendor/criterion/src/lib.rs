//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds on machines with no crates.io access, so the
//! `[patch.crates-io]` table points `criterion` at this vendored
//! implementation. It performs *real* wall-clock measurement (warmup, then
//! repeated timed batches, reporting min/mean per iteration) so `cargo
//! bench` numbers remain meaningful for regression checks — it just lacks
//! upstream's statistical machinery, plots, and HTML reports.

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark after warmup.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Wall-clock budget for warmup.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter label.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching upstream's display format.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: find an iteration count that fills ~10ms per batch, or
        // give up and use single iterations for slow bodies.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            iters += 1;
        }
        let per_iter = start.elapsed() / (iters.max(1) as u32);
        let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        self.samples.clear();
        self.iters_per_sample = batch;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET || self.samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let per = |d: &Duration| d.as_nanos() as f64 / self.iters_per_sample as f64;
        let min = self.samples.iter().map(&per).fold(f64::INFINITY, f64::min);
        let sum: f64 = self.samples.iter().map(&per).sum();
        let mean = sum / self.samples.len() as f64;
        println!(
            "{name:<40} min {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores command-line configuration (upstream parses
    /// filters and output options here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        f(&mut b);
        b.report(name);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        f(&mut b, input);
        b.report(&id.full);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A named benchmark group; settings are accepted for API compatibility.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stub sizes batches by wall-clock budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
