//! Quickstart: program the DX100 accelerator through its ISA.
//!
//! Builds a small application address space, offloads a gather
//! (`C[i] = A[B[i]]`), a conditional scatter, and a bulk read-modify-write
//! to the *functional* accelerator model, and prints the results.
//!
//! Run with: `cargo run --example quickstart`

use dx100::common::{AluOp, DType};
use dx100::core::functional::FunctionalDx100;
use dx100::core::isa::{Instruction, RegId, TileId};
use dx100::core::{Dx100Config, MemoryImage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An application address space with three arrays.
    let mut mem = MemoryImage::new();
    let a = mem.alloc("A", DType::U32, 64);
    let b = mem.alloc("B", DType::U32, 16);
    let c = mem.alloc("C", DType::U32, 16);
    for i in 0..64 {
        mem.write_elem(a, i, 100 + i);
    }
    let indices = [7u64, 42, 3, 3, 63, 0, 21, 14, 9, 9, 9, 55, 31, 2, 47, 18];
    for (i, idx) in indices.iter().enumerate() {
        mem.write_elem(b, i as u64, *idx);
    }

    // 2. The accelerator with the paper's Table 3 configuration.
    let mut dx = FunctionalDx100::new(Dx100Config::paper());
    let (t_idx, t_val, t_cond) = (TileId::new(0), TileId::new(1), TileId::new(2));
    let (r_start, r_stride, r_count, r_ten) =
        (RegId::new(0), RegId::new(1), RegId::new(2), RegId::new(3));
    dx.write_reg(r_start, 0);
    dx.write_reg(r_stride, 1);
    dx.write_reg(r_count, 16);
    dx.write_reg(r_ten, 10);

    // 3. Gather: stream the indices, then indirect-load through them, then
    //    stream-store the packed results to C.
    dx.run(
        &[
            Instruction::sld(DType::U32, b.base(), t_idx, r_start, r_stride, r_count),
            Instruction::ild(DType::U32, a.base(), t_val, t_idx),
            Instruction::Sst {
                dtype: DType::U32,
                base: c.base(),
                ts: t_val,
                rs1: r_start,
                rs2: r_stride,
                rs3: r_count,
                tc: None,
            },
        ],
        &mut mem,
    )?;
    println!("gathered C = {:?}", mem.to_vec(c));

    // 4. Conditional RMW: A[B[i]] += C[i] only where B[i] >= 10.
    dx.run(
        &[
            Instruction::Alus {
                dtype: DType::U32,
                op: AluOp::Ge,
                td: t_cond,
                ts: t_idx,
                rs: r_ten,
                tc: None,
            },
            Instruction::irmw(DType::U32, AluOp::Add, a.base(), t_idx, t_val)
                .with_condition(t_cond),
        ],
        &mut mem,
    )?;
    println!(
        "A[42] after conditional RMW = {} (was 142)",
        mem.read_elem(a, 42)
    );
    println!("A[3]  untouched (B-index 3 < 10) = {}", mem.read_elem(a, 3));

    println!(
        "\n{} instructions executed, {} elements processed",
        dx.instructions_executed(),
        dx.elements_processed()
    );
    Ok(())
}
