//! One push-style PageRank iteration over a uniform random graph, on all
//! three machines the paper evaluates: baseline, baseline+DMP, and DX100.
//!
//! Run with: `cargo run --release --example graph_pagerank`

use dx100::sim::SystemConfig;
use dx100::workloads::kernels::pr::PageRank;
use dx100::workloads::{KernelRun, Mode, Scale};

fn main() {
    let kernel = PageRank::new(Scale(0.25));
    println!("PageRank iteration (GAP), three machines:\n");
    let rows = [
        ("baseline", Mode::Baseline, SystemConfig::paper_baseline()),
        ("baseline+DMP", Mode::Dmp, SystemConfig::paper_dmp()),
        ("DX100", Mode::Dx100, SystemConfig::paper_dx100()),
    ];
    let mut base_cycles = None;
    for (name, mode, cfg) in rows {
        let r = kernel.run(mode, &cfg, 3);
        let speed = base_cycles
            .map(|b: u64| b as f64 / r.stats.cycles.max(1) as f64)
            .unwrap_or(1.0);
        base_cycles.get_or_insert(r.stats.cycles);
        println!(
            "{name:<13} {:>10} cycles ({speed:>5.2}x)  bw {:>5.1}%  rbh {:>5.1}%  occupancy {:.3}",
            r.stats.cycles,
            r.stats.bandwidth_utilization() * 100.0,
            r.stats.row_buffer_hit_rate() * 100.0,
            r.stats.request_buffer_occupancy(),
        );
    }
}
