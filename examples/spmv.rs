//! Sparse matrix-vector multiply on the *timed* full system: the paper's CG
//! scenario. Runs the same SpMV on the multicore baseline and on the
//! DX100-equipped machine and prints the headline metrics.
//!
//! Run with: `cargo run --release --example spmv`

use dx100::sim::SystemConfig;
use dx100::workloads::kernels::cg::ConjugateGradient;
use dx100::workloads::{KernelRun, Mode, Scale};

fn main() {
    let kernel = ConjugateGradient::new(Scale(0.25));
    println!("SpMV (NAS CG core), baseline vs DX100:\n");
    let base = kernel.run(Mode::Baseline, &SystemConfig::paper_baseline(), 7);
    let dx = kernel.run(Mode::Dx100, &SystemConfig::paper_dx100(), 7);
    println!(
        "baseline: {:>10} cycles, {:>9} instructions, {:>5.1}% DRAM bandwidth",
        base.stats.cycles,
        base.stats.instructions,
        base.stats.bandwidth_utilization() * 100.0
    );
    println!(
        "dx100:    {:>10} cycles, {:>9} instructions, {:>5.1}% DRAM bandwidth",
        dx.stats.cycles,
        dx.stats.instructions,
        dx.stats.bandwidth_utilization() * 100.0
    );
    println!("\nspeedup: {:.2}x", dx.stats.speedup_over(&base.stats));
    let s = dx.stats.dx100.unwrap();
    println!(
        "accelerator: {} instructions retired, coalescing factor {:.2} words/line",
        s.instructions_retired,
        s.coalescing_factor()
    );
}
