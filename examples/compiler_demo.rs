//! The DX100 compiler pipeline on the paper's Figure 7 example:
//! detect the indirect access, check legality, tile, hoist, lower to DX100
//! API calls, and execute the offloaded form — verifying it against the
//! plain interpreter.
//!
//! Run with: `cargo run --example compiler_demo`

use dx100::compiler::detect::detect;
use dx100::compiler::interp::Env;
use dx100::compiler::ir::{Expr, Program, Stmt};
use dx100::compiler::pipeline::{compile_loop, offload_env, run_offloaded};

fn main() {
    // for i in 0..32 { C[i] = A[B[i]]; }   (Figure 7a)
    let mut p = Program::new();
    let a = p.array("A", 64);
    let b = p.array("B", 32);
    let c = p.array("C", 32);
    let i = p.var();
    p.body.push(Stmt::for_loop(
        i,
        Expr::Const(0),
        Expr::Const(32),
        vec![Stmt::Store(
            c,
            Expr::Var(i),
            Expr::load(a, Expr::load(b, Expr::Var(i))),
        )],
    ));

    // Detection (Figure 7c's DFS).
    let Stmt::For(l) = &p.body[0] else {
        unreachable!()
    };
    for acc in detect(l) {
        println!(
            "detected indirect {:?} of array {} at depth {}",
            acc.kind, acc.array, acc.depth
        );
    }

    // Full pipeline (tile = 8 → Figure 7b's tiling).
    let compiled = compile_loop(&p, 8).expect("legal loop");
    println!("\ntiles: {:?}", compiled.tiles);
    println!(
        "hoisted packed loads: {}",
        compiled.transformed.prologue.len()
    );
    println!("lowered DX100 calls per tile:");
    for call in &compiled.calls {
        println!("  {call:?}");
    }

    // Execute both forms and compare.
    let mut reference = Env::for_program(&p);
    for k in 0..64 {
        reference.arrays[a][k] = (k * 11 % 64) as i64;
    }
    for k in 0..32 {
        reference.arrays[b][k] = ((k * 7 + 5) % 64) as i64;
    }
    let mut offloaded = offload_env(&p, &compiled);
    offloaded.arrays = reference.arrays.clone();
    reference.run(&p);
    run_offloaded(&compiled, &mut offloaded);
    assert_eq!(reference.arrays[c], offloaded.arrays[c]);
    println!(
        "\noffloaded execution matches the interpreter: C[0..8] = {:?}",
        &offloaded.arrays[c][..8]
    );
}
