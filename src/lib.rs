//! # DX100 — Programmable Data Access Accelerator for Indirection
//!
//! Facade crate for the DX100 reproduction workspace. It re-exports every
//! sub-crate under one roof so examples, integration tests, and downstream
//! users can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`common`] | `dx100-common` | ids, data types, value arithmetic, delay queues |
//! | [`dram`] | `dx100-dram` | DDR4 command-level simulator + FR-FCFS controllers |
//! | [`mem`] | `dx100-mem` | L1/L2/LLC hierarchy with MSHRs and stride prefetchers |
//! | [`cpu`] | `dx100-cpu` | multi-core timing model (ROB/LQ/SQ limits) |
//! | [`core`] | `dx100-core` | the accelerator: ISA, scratchpad, functional units |
//! | [`prefetch`] | `dx100-prefetch` | DMP-style indirect prefetcher baseline |
//! | [`compiler`] | `dx100-compiler` | loop IR + detect/tile/hoist/lower passes |
//! | [`sim`] | `dx100-sim` | full-system runner and Table 3 configuration |
//! | [`workloads`] | `dx100-workloads` | the paper's 12 kernels + microbenchmarks |
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use dx100_common as common;
pub use dx100_compiler as compiler;
pub use dx100_core as core;
pub use dx100_cpu as cpu;
pub use dx100_dram as dram;
pub use dx100_mem as mem;
pub use dx100_prefetch as prefetch;
pub use dx100_sim as sim;
pub use dx100_workloads as workloads;
