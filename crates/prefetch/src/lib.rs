//! A DMP-style indirect prefetcher baseline (Fu et al., HPCA 2024), the
//! comparator of the paper's Figure 12.
//!
//! DMP (Differential-Matching Prefetcher) watches the core's load stream,
//! detects `A[B[i]]`-style indirection by matching differences between load
//! values and subsequent load addresses, and then prefetches
//! `A[B[i + Δ]]` ahead of the core. The reproduction models a *perfectly
//! trained* DMP — generous to the baseline — by letting workloads declare
//! their indirect patterns up front; the prefetcher then:
//!
//! * triggers on each demand access to the index array,
//! * reads the future index values (modeling its own prefetch of the index
//!   line plus the differential address computation),
//! * issues prefetches for the target lines into the triggering core's L2.
//!
//! What it deliberately does **not** do is exactly what the paper contrasts
//! with DX100: it cannot reorder DRAM traffic (prefetches arrive in program
//! order and take whatever row-buffer locality the index stream has), it
//! cannot see conditions (gated iterations are prefetched anyway, polluting
//! the cache), and it leaves the core's instruction footprint unchanged.

use std::collections::VecDeque;

use dx100_common::{Addr, CoreId, DType, LineAddr};
use dx100_core::MemoryImage;

/// One declared indirect pattern `target[index[i]]` (possibly scaled).
#[derive(Debug, Clone, Copy)]
pub struct IndirectPattern {
    /// Base address of the index array `B`.
    pub index_base: Addr,
    /// Element count of the index array.
    pub index_len: u64,
    /// Element type of the index array.
    pub index_dtype: DType,
    /// Base address of the target array `A`.
    pub target_base: Addr,
    /// Element type of the target array.
    pub target_dtype: DType,
    /// Right-shift applied to the loaded index before use
    /// (`A[B[i] >> shift]`, for hash-join style `f(C[i])` patterns; 0 for
    /// plain indirection).
    pub index_shift: u32,
    /// Mask applied to the loaded index before the shift, as in
    /// `A[(B[i] & mask) >> shift]`; `u64::MAX` for plain indirection.
    pub index_mask: u64,
}

impl IndirectPattern {
    /// Plain `A[B[i]]` indirection.
    pub fn simple(
        index_base: Addr,
        index_len: u64,
        index_dtype: DType,
        target_base: Addr,
        target_dtype: DType,
    ) -> Self {
        IndirectPattern {
            index_base,
            index_len,
            index_dtype,
            target_base,
            target_dtype,
            index_shift: 0,
            index_mask: u64::MAX,
        }
    }

    /// Whether `addr` falls inside the index array.
    fn contains_index(&self, addr: Addr) -> bool {
        addr >= self.index_base
            && addr < self.index_base + self.index_len * self.index_dtype.size_bytes()
    }

    /// Element number of an index-array address.
    fn index_elem(&self, addr: Addr) -> u64 {
        (addr - self.index_base) / self.index_dtype.size_bytes()
    }

    /// Target line for iteration `i`, read through the memory image (the
    /// oracle stands in for DMP's own index prefetch + differential match).
    fn target_line(&self, i: u64, mem: &MemoryImage) -> Option<LineAddr> {
        if i >= self.index_len {
            return None;
        }
        let raw = mem.read(
            self.index_dtype,
            self.index_base + i * self.index_dtype.size_bytes(),
        );
        let idx = (raw & self.index_mask) >> self.index_shift;
        let addr = self.target_base + idx * self.target_dtype.size_bytes();
        Some(LineAddr::containing(addr))
    }
}

/// Configuration of the DMP model.
#[derive(Debug, Clone, Copy)]
pub struct DmpConfig {
    /// How many iterations ahead to prefetch.
    pub distance: u64,
    /// Prefetches issued per trigger.
    pub degree: u64,
    /// Maximum prefetches in flight per core.
    pub max_inflight: usize,
}

impl Default for DmpConfig {
    fn default() -> Self {
        DmpConfig {
            distance: 16,
            degree: 4,
            max_inflight: 16,
        }
    }
}

/// Per-core trigger state.
#[derive(Clone, Debug, Default)]
struct CoreState {
    /// Highest iteration already covered by prefetches, per pattern.
    covered: Vec<u64>,
}

/// The DMP prefetcher instance shared by the system glue.
#[derive(Clone, Debug)]
pub struct Dmp {
    config: DmpConfig,
    patterns: Vec<IndirectPattern>,
    cores: Vec<CoreState>,
    /// Prefetch candidates awaiting injection: (core, line).
    pending: VecDeque<(CoreId, LineAddr)>,
    /// Prefetches issued (statistics).
    pub issued: u64,
}

impl dx100_common::Checkpoint for Dmp {
    type State = Dmp;

    fn save(&self) -> Result<Self::State, dx100_common::CheckpointError> {
        Ok(self.clone())
    }

    fn restore(&mut self, state: &Self::State) {
        *self = state.clone();
    }
}

impl Dmp {
    /// Creates a DMP for `cores` cores.
    pub fn new(config: DmpConfig, cores: usize) -> Self {
        Dmp {
            config,
            patterns: Vec::new(),
            cores: (0..cores).map(|_| CoreState::default()).collect(),
            pending: VecDeque::new(),
            issued: 0,
        }
    }

    /// Declares an indirect pattern (the "perfectly trained" shortcut).
    pub fn add_pattern(&mut self, p: IndirectPattern) {
        self.patterns.push(p);
        for c in &mut self.cores {
            c.covered.push(0);
        }
    }

    /// Observes a demand load; queues target prefetches if it hits an index
    /// array.
    pub fn on_core_load(&mut self, core: CoreId, addr: Addr, mem: &MemoryImage) {
        for (pi, p) in self.patterns.iter().enumerate() {
            if !p.contains_index(addr) {
                continue;
            }
            let i = p.index_elem(addr);
            let state = &mut self.cores[core];
            let start = (i + 1).max(state.covered[pi]);
            let end = (i + self.config.distance).min(p.index_len);
            let mut issued = 0;
            for j in start..end {
                if issued >= self.config.degree {
                    break;
                }
                if let Some(line) = p.target_line(j, mem) {
                    self.pending.push_back((core, line));
                    issued += 1;
                }
                state.covered[pi] = j + 1;
            }
        }
        // Bound the queue: a real prefetcher drops when overwhelmed.
        while self.pending.len() > self.cores.len() * self.config.max_inflight {
            self.pending.pop_front();
        }
    }

    /// Whether any queued prefetch awaits injection (quiescence probe).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Pops the next prefetch to inject `(core, line)`.
    pub fn pop_prefetch(&mut self) -> Option<(CoreId, LineAddr)> {
        let p = self.pending.pop_front();
        if p.is_some() {
            self.issued += 1;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemoryImage, IndirectPattern) {
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 4096);
        let b = mem.alloc("B", DType::U32, 256);
        for i in 0..256 {
            mem.write_elem(b, i, (i * 37) % 4096);
        }
        let p = IndirectPattern::simple(b.base(), 256, DType::U32, a.base(), DType::U32);
        (mem, p)
    }

    #[test]
    fn triggers_on_index_loads_only() {
        let (mem, p) = setup();
        let mut dmp = Dmp::new(DmpConfig::default(), 1);
        dmp.add_pattern(p);
        // A load outside the index array: no prefetch.
        dmp.on_core_load(0, p.target_base, &mem);
        assert!(dmp.pop_prefetch().is_none());
        // A load of B[0]: prefetches ahead.
        dmp.on_core_load(0, p.index_base, &mem);
        let first = dmp.pop_prefetch();
        assert!(first.is_some());
    }

    #[test]
    fn prefetches_future_targets() {
        let (mem, p) = setup();
        let mut dmp = Dmp::new(DmpConfig::default(), 1);
        dmp.add_pattern(p);
        dmp.on_core_load(0, p.index_base, &mem);
        // First candidate must be the line of A[B[1]].
        let expect = LineAddr::containing(p.target_base + 37 * 4);
        assert_eq!(dmp.pop_prefetch(), Some((0, expect)));
    }

    #[test]
    fn coverage_advances_without_duplicates() {
        let (mem, p) = setup();
        let mut dmp = Dmp::new(
            DmpConfig {
                distance: 4,
                degree: 8,
                max_inflight: 64,
            },
            1,
        );
        dmp.add_pattern(p);
        dmp.on_core_load(0, p.index_base, &mem); // covers 1..4
        dmp.on_core_load(0, p.index_base + 4, &mem); // i=1, covers 4..5 only
        let mut lines = Vec::new();
        while let Some((_, l)) = dmp.pop_prefetch() {
            lines.push(l);
        }
        assert_eq!(lines.len(), 4, "no duplicate coverage: {lines:?}");
    }

    #[test]
    fn respects_array_bounds() {
        let (mem, p) = setup();
        let mut dmp = Dmp::new(DmpConfig::default(), 1);
        dmp.add_pattern(p);
        // Trigger at the last element: nothing beyond the array.
        dmp.on_core_load(0, p.index_base + 255 * 4, &mem);
        assert!(dmp.pop_prefetch().is_none());
    }

    #[test]
    fn masked_shifted_pattern() {
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", DType::U32, 1 << 12);
        let c = mem.alloc("C", DType::U32, 8);
        mem.write_elem(c, 1, 0b1111_0000);
        let p = IndirectPattern {
            index_base: c.base(),
            index_len: 8,
            index_dtype: DType::U32,
            target_base: a.base(),
            target_dtype: DType::U32,
            index_shift: 4,
            index_mask: 0xff,
        };
        let mut dmp = Dmp::new(
            DmpConfig {
                distance: 2,
                degree: 1,
                max_inflight: 8,
            },
            1,
        );
        dmp.add_pattern(p);
        dmp.on_core_load(0, c.base(), &mem);
        // (0b1111_0000 & 0xff) >> 4 = 15 → line of A[15].
        let expect = LineAddr::containing(a.base() + 15 * 4);
        assert_eq!(dmp.pop_prefetch(), Some((0, expect)));
    }
}
