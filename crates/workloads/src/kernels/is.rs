//! NAS Integer Sort (IS), bucket-disabled counting sort — the paper's
//! Table 1 pattern `RMW A[B[i]]` over a single loop.
//!
//! Three phases: (1) histogram `hist[keys[i]] += 1` — conditional-free bulk
//! RMW, the paper's headline IS pattern; (2) prefix sum over the histogram
//! (streaming, stays on the cores in both modes); (3) rank gather
//! `rank[i] = hist[keys[i]]`.
//!
//! Baseline: the RMW phase uses atomic read-modify-writes (required for
//! multicore correctness, Section 6.1); DX100 eliminates them by being the
//! sole writer of the histogram region.

use std::sync::Arc;

use dx100_common::{AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sampling::{AccessSink, InstallFn, Resident, SampledRun, SampledStage};
use dx100_sim::{System, SystemConfig};

use crate::datasets::rng;
use crate::util::{
    checksum, chunks, core_regs, install_jobs, tile_set4, Phase, PhasedDriver, TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};
use rand::Rng;

/// Stream ids for the prefetchers.
const S_KEYS: u32 = 1;
const S_HIST: u32 = 2;
const S_RANK: u32 = 3;

/// The IS kernel at a fixed scale.
#[derive(Debug, Clone)]
pub struct IntegerSort {
    keys: usize,
    key_space: usize,
}

impl IntegerSort {
    /// Default size: 2^20 keys over 2^21 buckets — the histogram (8 MB of
    /// u32) overflows the private caches and competes with the 10 MB LLC,
    /// the regime the paper's 2^25-key run operates in (sized down for
    /// simulation turnaround — see EXPERIMENTS.md).
    pub fn new(scale: Scale) -> Self {
        let keys = scale.apply(1 << 20, 1 << 10);
        IntegerSort {
            keys,
            key_space: (keys * 2).max(512),
        }
    }
}

struct Data {
    keys: Arc<Vec<u32>>,
    h_keys: ArrayHandle,
    h_hist: ArrayHandle,
    h_rank: ArrayHandle,
    ref_hist: Vec<u32>,
    ref_rank: Vec<u32>,
}

impl IntegerSort {
    fn build(&self, seed: u64) -> (dx100_core::MemoryImage, Data) {
        let mut r = rng(seed);
        let keys: Vec<u32> = (0..self.keys)
            .map(|_| r.gen_range(0..self.key_space as u32))
            .collect();
        let mut image = dx100_core::MemoryImage::new();
        let h_keys = image.alloc("keys", DType::U32, self.keys as u64);
        let h_hist = image.alloc("hist", DType::U32, self.key_space as u64);
        let h_rank = image.alloc("rank", DType::U32, self.keys as u64);
        image.fill_u32(h_keys, &keys);
        // Functional reference.
        let mut ref_hist = vec![0u32; self.key_space];
        for &k in &keys {
            ref_hist[k as usize] += 1;
        }
        let mut acc = 0u32;
        for h in ref_hist.iter_mut() {
            acc += *h;
            *h = acc;
        }
        let ref_rank: Vec<u32> = keys.iter().map(|&k| ref_hist[k as usize]).collect();
        (
            image,
            Data {
                keys: Arc::new(keys),
                h_keys,
                h_hist,
                h_rank,
                ref_hist,
                ref_rank,
            },
        )
    }

    fn result_checksum(&self, d: &Data) -> u64 {
        checksum(
            d.ref_hist
                .iter()
                .map(|&v| v as u64)
                .chain(d.ref_rank.iter().map(|&v| v as u64)),
        )
    }
}

/// Baseline phase-1 op stream: `hist[keys[i]] += 1` with atomics.
struct HistStream {
    keys: Arc<Vec<u32>>,
    h_keys: ArrayHandle,
    h_hist: ArrayHandle,
    i: usize,
    hi: usize,
    step: u8,
}

impl OpStream for HistStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.i >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_keys.addr_of(self.i as u64), S_KEYS),
            1 => CoreOp::alu().with_dep(1), // address calculation
            2 => {
                let k = self.keys[self.i] as u64;
                CoreOp::atomic(self.h_hist.addr_of(k), S_HIST).with_dep(1)
            }
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 3 {
            self.step = 0;
            self.i += 1;
        }
        Some(op)
    }
}

/// Baseline phase-3 op stream: `rank[i] = hist[keys[i]]`.
struct RankStream {
    keys: Arc<Vec<u32>>,
    h_keys: ArrayHandle,
    h_hist: ArrayHandle,
    h_rank: ArrayHandle,
    i: usize,
    hi: usize,
    step: u8,
}

impl OpStream for RankStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.i >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_keys.addr_of(self.i as u64), S_KEYS),
            1 => CoreOp::alu().with_dep(1),
            2 => {
                let k = self.keys[self.i] as u64;
                CoreOp::Load {
                    addr: self.h_hist.addr_of(k),
                    stream: S_HIST,
                    dep: [1, 0],
                }
            }
            3 => CoreOp::Store {
                addr: self.h_rank.addr_of(self.i as u64),
                stream: S_RANK,
                dep: [1, 0],
            },
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.i += 1;
        }
        Some(op)
    }
}

/// Prefix-sum op stream over the histogram (streaming; core 0).
struct PrefixStream {
    h_hist: ArrayHandle,
    k: usize,
    n: usize,
    step: u8,
}

impl OpStream for PrefixStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.k >= self.n {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_hist.addr_of(self.k as u64), S_HIST),
            1 => CoreOp::alu().with_dep(1).with_dep(4), // acc += hist[k]
            2 => CoreOp::Store {
                addr: self.h_hist.addr_of(self.k as u64),
                stream: S_HIST,
                dep: [1, 0],
            },
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 3 {
            self.step = 0;
            self.k += 1;
        }
        Some(op)
    }
}

impl KernelRun for IntegerSort {
    fn name(&self) -> &'static str {
        "is"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build(seed);
        let expected = self.result_checksum(&d);
        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // NAS IS zeroes the bucket histogram at the start of every
            // repetition — through the cores' caches — so its pages carry
            // H-bits and the engine's RMWs route via the LLC.
            sys.mark_host_resident(d.h_hist.base(), d.h_hist.size_bytes());
        }
        let cores = sys.num_cores();

        let phases = match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern::simple(
                        d.h_keys.base(),
                        self.keys as u64,
                        DType::U32,
                        d.h_hist.base(),
                        DType::U32,
                    ));
                }
                baseline_phases(&d, self.keys, self.key_space, cores)
            }
            Mode::Dx100 => dx100_phases(&d, self.keys, self.key_space, cores, cfg),
        };
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            // Verify the machine's memory against the reference.
            let image = sys.into_image();
            for (k, want) in d.ref_hist.iter().enumerate() {
                assert_eq!(
                    image.read_elem(d.h_hist, k as u64) as u32,
                    *want,
                    "hist[{k}] mismatch"
                );
            }
            for (i, want) in d.ref_rank.iter().enumerate() {
                assert_eq!(
                    image.read_elem(d.h_rank, i as u64) as u32,
                    *want,
                    "rank[{i}] mismatch"
                );
            }
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }

    fn prepare_sampled(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> Option<SampledRun> {
        use dx100_sim::Checkpoint;

        let (image, d) = self.build(seed);
        let checksum = self.result_checksum(&d);
        let mut sys = System::new(cfg.clone(), image);
        match mode {
            Mode::Dx100 => sys.mark_host_resident(d.h_hist.base(), d.h_hist.size_bytes()),
            Mode::Dmp => {
                let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                dmp.add_pattern(IndirectPattern::simple(
                    d.h_keys.base(),
                    self.keys as u64,
                    DType::U32,
                    d.h_hist.base(),
                    DType::U32,
                ));
            }
            Mode::Baseline => {}
        }
        let cores = sys.num_cores();
        let checkpoint = Arc::new(sys.save().ok()?);
        let tile = cfg.dx100.as_ref().map(|x| x.tile_elems);
        let (h_keys, h_hist, h_rank) = (d.h_keys, d.h_hist, d.h_rank);

        // Every address below derives from the key array fixed at build
        // time, never from values the kernel writes mid-run, so each window
        // can replay from the clock-0 checkpoint without the functional
        // effects of the items it skipped. That is also why the DX100
        // prefix phase's image write is dropped here: it only changes
        // histogram *values*, which no later address depends on.
        let ak = d.keys.clone();
        let hist_access = Box::new(move |i: usize, s: &mut AccessSink| {
            s.stream(h_keys.addr_of(i as u64));
            s.alu(1);
            s.indirect(h_hist.addr_of(ak[i] as u64));
        });
        let ik = d.keys.clone();
        let hist_install: InstallFn = match mode {
            Mode::Baseline | Mode::Dmp => Arc::new(move |sys: &mut System, lo, hi| {
                for (c, (plo, phi)) in chunks(hi - lo, cores).iter().enumerate() {
                    sys.push_stream(
                        c,
                        HistStream {
                            keys: ik.clone(),
                            h_keys,
                            h_hist,
                            i: lo + plo,
                            hi: lo + phi,
                            step: 0,
                        },
                    );
                }
            }),
            Mode::Dx100 => {
                let tile = tile?;
                Arc::new(move |sys: &mut System, lo, hi| {
                    let jobs: Vec<TileJob> = split_tiles(hi - lo, tile)
                        .iter()
                        .enumerate()
                        .map(|(k, (tlo, thi))| {
                            hist_tile(k % cores, k, lo + tlo, lo + thi, h_keys, h_hist)
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                })
            }
        };

        let prefix_access = Box::new(move |k: usize, s: &mut AccessSink| {
            s.stream(h_hist.addr_of(k as u64));
            s.alu(1);
            s.stream(h_hist.addr_of(k as u64));
        });
        let prefix_install: InstallFn = Arc::new(move |sys: &mut System, lo, hi| {
            sys.push_stream(
                0,
                PrefixStream {
                    h_hist,
                    k: lo,
                    n: hi,
                    step: 0,
                },
            );
        });

        let ak = d.keys.clone();
        let rank_access = Box::new(move |i: usize, s: &mut AccessSink| {
            s.stream(h_keys.addr_of(i as u64));
            s.alu(1);
            s.indirect(h_hist.addr_of(ak[i] as u64));
            s.stream(h_rank.addr_of(i as u64));
        });
        let ik = d.keys.clone();
        let rank_install: InstallFn = match mode {
            Mode::Baseline | Mode::Dmp => Arc::new(move |sys: &mut System, lo, hi| {
                for (c, (plo, phi)) in chunks(hi - lo, cores).iter().enumerate() {
                    sys.push_stream(
                        c,
                        RankStream {
                            keys: ik.clone(),
                            h_keys,
                            h_hist,
                            h_rank,
                            i: lo + plo,
                            hi: lo + phi,
                            step: 0,
                        },
                    );
                }
            }),
            Mode::Dx100 => {
                let tile = tile?;
                Arc::new(move |sys: &mut System, lo, hi| {
                    let jobs: Vec<TileJob> = split_tiles(hi - lo, tile)
                        .iter()
                        .enumerate()
                        .map(|(k, (tlo, thi))| {
                            rank_tile(k % cores, k, lo + tlo, lo + thi, h_keys, h_hist, h_rank)
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                })
            }
        };

        let hist_resident = |prior_touches: u64| {
            vec![Resident {
                base: d.h_hist.base(),
                bytes: d.h_hist.size_bytes(),
                prior_touches,
                host_resident: true, // DX100 runs mark it (H-bit RMWs)
            }]
        };

        Some(SampledRun {
            cfg: cfg.clone(),
            checkpoint,
            checksum,
            stages: vec![
                // Every phase reuses the histogram (one random line per
                // hist/rank item), so the full run progressively pulls it
                // into the hierarchy — via the cores in baseline/DMP runs,
                // via the host-resident H-bit LLC path in DX100 runs.
                // Declaring it lets window replays warm it to the
                // residency the full run reaches at each window.
                SampledStage {
                    name: "hist",
                    items: self.keys,
                    access: hist_access,
                    install: hist_install,
                    resident: hist_resident(0),
                },
                SampledStage {
                    name: "prefix",
                    items: self.key_space,
                    access: prefix_access,
                    install: prefix_install,
                    resident: hist_resident(self.keys as u64),
                },
                SampledStage {
                    name: "rank",
                    items: self.keys,
                    access: rank_access,
                    install: rank_install,
                    resident: hist_resident((self.keys + self.key_space) as u64),
                },
            ],
        })
    }
}

fn baseline_phases(d: &Data, keys: usize, key_space: usize, cores: usize) -> Vec<Phase> {
    let mut phases = vec![Phase::RoiBegin];
    // Phase 1: atomic histogram across cores.
    let parts = chunks(keys, cores);
    let (keys_rc, h_keys, h_hist, h_rank) = (d.keys.clone(), d.h_keys, d.h_hist, d.h_rank);
    phases.push(Phase::setup(move |sys| {
        for (c, (lo, hi)) in parts.iter().enumerate() {
            sys.push_stream(
                c,
                HistStream {
                    keys: keys_rc.clone(),
                    h_keys,
                    h_hist,
                    i: *lo,
                    hi: *hi,
                    step: 0,
                },
            );
        }
    }));
    phases.push(Phase::WaitCoresIdle);
    // Phase 2: prefix sum on core 0.
    phases.push(Phase::setup(move |sys| {
        sys.push_stream(
            0,
            PrefixStream {
                h_hist,
                k: 0,
                n: key_space,
                step: 0,
            },
        );
    }));
    phases.push(Phase::WaitCoresIdle);
    // Phase 3: rank gather.
    let parts = chunks(keys, cores);
    let keys_rc = d.keys.clone();
    phases.push(Phase::setup(move |sys| {
        for (c, (lo, hi)) in parts.iter().enumerate() {
            sys.push_stream(
                c,
                RankStream {
                    keys: keys_rc.clone(),
                    h_keys,
                    h_hist,
                    h_rank,
                    i: *lo,
                    hi: *hi,
                    step: 0,
                },
            );
        }
    }));
    phases.push(Phase::WaitCoresIdle);
    phases.push(Phase::RoiEnd);
    phases
}

fn dx100_phases(
    d: &Data,
    keys: usize,
    key_space: usize,
    cores: usize,
    cfg: &SystemConfig,
) -> Vec<Phase> {
    let tile = cfg
        .dx100
        .as_ref()
        .expect("DX100 mode requires config")
        .tile_elems;
    let (h_keys, h_hist, h_rank) = (d.h_keys, d.h_hist, d.h_rank);
    let mut phases = vec![Phase::RoiBegin];

    // Phase 1: IRMW histogram, tile by tile, round-robin across cores.
    let tiles1: Vec<(usize, usize)> = split_tiles(keys, tile);
    phases.push(Phase::setup(move |sys| {
        let jobs: Vec<TileJob> = tiles1
            .iter()
            .enumerate()
            .map(|(k, (lo, hi))| hist_tile(k % cores, k, *lo, *hi, h_keys, h_hist))
            .collect();
        install_jobs(sys, &jobs);
    }));
    phases.push(Phase::WaitCoresIdle);

    // Phase 2: prefix sum stays on core 0 (streaming); DX100 already wrote
    // the histogram into memory, so we both time it and apply it.
    phases.push(Phase::setup(move |sys| {
        // Functional effect on the image.
        let image = sys.image();
        let mut acc = 0u64;
        for k in 0..key_space as u64 {
            acc += image.read_elem(h_hist, k);
            image.write_elem(h_hist, k, acc);
        }
        sys.push_stream(
            0,
            PrefixStream {
                h_hist,
                k: 0,
                n: key_space,
                step: 0,
            },
        );
    }));
    phases.push(Phase::WaitCoresIdle);

    // Phase 3: gather ranks and stream-store them (Gather-Full shape).
    let tiles3: Vec<(usize, usize)> = split_tiles(keys, tile);
    phases.push(Phase::setup(move |sys| {
        let jobs: Vec<TileJob> = tiles3
            .iter()
            .enumerate()
            .map(|(k, (lo, hi))| rank_tile(k % cores, k, *lo, *hi, h_keys, h_hist, h_rank))
            .collect();
        install_jobs(sys, &jobs);
    }));
    phases.push(Phase::WaitCoresIdle);
    phases.push(Phase::RoiEnd);
    phases
}

/// One DX100 histogram tile: `hist[keys[lo..hi]] += 1` via sld/alus/irmw.
fn hist_tile(
    core: usize,
    k: usize,
    lo: usize,
    hi: usize,
    h_keys: ArrayHandle,
    h_hist: ArrayHandle,
) -> TileJob {
    let g = tile_set4(k);
    let r = core_regs(core);
    TileJob {
        core,
        pre_ops: vec![],
        tile_writes: vec![],
        reg_writes: vec![
            (r[0], lo as u64),
            (r[1], 1),
            (r[2], (hi - lo) as u64),
            (r[3], 0),
        ],
        instrs: vec![
            Instruction::sld(DType::U32, h_keys.base(), g[0], r[0], r[1], r[2]),
            // ones[i] = (keys[i] >= 0) — an all-ones value tile.
            Instruction::Alus {
                dtype: DType::U32,
                op: AluOp::Ge,
                td: g[1],
                ts: g[0],
                rs: r[3],
                tc: None,
            },
            Instruction::irmw(DType::U32, AluOp::Add, h_hist.base(), g[0], g[1]),
        ],
        post_ops: vec![],
    }
}

/// One DX100 rank tile: `rank[lo..hi] = hist[keys[lo..hi]]` via sld/ild/sst.
fn rank_tile(
    core: usize,
    k: usize,
    lo: usize,
    hi: usize,
    h_keys: ArrayHandle,
    h_hist: ArrayHandle,
    h_rank: ArrayHandle,
) -> TileJob {
    let g = tile_set4(k);
    let r = core_regs(core);
    TileJob {
        core,
        pre_ops: vec![],
        tile_writes: vec![],
        reg_writes: vec![(r[0], lo as u64), (r[1], 1), (r[2], (hi - lo) as u64)],
        instrs: vec![
            Instruction::sld(DType::U32, h_keys.base(), g[0], r[0], r[1], r[2]),
            Instruction::ild(DType::U32, h_hist.base(), g[1], g[0]),
            Instruction::Sst {
                dtype: DType::U32,
                base: h_rank.base(),
                ts: g[1],
                rs1: r[0],
                rs2: r[1],
                rs3: r[2],
                tc: None,
            },
        ],
        post_ops: vec![],
    }
}

/// Splits `n` elements into tile-sized chunks.
pub(crate) fn split_tiles(n: usize, tile: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < n {
        out.push((lo, (lo + tile).min(n)));
        lo += tile;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IntegerSort {
        IntegerSort::new(Scale(1.0 / 128.0))
    }

    #[test]
    fn dx100_result_matches_reference() {
        let k = tiny();
        let res = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 42);
        assert!(res.stats.cycles > 0);
        let dx = res.stats.dx100.unwrap();
        assert!(dx.instructions_retired > 0);
    }

    #[test]
    fn baseline_and_dx100_share_checksums() {
        let k = tiny();
        let base = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 42);
        let dx = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 42);
        assert_eq!(base.checksum, dx.checksum);
        // The accelerator offloads the core's instruction stream.
        assert!(dx.stats.instructions < base.stats.instructions);
    }

    #[test]
    fn sampled_windows_replay_from_checkpoint() {
        let k = tiny();
        for (mode, cfg) in [
            (Mode::Baseline, SystemConfig::paper_baseline()),
            (Mode::Dx100, SystemConfig::paper_dx100()),
        ] {
            let run = k.prepare_sampled(mode, &cfg, 42).unwrap();
            assert_eq!(run.stages.len(), 3);
            let plan = dx100_sampling::plan(&run, 1, "is/test");
            assert!(!plan.windows.is_empty());
            let stats = dx100_sampling::replay_window(&run, plan.windows[0], &Default::default());
            assert!(stats.cycles > 0, "{mode:?}");
            // Planning is deterministic in the seed.
            let again = dx100_sampling::plan(&run, 1, "is/test");
            assert_eq!(plan.windows.len(), again.windows.len());
        }
    }

    #[test]
    fn dmp_mode_runs_and_prefetches() {
        let k = tiny();
        let res = k.run(Mode::Dmp, &SystemConfig::paper_dmp(), 42);
        assert!(res.dmp_prefetches() > 0);
    }

    impl WorkloadResult {
        fn dmp_prefetches(&self) -> u64 {
            self.stats.dmp_prefetches
        }
    }
}
