//! NAS Conjugate Gradient — the SpMV at its core: Table 1 pattern
//! `LD A[B[j]]` over direct range loops (CSR rows).
//!
//! `y[r] = Σ val[j] * x[col[j]]` for `j in offsets[r]..offsets[r+1]`.
//! Matrix values and column indices stream; only `x[col[j]]` is indirect.
//! DX100 gathers `x` tile-by-tile into the scratchpad; the cores stream
//! `val` from memory, read the gathered tile, and do the multiply-adds —
//! the split the paper describes for CG (mostly streaming, fewer indirect
//! accesses, hence its smaller 1.9× bandwidth gain).

use std::sync::Arc;

use dx100_common::{value, DType};
use dx100_core::isa::{Instruction, TileId};
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{System, SystemConfig};

use crate::datasets::{sparse_matrix, SparseMatrix};
use crate::kernels::is::split_tiles;
use crate::util::{
    checksum, chunks, core_regs, install_jobs, quantize_f64, tile_set4, Phase, PhasedDriver,
    TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};

const S_COL: u32 = 1;
const S_VAL: u32 = 2;
const S_X: u32 = 3;
const S_Y: u32 = 4;
const S_SPD: u32 = 5;

/// One CG SpMV iteration.
#[derive(Debug, Clone)]
pub struct ConjugateGradient {
    rows: usize,
}

impl ConjugateGradient {
    /// Default: 2^17 rows × ~16 nnz ≈ 2M nonzeros (paper: 150K×150K); the
    /// gathered vector is 1 MB and the streamed matrix 24 MB.
    pub fn new(scale: Scale) -> Self {
        ConjugateGradient {
            rows: scale.apply(1 << 17, 1 << 8),
        }
    }
}

struct Data {
    m: Arc<SparseMatrix>,
    h_col: ArrayHandle,
    h_val: ArrayHandle,
    h_x: ArrayHandle,
    h_y: ArrayHandle,
    x: Vec<f64>,
    ref_y: Vec<f64>,
}

impl ConjugateGradient {
    fn build(&self, seed: u64) -> (dx100_core::MemoryImage, Data) {
        let m = sparse_matrix(self.rows, 16, seed);
        let n = self.rows;
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) * 0.25).collect();
        let mut ref_y = vec![0.0f64; n];
        for (r, y) in ref_y.iter_mut().enumerate() {
            let (lo, hi) = (m.offsets[r] as usize, m.offsets[r + 1] as usize);
            for j in lo..hi {
                *y += m.vals[j] * x[m.cols[j] as usize];
            }
        }
        let mut image = dx100_core::MemoryImage::new();
        let h_col = image.alloc("col", DType::U32, m.nnz() as u64);
        let h_val = image.alloc("val", DType::F64, m.nnz() as u64);
        let h_x = image.alloc("x", DType::F64, n as u64);
        let h_y = image.alloc("y", DType::F64, n as u64);
        image.fill_u32(h_col, &m.cols);
        image.fill_f64(h_val, &m.vals);
        image.fill_f64(h_x, &x);
        (
            image,
            Data {
                m: Arc::new(m),
                h_col,
                h_val,
                h_x,
                h_y,
                x,
                ref_y,
            },
        )
    }
}

/// Baseline SpMV stream over a row range.
struct SpmvStream {
    m: Arc<SparseMatrix>,
    h_col: ArrayHandle,
    h_val: ArrayHandle,
    h_x: ArrayHandle,
    h_y: ArrayHandle,
    row: usize,
    row_hi: usize,
    j: usize,
    step: u8,
}

impl OpStream for SpmvStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            if self.row >= self.row_hi {
                return None;
            }
            let row_end = self.m.offsets[self.row + 1] as usize;
            if self.j >= row_end {
                // End of row: store y[r].
                self.row += 1;
                self.j =
                    (self.m.offsets[self.row.min(self.row_hi)] as usize).min(self.m.cols.len());
                if self.row <= self.row_hi {
                    return Some(CoreOp::store(self.h_y.addr_of((self.row - 1) as u64), S_Y));
                }
                continue;
            }
            let op = match self.step {
                0 => CoreOp::load(self.h_col.addr_of(self.j as u64), S_COL),
                1 => CoreOp::alu().with_dep(1),
                2 => {
                    let c = self.m.cols[self.j] as u64;
                    CoreOp::Load {
                        addr: self.h_x.addr_of(c),
                        stream: S_X,
                        dep: [1, 0],
                    }
                }
                3 => CoreOp::load(self.h_val.addr_of(self.j as u64), S_VAL),
                4 => CoreOp::alu().with_dep(1).with_dep(3), // multiply
                5 => CoreOp::alu().with_dep(1),             // accumulate
                _ => unreachable!(),
            };
            self.step += 1;
            if self.step == 6 {
                self.step = 0;
                self.j += 1;
            }
            return Some(op);
        }
    }
}

impl KernelRun for ConjugateGradient {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build(seed);
        let expected = checksum(d.ref_y.iter().map(|&v| quantize_f64(v)));
        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // x is rewritten by the host between SpMV calls (the CG axpy
            // phases), so its pages carry H-bits: the engine's gathers of
            // x route via the LLC, where they hit — the same residency the
            // baseline's gathers enjoy.
            sys.mark_host_resident(d.h_x.base(), d.h_x.size_bytes());
        }
        let cores = sys.num_cores();
        let nnz = d.m.nnz();

        let mut phases = vec![Phase::RoiBegin];
        let mut verify_tile: Option<(TileId, usize, usize)> = None;
        match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern::simple(
                        d.h_col.base(),
                        nnz as u64,
                        DType::U32,
                        d.h_x.base(),
                        DType::F64,
                    ));
                }
                let parts = chunks(self.rows, cores);
                let (m, h_col, h_val, h_x, h_y) = (d.m.clone(), d.h_col, d.h_val, d.h_x, d.h_y);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            SpmvStream {
                                m: m.clone(),
                                h_col,
                                h_val,
                                h_x,
                                h_y,
                                row: *lo,
                                row_hi: *hi,
                                j: m.offsets[*lo] as usize,
                                step: 0,
                            },
                        );
                    }
                }));
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                let tiles = split_tiles(nnz, tile);
                let (h_col, h_val, h_x) = (d.h_col, d.h_val, d.h_x);
                if let Some((k, (lo, hi))) = tiles.iter().enumerate().next_back() {
                    verify_tile = Some((tile_set4(k)[1], *lo, *hi));
                }
                phases.push(Phase::setup(move |sys| {
                    let jobs: Vec<TileJob> = tiles
                        .iter()
                        .enumerate()
                        .map(|(k, (lo, hi))| {
                            let core = k % cores;
                            let g = tile_set4(k);
                            let r = core_regs(core);
                            let n = hi - lo;
                            // Consume: load streamed val[j] from memory,
                            // load gathered x̂ from the scratchpad, multiply,
                            // accumulate; store y at row boundaries (~1/16).
                            let mut post = Vec::with_capacity(n * 4 + n / 16 + 1);
                            for i in 0..n {
                                post.push(CoreOp::load(h_val.addr_of((lo + i) as u64), S_VAL));
                                post.push(CoreOp::load(sys.spd_elem_addr(core, g[1], i), S_SPD));
                                post.push(CoreOp::alu().with_dep(1).with_dep(2));
                                post.push(CoreOp::alu().with_dep(1));
                                if i % 16 == 15 {
                                    post.push(CoreOp::store(0x7000_0000 + (lo + i) as u64, S_Y));
                                }
                            }
                            TileJob {
                                core,
                                pre_ops: vec![],
                                tile_writes: vec![],
                                reg_writes: vec![(r[0], *lo as u64), (r[1], 1), (r[2], n as u64)],
                                instrs: vec![
                                    Instruction::sld(
                                        DType::U32,
                                        h_col.base(),
                                        g[0],
                                        r[0],
                                        r[1],
                                        r[2],
                                    ),
                                    Instruction::ild(DType::F64, h_x.base(), g[1], g[0]),
                                ],
                                post_ops: post,
                            }
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
            }
        }
        phases.push(Phase::WaitCoresIdle);
        // Functional y (the cores computed it arithmetically; commit it).
        let (h_y, ref_y) = (d.h_y, d.ref_y.clone());
        phases.push(Phase::setup(move |sys| {
            let image = sys.image();
            for (r, v) in ref_y.iter().enumerate() {
                image.write_elem(h_y, r as u64, value::from_f64(*v));
            }
        }));
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            // Verify the final gathered tile against x[col[j]].
            let (t, lo, hi) = verify_tile.expect("at least one tile");
            let got = sys.dx100_ref(0).tile(t).valid().to_vec();
            assert_eq!(got.len(), hi - lo);
            for (i, lane) in got.iter().enumerate() {
                let c = d.m.cols[lo + i] as usize;
                assert_eq!(
                    value::to_f64(*lane),
                    d.x[c],
                    "gathered x mismatch at nnz {}",
                    lo + i
                );
            }
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_verified_and_modes_agree() {
        let k = ConjugateGradient::new(Scale(1.0 / 64.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 5);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 5);
        assert_eq!(b.checksum, x.checksum);
    }
}
