//! Spatter / xRAGE scatter — Table 1 pattern `ST A[B[i]]` with an index
//! trace shaped like the xRAGE multi-physics application's accesses
//! (short strided bursts at scattered bases).

use std::sync::Arc;

use dx100_common::DType;
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{System, SystemConfig};

use crate::datasets::xrage_pattern;
use crate::kernels::is::split_tiles;
use crate::util::{
    checksum, chunks, core_regs, install_jobs, tile_set4, Phase, PhasedDriver, TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};

const S_PAT: u32 = 1;
const S_VAL: u32 = 2;
const S_OUT: u32 = 3;

/// The xRAGE scatter kernel.
#[derive(Debug, Clone)]
pub struct Xrage {
    n: usize,
    target: usize,
}

impl Xrage {
    /// Default: 1M scatter operations into a 4M-element target.
    pub fn new(scale: Scale) -> Self {
        Xrage {
            n: scale.apply(1 << 20, 1 << 10),
            target: scale.apply(1 << 22, 1 << 12),
        }
    }
}

struct Data {
    pattern: Arc<Vec<u32>>,
    h_pat: ArrayHandle,
    h_val: ArrayHandle,
    h_out: ArrayHandle,
    /// Reference output plus writer multiplicity per position.
    ref_out: Vec<u32>,
    writers: Vec<u8>,
}

impl Xrage {
    fn build(&self, seed: u64) -> (dx100_core::MemoryImage, Data) {
        let pattern = xrage_pattern(self.n, self.target, seed);
        let mut image = dx100_core::MemoryImage::new();
        let h_pat = image.alloc("pattern", DType::U32, self.n as u64);
        let h_val = image.alloc("values", DType::U32, self.n as u64);
        let h_out = image.alloc("out", DType::U32, self.target as u64);
        image.fill_u32(h_pat, &pattern);
        let vals: Vec<u32> = (0..self.n as u32).map(|i| i ^ 0x5a5a).collect();
        image.fill_u32(h_val, &vals);
        let mut ref_out = vec![0u32; self.target];
        let mut writers = vec![0u8; self.target];
        for (i, &p) in pattern.iter().enumerate() {
            ref_out[p as usize] = vals[i];
            writers[p as usize] = writers[p as usize].saturating_add(1);
        }
        (
            image,
            Data {
                pattern: Arc::new(pattern),
                h_pat,
                h_val,
                h_out,
                ref_out,
                writers,
            },
        )
    }
}

/// Baseline scatter stream: `out[pat[i]] = val[i]`.
struct ScatterStream {
    pattern: Arc<Vec<u32>>,
    h_pat: ArrayHandle,
    h_val: ArrayHandle,
    h_out: ArrayHandle,
    i: usize,
    hi: usize,
    step: u8,
}

impl OpStream for ScatterStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.i >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_pat.addr_of(self.i as u64), S_PAT),
            1 => CoreOp::alu().with_dep(1),
            2 => CoreOp::load(self.h_val.addr_of(self.i as u64), S_VAL),
            3 => {
                let p = self.pattern[self.i] as u64;
                CoreOp::Store {
                    addr: self.h_out.addr_of(p),
                    stream: S_OUT,
                    dep: [2, 1],
                }
            }
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.i += 1;
        }
        Some(op)
    }
}

impl KernelRun for Xrage {
    fn name(&self) -> &'static str {
        "xrage"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build(seed);
        let expected = checksum(d.ref_out.iter().map(|&v| v as u64));
        let mut sys = System::new(cfg.clone(), image);
        let cores = sys.num_cores();
        let n = self.n;

        let phases = match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern::simple(
                        d.h_pat.base(),
                        n as u64,
                        DType::U32,
                        d.h_out.base(),
                        DType::U32,
                    ));
                }
                let parts = chunks(n, cores);
                let (pattern, h_pat, h_val, h_out) = (d.pattern.clone(), d.h_pat, d.h_val, d.h_out);
                vec![
                    Phase::RoiBegin,
                    Phase::setup(move |sys| {
                        for (c, (lo, hi)) in parts.iter().enumerate() {
                            sys.push_stream(
                                c,
                                ScatterStream {
                                    pattern: pattern.clone(),
                                    h_pat,
                                    h_val,
                                    h_out,
                                    i: *lo,
                                    hi: *hi,
                                    step: 0,
                                },
                            );
                        }
                    }),
                    Phase::WaitCoresIdle,
                    Phase::RoiEnd,
                ]
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                let tiles = split_tiles(n, tile);
                let (h_pat, h_val, h_out) = (d.h_pat, d.h_val, d.h_out);
                vec![
                    Phase::RoiBegin,
                    Phase::setup(move |sys| {
                        let jobs: Vec<TileJob> = tiles
                            .iter()
                            .enumerate()
                            .map(|(k, (lo, hi))| {
                                let core = k % cores;
                                let g = tile_set4(k);
                                let r = core_regs(core);
                                TileJob {
                                    core,
                                    pre_ops: vec![],
                                    tile_writes: vec![],
                                    reg_writes: vec![
                                        (r[0], *lo as u64),
                                        (r[1], 1),
                                        (r[2], (hi - lo) as u64),
                                    ],
                                    instrs: vec![
                                        Instruction::sld(
                                            DType::U32,
                                            h_pat.base(),
                                            g[0],
                                            r[0],
                                            r[1],
                                            r[2],
                                        ),
                                        Instruction::sld(
                                            DType::U32,
                                            h_val.base(),
                                            g[1],
                                            r[0],
                                            r[1],
                                            r[2],
                                        ),
                                        Instruction::ist(DType::U32, h_out.base(), g[0], g[1]),
                                    ],
                                    post_ops: vec![],
                                }
                            })
                            .collect();
                        install_jobs(sys, &jobs);
                    }),
                    Phase::WaitCoresIdle,
                    Phase::RoiEnd,
                ]
            }
        };
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            // Positions with a single writer must match the reference
            // exactly; multi-writer positions (cross-tile write races,
            // "don't care" in Spatter semantics) must hold *some* writer's
            // value.
            let image = sys.into_image();
            let vals_of: std::collections::HashMap<u32, Vec<u32>> = {
                let mut m: std::collections::HashMap<u32, Vec<u32>> = Default::default();
                for (i, &p) in d.pattern.iter().enumerate() {
                    m.entry(p).or_default().push((i as u32) ^ 0x5a5a);
                }
                m
            };
            for (p, want) in d.ref_out.iter().enumerate() {
                let got = image.read_elem(d.h_out, p as u64) as u32;
                match d.writers[p] {
                    0 => assert_eq!(got, 0, "untouched out[{p}]"),
                    1 => assert_eq!(got, *want, "out[{p}]"),
                    _ => assert!(
                        vals_of[&(p as u32)].contains(&got),
                        "out[{p}] = {got} not among its writers"
                    ),
                }
            }
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_run() {
        let k = Xrage::new(Scale(1.0 / 256.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 3);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 3);
        assert_eq!(b.checksum, x.checksum);
        assert!(x.stats.dx100.unwrap().indirect_line_writes > 0);
    }
}
