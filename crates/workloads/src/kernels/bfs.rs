//! GAP bottom-up Breadth-First Search (the paper's footnote 1 variant) —
//! Table 1 shape: conditional store through indirect range loops
//! `j = H[K[i]] .. H[K[i]+1]`.
//!
//! Per level `d`: every still-unvisited node scans its neighbors; if one
//! sits at depth `d`, the node joins level `d+1`. The unvisited list is the
//! paper's `K`; the neighbor scan is the indirect range loop; the depth
//! check is the condition; the discovery write is the conditional store.
//!
//! The level loop is data-dependent, so this kernel uses a custom driver
//! rather than a static phase list — the same structure as the paper's
//! OpenMP level loop (whose spin-wait synchronization is charged to the
//! instruction count, Section 6.2).

use std::sync::Arc;

use dx100_common::{AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{Driver, DriverStatus, System, SystemConfig};

use crate::datasets::{uniform_graph, Csr};
use crate::kernels::is::split_tiles;
use crate::util::{checksum, chunks, core_regs, install_jobs, set8_core, tile_set8, TileJob};
use crate::{KernelRun, Mode, Scale, WorkloadResult};

const S_U: u32 = 1;
const S_H: u32 = 2;
const S_COL: u32 = 3;
const S_DEPTH: u32 = 4;
const S_REBUILD: u32 = 5;

/// "Not yet visited" depth marker.
pub(crate) const INF: u32 = u32::MAX / 2;

/// Bottom-up BFS from node 0.
#[derive(Debug, Clone)]
pub struct Bfs {
    nodes: usize,
}

impl Bfs {
    /// Default: 2^16 nodes, average degree 15.
    pub fn new(scale: Scale) -> Self {
        Bfs {
            nodes: scale.apply(1 << 18, 1 << 9),
        }
    }

    fn reference(&self, g: &Csr) -> Vec<u32> {
        // Level-synchronous BFS (identical depths to bottom-up execution).
        let n = g.nodes();
        let mut depth = vec![INF; n];
        depth[0] = 0;
        let mut frontier = vec![0u32];
        let mut d = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            // Bottom-up: unvisited nodes look for a level-d neighbor.
            for u in 0..n {
                if depth[u] != INF {
                    continue;
                }
                if g.neigh(u).iter().any(|&v| depth[v as usize] == d) {
                    depth[u] = d + 1;
                    next.push(u as u32);
                }
            }
            frontier = next;
            d += 1;
        }
        depth
    }
}

struct Shared {
    g: Arc<Csr>,
    h_u: ArrayHandle,
    h_off: ArrayHandle,
    h_col: ArrayHandle,
    h_depth: ArrayHandle,
}

/// Baseline per-level stream: for each unvisited node, walk neighbors until
/// a level-`d` one is found (replayed from the functional state).
struct LevelStream {
    shared: Arc<Shared>,
    unvisited: Arc<Vec<u32>>,
    depth: Arc<Vec<u32>>,
    d: u32,
    i: usize,
    hi: usize,
    pending: std::collections::VecDeque<CoreOp>,
}

impl LevelStream {
    fn refill(&mut self) {
        let u = self.unvisited[self.i] as usize;
        let g = &self.shared.g;
        self.pending
            .push_back(CoreOp::load(self.shared.h_u.addr_of(self.i as u64), S_U));
        self.pending.push_back(CoreOp::alu().with_dep(1));
        self.pending.push_back(CoreOp::Load {
            addr: self.shared.h_off.addr_of(u as u64),
            stream: S_H,
            dep: [1, 0],
        });
        self.pending.push_back(CoreOp::Load {
            addr: self.shared.h_off.addr_of((u + 1) as u64),
            stream: S_H,
            dep: [2, 0],
        });
        let (lo, hi) = (g.offsets[u], g.offsets[u + 1]);
        for j in lo..hi {
            let v = g.cols[j as usize] as usize;
            self.pending
                .push_back(CoreOp::load(self.shared.h_col.addr_of(j as u64), S_COL));
            self.pending.push_back(CoreOp::alu().with_dep(1));
            self.pending.push_back(CoreOp::Load {
                addr: self.shared.h_depth.addr_of(v as u64),
                stream: S_DEPTH,
                dep: [1, 0],
            });
            self.pending.push_back(CoreOp::alu().with_dep(1)); // compare
            if self.depth[v] == self.d {
                // Discovered: store the new depth, stop scanning.
                self.pending.push_back(CoreOp::Store {
                    addr: self.shared.h_depth.addr_of(u as u64),
                    stream: S_DEPTH,
                    dep: [1, 0],
                });
                break;
            }
        }
    }
}

impl OpStream for LevelStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            if let Some(op) = self.pending.pop_front() {
                return Some(op);
            }
            if self.i >= self.hi {
                return None;
            }
            self.refill();
            self.i += 1;
        }
    }
}

/// The level-loop driver, shared by baseline and DX100 modes.
struct BfsDriver {
    shared: Arc<Shared>,
    mode: Mode,
    tile: usize,
    depth: Vec<u32>,
    unvisited: Vec<u32>,
    d: u32,
    state: u8, // 0 = start level, 1 = wait, 2 = rebuild, 3 = done
}

impl BfsDriver {
    /// Installs one level's work.
    fn start_level(&mut self, sys: &mut System) {
        // Publish the unvisited list and current depths to the image.
        let (h_u, h_depth) = (self.shared.h_u, self.shared.h_depth);
        {
            let image = sys.image();
            for (i, &u) in self.unvisited.iter().enumerate() {
                image.write_elem(h_u, i as u64, u as u64);
            }
            for (u, &dv) in self.depth.iter().enumerate() {
                image.write_elem(h_depth, u as u64, dv as u64);
            }
        }
        let m = self.unvisited.len();
        match self.mode {
            Mode::Baseline | Mode::Dmp => {
                let parts = chunks(m, sys.num_cores());
                let unvisited = Arc::new(self.unvisited.clone());
                let depth = Arc::new(self.depth.clone());
                for (c, (lo, hi)) in parts.iter().enumerate() {
                    sys.push_stream(
                        c,
                        LevelStream {
                            shared: self.shared.clone(),
                            unvisited: unvisited.clone(),
                            depth: depth.clone(),
                            d: self.d,
                            i: *lo,
                            hi: *hi,
                            pending: Default::default(),
                        },
                    );
                }
            }
            Mode::Dx100 => {
                // Outer tiles sized for the fused range budget (degree ≤ 30).
                let cores = sys.num_cores();
                let outer_per_tile = (self.tile / 32).max(1);
                let tiles = split_tiles(m, outer_per_tile);
                let shared = &self.shared;
                let (h_u, h_off, h_col, h_depth) =
                    (shared.h_u, shared.h_off, shared.h_col, shared.h_depth);
                let (d, budget) = (self.d as u64, self.tile as u64);
                let jobs: Vec<TileJob> = tiles
                    .iter()
                    .enumerate()
                    .map(|(k, (lo, hi))| {
                        let core = set8_core(k, cores);
                        let g = tile_set8(k);
                        let r = core_regs(core);
                        TileJob {
                            core,
                            pre_ops: vec![],
                            tile_writes: vec![],
                            reg_writes: vec![
                                (r[0], *lo as u64),
                                (r[1], 1),
                                (r[2], (hi - lo) as u64),
                                (r[3], 1),
                                (r[4], budget),
                                (r[5], d),
                                (r[6], d + 1),
                            ],
                            instrs: vec![
                                // Unvisited ids and their neighbor ranges.
                                Instruction::sld(DType::U32, h_u.base(), g[0], r[0], r[1], r[2]),
                                Instruction::ild(DType::U32, h_off.base(), g[1], g[0]),
                                Instruction::Alus {
                                    dtype: DType::U32,
                                    op: AluOp::Add,
                                    td: g[2],
                                    ts: g[0],
                                    rs: r[3],
                                    tc: None,
                                },
                                Instruction::ild(DType::U32, h_off.base(), g[3], g[2]),
                                // Fuse: (outer index, edge j).
                                Instruction::Rng {
                                    td1: g[4],
                                    td2: g[5],
                                    ts1: g[1],
                                    ts2: g[3],
                                    rs1: r[4],
                                    tc: None,
                                },
                                // Neighbor ids and depths.
                                Instruction::ild(DType::U32, h_col.base(), g[6], g[5]),
                                Instruction::ild(DType::U32, h_depth.base(), g[7], g[6]),
                                // match = (depth[v] == d)
                                Instruction::Alus {
                                    dtype: DType::U32,
                                    op: AluOp::Eq,
                                    td: g[2],
                                    ts: g[7],
                                    rs: r[5],
                                    tc: None,
                                },
                                // The fused outer index is tile-relative;
                                // rebase by `lo` before gathering u ids.
                                Instruction::Alus {
                                    dtype: DType::U32,
                                    op: AluOp::Add,
                                    td: g[1],
                                    ts: g[4],
                                    rs: r[0],
                                    tc: None,
                                },
                                Instruction::ild(DType::U32, h_u.base(), g[7], g[1]),
                                // value tile = d+1 on matched lanes.
                                Instruction::Alus {
                                    dtype: DType::U32,
                                    op: AluOp::Mul,
                                    td: g[3],
                                    ts: g[2],
                                    rs: r[6],
                                    tc: None,
                                },
                                // depth[u] = d+1 where a neighbor matched.
                                Instruction::Ist {
                                    dtype: DType::U32,
                                    base: h_depth.base(),
                                    ts1: g[7],
                                    ts2: g[3],
                                    tc: Some(g[2]),
                                },
                            ],
                            post_ops: vec![],
                        }
                    })
                    .collect();
                install_jobs(sys, &jobs);
            }
        }
    }

    /// Applies the level functionally and queues the rebuild-scan timing.
    fn finish_level(&mut self, sys: &mut System) -> bool {
        // Read discoveries back from the image (DX100 wrote them; the
        // baseline replayed them into its stream, so recompute functionally).
        let mut discovered = 0;
        let g = &self.shared.g;
        let mut new_depth = self.depth.clone();
        for &u in &self.unvisited {
            let u = u as usize;
            if g.neigh(u).iter().any(|&v| self.depth[v as usize] == self.d) {
                new_depth[u] = self.d + 1;
                discovered += 1;
            }
        }
        if self.mode == Mode::Dx100 {
            // The machine's depth array must agree with the reference step.
            let image = sys.image_ref();
            for &u in &self.unvisited {
                assert_eq!(
                    image.read_elem(self.shared.h_depth, u as u64) as u32,
                    new_depth[u as usize],
                    "depth[{u}] after level {}",
                    self.d
                );
            }
        }
        self.depth = new_depth;
        // Rebuild scan: each core streams over its share of the old
        // unvisited list (load depth + compare + occasional append store).
        let m = self.unvisited.len();
        let parts = chunks(m, sys.num_cores());
        for (c, (lo, hi)) in parts.iter().enumerate() {
            let mut ops = Vec::with_capacity((hi - lo) * 3);
            for i in *lo..*hi {
                let u = self.unvisited[i] as u64;
                ops.push(CoreOp::load(self.shared.h_depth.addr_of(u), S_REBUILD));
                ops.push(CoreOp::alu().with_dep(1));
                if self.depth[self.unvisited[i] as usize] == INF {
                    ops.push(CoreOp::store(self.shared.h_u.addr_of(i as u64), S_U));
                }
            }
            sys.push_ops(c, ops);
        }
        self.unvisited.retain(|&u| self.depth[u as usize] == INF);
        self.d += 1;
        discovered > 0 && !self.unvisited.is_empty()
    }
}

impl Driver for BfsDriver {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        loop {
            match self.state {
                0 => {
                    if self.d == 0 {
                        sys.roi_begin();
                    }
                    self.start_level(sys);
                    self.state = 1;
                    return DriverStatus::Running;
                }
                1 => {
                    if !sys.cores_idle() {
                        return DriverStatus::Running;
                    }
                    self.state = 2;
                }
                2 => {
                    let more = self.finish_level(sys);
                    self.state = if more { 0 } else { 3 };
                    if self.state == 3 {
                        sys.roi_end();
                        return DriverStatus::Done;
                    }
                }
                _ => return DriverStatus::Done,
            }
        }
    }
}

impl KernelRun for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let g = Arc::new(uniform_graph(self.nodes, 15, seed));
        let n = self.nodes;
        let ref_depth = self.reference(&g);
        let expected = checksum(ref_depth.iter().map(|&v| v as u64));

        let mut image = dx100_core::MemoryImage::new();
        let h_u = image.alloc("U", DType::U32, n as u64);
        let h_off = image.alloc("H", DType::U32, (n + 1) as u64);
        let h_col = image.alloc("col", DType::U32, g.edges().max(1) as u64);
        let h_depth = image.alloc("depth", DType::U32, n as u64);
        image.fill_u32(h_off, &g.offsets);
        if !g.cols.is_empty() {
            image.fill_u32(h_col, &g.cols);
        }
        for u in 0..n {
            image.write_elem(h_depth, u as u64, INF as u64);
        }
        image.write_elem(h_depth, 0, 0);

        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // The frontier and depth arrays are host-written every level
            // (frontier compaction, depth init), so their pages carry
            // H-bits. The CSR is deliberately NOT marked: at full scale it
            // exceeds the LLC, so its pages' H-bits are clear in steady
            // state and edge gathers take the reordered direct-DRAM path.
            for h in [h_u, h_depth] {
                sys.mark_host_resident(h.base(), h.size_bytes());
            }
        }
        if mode == Mode::Dmp {
            let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
            dmp.add_pattern(IndirectPattern::simple(
                h_col.base(),
                g.edges() as u64,
                DType::U32,
                h_depth.base(),
                DType::U32,
            ));
        }
        let shared = Arc::new(Shared {
            g: g.clone(),
            h_u,
            h_off,
            h_col,
            h_depth,
        });
        let mut depth = vec![INF; n];
        depth[0] = 0;
        let mut driver = BfsDriver {
            shared,
            mode,
            tile: cfg
                .dx100
                .as_ref()
                .map(|d| d.tile_elems)
                .unwrap_or(16 * 1024),
            depth,
            unvisited: (1..n as u32).collect(),
            d: 0,
            state: 0,
        };
        let stats = sys.run(&mut driver);
        let telemetry = sys.telemetry();

        // Final depths must match the reference in every mode (the driver
        // asserted per-level agreement for DX100 already).
        assert_eq!(driver.depth, ref_depth, "BFS depths diverged");
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_levels_verified() {
        let k = Bfs::new(Scale(1.0 / 64.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 8);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 8);
        assert_eq!(b.checksum, x.checksum);
        assert!(x.stats.cycles > 0);
    }
}
