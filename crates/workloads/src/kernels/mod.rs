//! The twelve evaluation kernels (paper Table 1 / Section 5).

pub mod bc;
pub mod bfs;
pub mod cg;
pub mod is;
pub mod pr;
pub mod prh;
pub mod pro;
pub mod ume;
pub mod xrage;
