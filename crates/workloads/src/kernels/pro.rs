//! Hash-Join PRO: bucket-chaining radix join *probe* — array-based
//! linked-list traversal `nodes[next_idx[i]]`, the pattern Section 4.1
//! highlights ("DX100 accelerates this pattern by processing bulk
//! linked-list traversal operations across many tuples").
//!
//! The hash table is bucket-chained: `head[h]` points at a node, nodes link
//! through `next[]`. A probe walks its chain comparing keys. The baseline
//! pays a dependent-load chain per step; DX100 walks *all* probes' chains in
//! lockstep rounds — per round one bulk `ILD` per array with a shrinking
//! active mask.

use std::sync::Arc;

use dx100_common::{AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{System, SystemConfig};

use crate::datasets::rng;
use crate::kernels::is::split_tiles;
use crate::util::{
    checksum, chunks, core_regs, install_jobs, set8_core, tile_set8, Phase, PhasedDriver, TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};
use rand::Rng;

const S_PROBE: u32 = 1;
const S_HEAD: u32 = 2;
const S_NKEY: u32 = 3;
const S_NEXT: u32 = 4;
const S_FOUND: u32 = 5;

/// Chain-walk rounds (build sizing keeps chains within this bound for the
/// probes that match).
const ROUNDS: usize = 4;

/// The PRO kernel.
#[derive(Debug, Clone)]
pub struct RadixJoinChaining {
    tuples: usize,
}

impl RadixJoinChaining {
    /// Default: 2^18 build tuples, 2^18 probes, 2^16 buckets (avg chain 4).
    pub fn new(scale: Scale) -> Self {
        RadixJoinChaining {
            tuples: scale.apply(1 << 18, 1 << 10),
        }
    }
}

struct Data {
    probes: Arc<Vec<u32>>,
    node_keys: Arc<Vec<u32>>,
    next: Arc<Vec<u32>>,
    head: Arc<Vec<u32>>,
    h_probe: ArrayHandle,
    h_head: ArrayHandle,
    h_nkey: ArrayHandle,
    h_next: ArrayHandle,
    h_found: ArrayHandle,
    h_iota: ArrayHandle,
    ref_found: Vec<u32>,
    mask: u32,
    sentinel: u32,
}

impl RadixJoinChaining {
    fn build(&self, seed: u64) -> (dx100_core::MemoryImage, Data) {
        let n = self.tuples;
        let buckets = (n / 4).next_power_of_two().max(16);
        let mask = (buckets - 1) as u32;
        let sentinel = n as u32;
        let mut r = rng(seed);
        // Build side: node i holds key build_keys[i]; chains via head/next.
        let node_keys: Vec<u32> = (0..n).map(|_| r.gen_range(1..u32::MAX)).collect();
        let mut head = vec![sentinel; buckets];
        let mut next = vec![sentinel; n + 1];
        for i in 0..n {
            let h = (node_keys[i] & mask) as usize;
            next[i] = head[h];
            head[h] = i as u32;
        }
        // Probe side: half hit (reuse a build key), half miss.
        let probes: Vec<u32> = (0..n)
            .map(|_| {
                if r.gen_bool(0.5) {
                    node_keys[r.gen_range(0..n)]
                } else {
                    r.gen_range(1..u32::MAX)
                }
            })
            .collect();
        // Reference: found within ROUNDS chain steps.
        let ref_found: Vec<u32> = probes
            .iter()
            .map(|&k| {
                let mut cur = head[(k & mask) as usize];
                for _ in 0..ROUNDS {
                    if cur == sentinel {
                        break;
                    }
                    if node_keys[cur as usize] == k {
                        return 1;
                    }
                    cur = next[cur as usize];
                }
                0
            })
            .collect();
        let mut image = dx100_core::MemoryImage::new();
        let h_probe = image.alloc("probes", DType::U32, n as u64);
        let h_head = image.alloc("head", DType::U32, buckets as u64);
        // One extra sentinel slot so gated lanes stay in bounds.
        let h_nkey = image.alloc("node_keys", DType::U32, (n + 1) as u64);
        let h_next = image.alloc("next", DType::U32, (n + 1) as u64);
        let h_found = image.alloc("found", DType::U32, n as u64);
        let h_iota = image.alloc("iota", DType::U32, n as u64);
        image.fill_u32(h_probe, &probes);
        image.fill_u32(h_head, &head);
        for (i, &k) in node_keys.iter().enumerate() {
            image.write_elem(h_nkey, i as u64, k as u64);
        }
        for (i, &v) in next.iter().enumerate() {
            image.write_elem(h_next, i as u64, v as u64);
        }
        for i in 0..n {
            image.write_elem(h_iota, i as u64, i as u64);
        }
        (
            image,
            Data {
                probes: Arc::new(probes),
                node_keys: Arc::new(node_keys),
                next: Arc::new(next),
                head: Arc::new(head),
                h_probe,
                h_head,
                h_nkey,
                h_next,
                h_found,
                h_iota,
                ref_found,
                mask,
                sentinel,
            },
        )
    }
}

/// Baseline probe stream: hash, dependent chain walk with early exit.
struct ProbeStream {
    probes: Arc<Vec<u32>>,
    node_keys: Arc<Vec<u32>>,
    next: Arc<Vec<u32>>,
    head: Arc<Vec<u32>>,
    h_probe: ArrayHandle,
    h_head: ArrayHandle,
    h_nkey: ArrayHandle,
    h_next: ArrayHandle,
    h_found: ArrayHandle,
    mask: u32,
    sentinel: u32,
    i: usize,
    hi: usize,
    /// Remaining ops for the current probe (generated by replay).
    pending: std::collections::VecDeque<CoreOp>,
}

impl ProbeStream {
    fn refill(&mut self) {
        let k = self.probes[self.i];
        let h = (k & self.mask) as usize;
        self.pending
            .push_back(CoreOp::load(self.h_probe.addr_of(self.i as u64), S_PROBE));
        self.pending.push_back(CoreOp::alu().with_dep(1)); // hash
        self.pending.push_back(CoreOp::Load {
            addr: self.h_head.addr_of(h as u64),
            stream: S_HEAD,
            dep: [1, 0],
        });
        let mut cur = self.head[h];
        for _ in 0..ROUNDS {
            if cur == self.sentinel {
                break;
            }
            // Dependent loads: node key, compare, then the next pointer.
            self.pending.push_back(CoreOp::Load {
                addr: self.h_nkey.addr_of(cur as u64),
                stream: S_NKEY,
                dep: [1, 0],
            });
            self.pending.push_back(CoreOp::alu().with_dep(1)); // compare
            if self.node_keys[cur as usize] == k {
                break;
            }
            self.pending.push_back(CoreOp::Load {
                addr: self.h_next.addr_of(cur as u64),
                stream: S_NEXT,
                dep: [3, 0],
            });
            cur = self.next[cur as usize];
        }
        self.pending.push_back(CoreOp::Store {
            addr: self.h_found.addr_of(self.i as u64),
            stream: S_FOUND,
            dep: [1, 0],
        });
    }
}

impl OpStream for ProbeStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            if let Some(op) = self.pending.pop_front() {
                return Some(op);
            }
            if self.i >= self.hi {
                return None;
            }
            self.refill();
            self.i += 1;
        }
    }
}

impl KernelRun for RadixJoinChaining {
    fn name(&self) -> &'static str {
        "pro"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build(seed);
        let expected = checksum(d.ref_found.iter().map(|&v| v as u64));
        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // The hash table (head/node_keys/next) is built by the host
            // before the probe phase, so its pages carry H-bits: the
            // engine's probe gathers route via the LLC, capturing the
            // same residency the baseline's probes enjoy.
            for h in [d.h_head, d.h_nkey, d.h_next] {
                sys.mark_host_resident(h.base(), h.size_bytes());
            }
        }
        let cores = sys.num_cores();
        let n = self.tuples;

        let mut phases = vec![Phase::RoiBegin];
        match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    // DMP can cover the first hop (head[hash(probe)]); the
                    // chain hops are data-dependent beyond its reach.
                    dmp.add_pattern(IndirectPattern {
                        index_base: d.h_probe.base(),
                        index_len: n as u64,
                        index_dtype: DType::U32,
                        target_base: d.h_head.base(),
                        target_dtype: DType::U32,
                        index_shift: 0,
                        index_mask: d.mask as u64,
                    });
                }
                let parts = chunks(n, cores);
                let data = (
                    d.probes.clone(),
                    d.node_keys.clone(),
                    d.next.clone(),
                    d.head.clone(),
                );
                let handles = (d.h_probe, d.h_head, d.h_nkey, d.h_next, d.h_found);
                let (mask, sentinel) = (d.mask, d.sentinel);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            ProbeStream {
                                probes: data.0.clone(),
                                node_keys: data.1.clone(),
                                next: data.2.clone(),
                                head: data.3.clone(),
                                h_probe: handles.0,
                                h_head: handles.1,
                                h_nkey: handles.2,
                                h_next: handles.3,
                                h_found: handles.4,
                                mask,
                                sentinel,
                                i: *lo,
                                hi: *hi,
                                pending: Default::default(),
                            },
                        );
                    }
                }));
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                let tiles = split_tiles(n, tile);
                let (h_probe, h_head, h_nkey, h_next, h_found, h_iota) =
                    (d.h_probe, d.h_head, d.h_nkey, d.h_next, d.h_found, d.h_iota);
                let (mask, sentinel) = (d.mask as u64, d.sentinel as u64);
                phases.push(Phase::setup(move |sys| {
                    let jobs: Vec<TileJob> = tiles
                        .iter()
                        .enumerate()
                        .map(|(kji, (lo, hi))| {
                            let core = set8_core(kji, cores);
                            let g = tile_set8(kji);
                            let r = core_regs(core);
                            // g0 probes, g1 iota, cur: g2↔g3, active: g4↔g5,
                            // scratch: g6 (node keys / lt), g7 (eq).
                            let mut instrs = vec![
                                Instruction::sld(
                                    DType::U32,
                                    h_probe.base(),
                                    g[0],
                                    r[0],
                                    r[1],
                                    r[2],
                                ),
                                Instruction::sld(DType::U32, h_iota.base(), g[1], r[0], r[1], r[2]),
                                // bucket = probe & mask
                                Instruction::Alus {
                                    dtype: DType::U32,
                                    op: AluOp::And,
                                    td: g[6],
                                    ts: g[0],
                                    rs: r[3],
                                    tc: None,
                                },
                                // cur = head[bucket]
                                Instruction::ild(DType::U32, h_head.base(), g[2], g[6]),
                                // active = cur < sentinel
                                Instruction::Alus {
                                    dtype: DType::U32,
                                    op: AluOp::Lt,
                                    td: g[4],
                                    ts: g[2],
                                    rs: r[4],
                                    tc: None,
                                },
                            ];
                            for round in 0..ROUNDS {
                                let (cur, curn) = if round % 2 == 0 {
                                    (g[2], g[3])
                                } else {
                                    (g[3], g[2])
                                };
                                let (act, actn) = if round % 2 == 0 {
                                    (g[4], g[5])
                                } else {
                                    (g[5], g[4])
                                };
                                instrs.extend([
                                    // node keys for active lanes (0 elsewhere)
                                    Instruction::ild(DType::U32, h_nkey.base(), g[6], cur)
                                        .with_condition(act),
                                    // eq = active & (node key == probe key)
                                    Instruction::Aluv {
                                        dtype: DType::U32,
                                        op: AluOp::Eq,
                                        td: g[7],
                                        ts1: g[6],
                                        ts2: g[0],
                                        tc: Some(act),
                                    },
                                    // record matches: found[iota] = 1 where eq
                                    Instruction::Ist {
                                        dtype: DType::U32,
                                        base: h_found.base(),
                                        ts1: g[1],
                                        ts2: g[7],
                                        tc: Some(g[7]),
                                    },
                                    // advance the chain
                                    Instruction::ild(DType::U32, h_next.base(), curn, cur)
                                        .with_condition(act),
                                    // still-in-chain test, folded with the mask
                                    Instruction::Alus {
                                        dtype: DType::U32,
                                        op: AluOp::Lt,
                                        td: g[6],
                                        ts: curn,
                                        rs: r[4],
                                        tc: None,
                                    },
                                    Instruction::Aluv {
                                        dtype: DType::U32,
                                        op: AluOp::And,
                                        td: actn,
                                        ts1: g[4 + round % 2],
                                        ts2: g[6],
                                        tc: None,
                                    },
                                ]);
                            }
                            TileJob {
                                core,
                                pre_ops: vec![],
                                tile_writes: vec![],
                                reg_writes: vec![
                                    (r[0], *lo as u64),
                                    (r[1], 1),
                                    (r[2], (hi - lo) as u64),
                                    (r[3], mask),
                                    (r[4], sentinel),
                                ],
                                instrs,
                                post_ops: vec![],
                            }
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
            }
        }
        phases.push(Phase::WaitCoresIdle);
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            let image = sys.into_image();
            for (i, want) in d.ref_found.iter().enumerate() {
                assert_eq!(
                    image.read_elem(d.h_found, i as u64) as u32,
                    *want,
                    "found[{i}] (probe key {})",
                    d.probes[i]
                );
            }
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_walk_verified() {
        let k = RadixJoinChaining::new(Scale(1.0 / 128.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 6);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 6);
        assert_eq!(b.checksum, x.checksum);
    }
}
