//! GAP PageRank (push-style) — Table 1 pattern `RMW A[B[j]]` over direct
//! range loops `j = H[i] .. H[i+1]`.
//!
//! One iteration: each node's contribution `contrib[u] = rank[u] / deg[u]`
//! is computed on the cores (streaming), then scattered to its out-neighbors
//! with `next[col[j]] += contrib[src[j]]` over the flattened edge list.
//! The baseline needs atomic f64 adds; DX100 issues IRMW tiles.

use std::sync::Arc;

use dx100_common::{value, AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sampling::{AccessSink, InstallFn, Resident, SampledRun, SampledStage};
use dx100_sim::{System, SystemConfig};

use crate::datasets::uniform_graph;
use crate::kernels::is::split_tiles;
use crate::util::{
    assert_f64_close, checksum, chunks, core_regs, install_jobs, quantize_f64, tile_set4, Phase,
    PhasedDriver, TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};

const S_SRC: u32 = 1;
const S_COL: u32 = 2;
const S_CONTRIB: u32 = 3;
const S_NEXT: u32 = 4;
const S_NODE: u32 = 5;

/// One push-style PageRank iteration.
#[derive(Debug, Clone)]
pub struct PageRank {
    nodes: usize,
}

impl PageRank {
    /// Default: 2^16 nodes, average degree 15 (paper: 2^20..2^22 nodes).
    pub fn new(scale: Scale) -> Self {
        PageRank {
            nodes: scale.apply(1 << 17, 1 << 9),
        }
    }
}

struct Data {
    src: Arc<Vec<u32>>,
    col: Arc<Vec<u32>>,
    h_src: ArrayHandle,
    h_col: ArrayHandle,
    h_contrib: ArrayHandle,
    h_next: ArrayHandle,
    h_rank: ArrayHandle,
    h_deg: ArrayHandle,
    ref_next: Vec<f64>,
    contrib: Vec<f64>,
}

impl PageRank {
    fn build(&self, seed: u64) -> (dx100_core::MemoryImage, Data) {
        let g = uniform_graph(self.nodes, 15, seed);
        let n = self.nodes;
        // Flatten: per-edge source array (the paper's range loop j=H[i]..H[i+1]
        // walked with its source node i).
        let mut src = Vec::with_capacity(g.edges());
        for u in 0..n {
            for _ in g.neigh(u) {
                src.push(u as u32);
            }
        }
        let col = g.cols.clone();
        let ranks: Vec<f64> = (0..n).map(|u| 1.0 + (u % 7) as f64 * 0.125).collect();
        let degs: Vec<f64> = (0..n).map(|u| g.neigh(u).len().max(1) as f64).collect();
        let contrib: Vec<f64> = (0..n).map(|u| ranks[u] / degs[u]).collect();
        let mut ref_next = vec![0.0f64; n];
        for (j, &v) in col.iter().enumerate() {
            ref_next[v as usize] += contrib[src[j] as usize];
        }
        let mut image = dx100_core::MemoryImage::new();
        let h_src = image.alloc("src", DType::U32, src.len() as u64);
        let h_col = image.alloc("col", DType::U32, col.len() as u64);
        let h_contrib = image.alloc("contrib", DType::F64, n as u64);
        let h_next = image.alloc("next", DType::F64, n as u64);
        let h_rank = image.alloc("rank", DType::F64, n as u64);
        let h_deg = image.alloc("deg", DType::F64, n as u64);
        image.fill_u32(h_src, &src);
        image.fill_u32(h_col, &col);
        image.fill_f64(h_rank, &ranks);
        image.fill_f64(h_deg, &degs);
        (
            image,
            Data {
                src: Arc::new(src),
                col: Arc::new(col),
                h_src,
                h_col,
                h_contrib,
                h_next,
                h_rank,
                h_deg,
                ref_next,
                contrib,
            },
        )
    }
}

/// Streaming contribution computation: `contrib[u] = rank[u] / deg[u]`
/// (both modes run this on the cores).
struct ContribStream {
    h_rank: ArrayHandle,
    h_deg: ArrayHandle,
    h_contrib: ArrayHandle,
    u: usize,
    hi: usize,
    step: u8,
}

impl OpStream for ContribStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.u >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_rank.addr_of(self.u as u64), S_NODE),
            1 => CoreOp::load(self.h_deg.addr_of(self.u as u64), S_NODE + 10),
            2 => CoreOp::alu().with_dep(1).with_dep(2), // divide
            3 => CoreOp::Store {
                addr: self.h_contrib.addr_of(self.u as u64),
                stream: S_CONTRIB,
                dep: [1, 0],
            },
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.u += 1;
        }
        Some(op)
    }
}

/// Baseline edge scatter: `next[col[j]] += contrib[src[j]]` with atomics.
struct EdgeStream {
    src: Arc<Vec<u32>>,
    col: Arc<Vec<u32>>,
    h_src: ArrayHandle,
    h_col: ArrayHandle,
    h_contrib: ArrayHandle,
    h_next: ArrayHandle,
    j: usize,
    hi: usize,
    step: u8,
}

impl OpStream for EdgeStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.j >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_src.addr_of(self.j as u64), S_SRC),
            1 => CoreOp::alu().with_dep(1),
            2 => {
                let u = self.src[self.j] as u64;
                CoreOp::Load {
                    addr: self.h_contrib.addr_of(u),
                    stream: S_CONTRIB,
                    dep: [1, 0],
                }
            }
            3 => CoreOp::load(self.h_col.addr_of(self.j as u64), S_COL),
            4 => CoreOp::alu().with_dep(1),
            5 => {
                let v = self.col[self.j] as u64;
                CoreOp::atomic(self.h_next.addr_of(v), S_NEXT)
                    .with_dep(1)
                    .with_dep(3)
            }
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 6 {
            self.step = 0;
            self.j += 1;
        }
        Some(op)
    }
}

impl KernelRun for PageRank {
    fn name(&self) -> &'static str {
        "pr"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build(seed);
        let expected = checksum(d.ref_next.iter().map(|&v| quantize_f64(v)));
        let mut sys = System::new(cfg.clone(), image);
        let cores = sys.num_cores();
        let n = self.nodes;
        let edges = d.col.len();

        let mut phases = vec![Phase::RoiBegin];
        // Phase A (both modes): compute contributions on the cores, and
        // apply them functionally so the scatter reads real data.
        {
            let parts = chunks(n, cores);
            let (h_rank, h_deg, h_contrib) = (d.h_rank, d.h_deg, d.h_contrib);
            let contrib = d.contrib.clone();
            phases.push(Phase::setup(move |sys| {
                let image = sys.image();
                for (u, c) in contrib.iter().enumerate() {
                    image.write_elem(h_contrib, u as u64, value::from_f64(*c));
                }
                for (c, (lo, hi)) in parts.iter().enumerate() {
                    sys.push_stream(
                        c,
                        ContribStream {
                            h_rank,
                            h_deg,
                            h_contrib,
                            u: *lo,
                            hi: *hi,
                            step: 0,
                        },
                    );
                }
            }));
            phases.push(Phase::WaitCoresIdle);
        }
        // Phase B: edge scatter.
        match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern::simple(
                        d.h_col.base(),
                        edges as u64,
                        DType::U32,
                        d.h_next.base(),
                        DType::F64,
                    ));
                    dmp.add_pattern(IndirectPattern::simple(
                        d.h_src.base(),
                        edges as u64,
                        DType::U32,
                        d.h_contrib.base(),
                        DType::F64,
                    ));
                }
                let parts = chunks(edges, cores);
                let (src, col) = (d.src.clone(), d.col.clone());
                let (h_src, h_col, h_contrib, h_next) = (d.h_src, d.h_col, d.h_contrib, d.h_next);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            EdgeStream {
                                src: src.clone(),
                                col: col.clone(),
                                h_src,
                                h_col,
                                h_contrib,
                                h_next,
                                j: *lo,
                                hi: *hi,
                                step: 0,
                            },
                        );
                    }
                }));
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                let tiles = split_tiles(edges, tile);
                let (h_src, h_col, h_contrib, h_next) = (d.h_src, d.h_col, d.h_contrib, d.h_next);
                phases.push(Phase::setup(move |sys| {
                    let jobs: Vec<TileJob> = tiles
                        .iter()
                        .enumerate()
                        .map(|(k, (lo, hi))| {
                            scatter_tile(k % cores, k, *lo, *hi, h_src, h_contrib, h_col, h_next)
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
            }
        }
        phases.push(Phase::WaitCoresIdle);
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            let image = sys.into_image();
            let got: Vec<f64> = (0..n)
                .map(|v| value::to_f64(image.read_elem(d.h_next, v as u64)))
                .collect();
            assert_f64_close(&got, &d.ref_next, 1e-9);
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }

    fn prepare_sampled(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> Option<SampledRun> {
        use dx100_sim::Checkpoint;

        let (image, d) = self.build(seed);
        let checksum = checksum(d.ref_next.iter().map(|&v| quantize_f64(v)));
        let mut sys = System::new(cfg.clone(), image);
        let edges = d.col.len();
        if mode == Mode::Dmp {
            let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
            dmp.add_pattern(IndirectPattern::simple(
                d.h_col.base(),
                edges as u64,
                DType::U32,
                d.h_next.base(),
                DType::F64,
            ));
            dmp.add_pattern(IndirectPattern::simple(
                d.h_src.base(),
                edges as u64,
                DType::U32,
                d.h_contrib.base(),
                DType::F64,
            ));
        }
        let cores = sys.num_cores();
        let checkpoint = Arc::new(sys.save().ok()?);
        let (h_src, h_col, h_contrib, h_next) = (d.h_src, d.h_col, d.h_contrib, d.h_next);
        let (h_rank, h_deg) = (d.h_rank, d.h_deg);

        // Scatter addresses come from `src`/`col`, fixed at build time, so
        // windows replay soundly from the clock-0 checkpoint. The contrib
        // values the full run writes functionally before the scatter only
        // feed ild *data*, never an address, and are dropped here.
        let contrib_access = Box::new(move |u: usize, s: &mut AccessSink| {
            s.stream(h_rank.addr_of(u as u64));
            s.stream(h_deg.addr_of(u as u64));
            s.alu(1);
            s.stream(h_contrib.addr_of(u as u64));
        });
        let contrib_install: InstallFn = Arc::new(move |sys: &mut System, lo, hi| {
            for (c, (plo, phi)) in chunks(hi - lo, cores).iter().enumerate() {
                sys.push_stream(
                    c,
                    ContribStream {
                        h_rank,
                        h_deg,
                        h_contrib,
                        u: lo + plo,
                        hi: lo + phi,
                        step: 0,
                    },
                );
            }
        });

        let (asrc, acol) = (d.src.clone(), d.col.clone());
        let scatter_access = Box::new(move |j: usize, s: &mut AccessSink| {
            s.stream(h_src.addr_of(j as u64));
            s.alu(1);
            s.indirect(h_contrib.addr_of(asrc[j] as u64));
            s.stream(h_col.addr_of(j as u64));
            s.alu(1);
            s.indirect(h_next.addr_of(acol[j] as u64));
        });
        let scatter_install: InstallFn = match mode {
            Mode::Baseline | Mode::Dmp => {
                let (src, col) = (d.src.clone(), d.col.clone());
                Arc::new(move |sys: &mut System, lo, hi| {
                    for (c, (plo, phi)) in chunks(hi - lo, cores).iter().enumerate() {
                        sys.push_stream(
                            c,
                            EdgeStream {
                                src: src.clone(),
                                col: col.clone(),
                                h_src,
                                h_col,
                                h_contrib,
                                h_next,
                                j: lo + plo,
                                hi: lo + phi,
                                step: 0,
                            },
                        );
                    }
                })
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref()?.tile_elems;
                Arc::new(move |sys: &mut System, lo, hi| {
                    let jobs: Vec<TileJob> = split_tiles(hi - lo, tile)
                        .iter()
                        .enumerate()
                        .map(|(k, (tlo, thi))| {
                            scatter_tile(
                                k % cores,
                                k,
                                lo + tlo,
                                lo + thi,
                                h_src,
                                h_contrib,
                                h_col,
                                h_next,
                            )
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                })
            }
        };

        Some(SampledRun {
            cfg: cfg.clone(),
            checkpoint,
            checksum,
            stages: vec![
                // The contrib phase streams rank/deg/contrib once each —
                // no standing working set to warm.
                SampledStage {
                    name: "contrib",
                    items: self.nodes,
                    access: contrib_access,
                    install: contrib_install,
                    resident: Vec::new(),
                },
                // The scatter gathers from `contrib` (fully written by the
                // contrib phase, so already cached when scatter starts)
                // and accumulates into `next` (cold at scatter start);
                // both per-node arrays see one random touch per edge while
                // the edge arrays stream past them.
                SampledStage {
                    name: "scatter",
                    items: edges,
                    access: scatter_access,
                    install: scatter_install,
                    resident: vec![
                        Resident {
                            base: h_contrib.base(),
                            bytes: h_contrib.size_bytes(),
                            prior_touches: self.nodes as u64,
                            host_resident: false,
                        },
                        Resident {
                            base: h_next.base(),
                            bytes: h_next.size_bytes(),
                            prior_touches: 0,
                            host_resident: false,
                        },
                    ],
                },
            ],
        })
    }
}

/// One DX100 scatter tile: `next[col[lo..hi]] += contrib[src[lo..hi]]`.
#[allow(clippy::too_many_arguments)]
fn scatter_tile(
    core: usize,
    k: usize,
    lo: usize,
    hi: usize,
    h_src: ArrayHandle,
    h_contrib: ArrayHandle,
    h_col: ArrayHandle,
    h_next: ArrayHandle,
) -> TileJob {
    let g = tile_set4(k);
    let r = core_regs(core);
    TileJob {
        core,
        pre_ops: vec![],
        tile_writes: vec![],
        reg_writes: vec![(r[0], lo as u64), (r[1], 1), (r[2], (hi - lo) as u64)],
        instrs: vec![
            // Gather contributions via the source ids.
            Instruction::sld(DType::U32, h_src.base(), g[0], r[0], r[1], r[2]),
            Instruction::ild(DType::F64, h_contrib.base(), g[1], g[0]),
            // Scatter-add into next ranks.
            Instruction::sld(DType::U32, h_col.base(), g[2], r[0], r[1], r[2]),
            Instruction::irmw(DType::F64, AluOp::Add, h_next.base(), g[2], g[1]),
        ],
        post_ops: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dx100_matches_reference_and_beats_baseline_shape() {
        let k = PageRank::new(Scale(1.0 / 64.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 11);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 11);
        assert_eq!(b.checksum, x.checksum);
        assert!(x.stats.instructions < b.stats.instructions);
    }

    #[test]
    fn sampled_windows_replay_from_checkpoint() {
        let k = PageRank::new(Scale(1.0 / 64.0));
        let run = k
            .prepare_sampled(Mode::Dx100, &SystemConfig::paper_dx100(), 11)
            .unwrap();
        assert_eq!(run.stages.len(), 2);
        let plan = dx100_sampling::plan(&run, 1, "pr/test");
        assert!(!plan.windows.is_empty());
        // Replay a scatter-stage window; DX100 tile work must show up.
        let w = plan.windows.iter().find(|w| w.stage == 1).copied().unwrap();
        let stats = dx100_sampling::replay_window(&run, w, &Default::default());
        assert!(stats.cycles > 0);
        let dx = stats.dx100.unwrap();
        assert!(dx.instructions_retired > 0);
        assert!(dx.indirect_line_writes > 0); // the window's IRMW scatter ran
    }
}
