//! UME unstructured-mesh gradient kernels (GZZ, GZP, GZZI, GZPI) —
//! Table 1 patterns:
//!
//! * **GZZ / GZP** (direct): `RMW A[B[i]] if (D[i] >= F)` — conditional
//!   scatter-add of zone/point values through a mesh connectivity map with
//!   the paper's measured low spatial locality (mean index distance ≈ 4% of
//!   the mesh, their 85K over 2M points).
//! * **GZZI / GZPI** (indirect): `LD A[B[C[j]]] if (D[j] >= F)` over
//!   indirect range loops `j = H[K[i]] .. H[K[i]+1]` — two levels of
//!   indirection behind the Range Fuser.

use std::sync::Arc;

use dx100_common::{value, AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{System, SystemConfig};

use crate::datasets::{rng, ume_index_map};
use crate::kernels::is::split_tiles;
use crate::util::{
    assert_f64_close, checksum, chunks, core_regs, install_jobs, quantize_f64, set8_core,
    tile_set4, tile_set8, Phase, PhasedDriver, TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};
use rand::Rng;

const S_MAP: u32 = 1;
const S_MASK: u32 = 2;
const S_VAL: u32 = 3;
const S_GRAD: u32 = 4;
const S_K: u32 = 5;
const S_H: u32 = 6;
const S_C: u32 = 7;
const S_B: u32 = 8;
const S_A: u32 = 9;
const S_OUT: u32 = 10;

/// Condition threshold: `mask[i] >= F` keeps ~60% of iterations active.
const F_THRESHOLD: u64 = 40;

/// One UME gradient kernel (zone or point; direct or indirect variant).
#[derive(Debug, Clone)]
pub struct Ume {
    n: usize,
    indirect: bool,
    name: &'static str,
    /// Mean index distance as a fraction of the mesh (zones and points use
    /// slightly different connectivity shapes).
    distance_frac: f64,
}

impl Ume {
    /// Zone-gradient kernel: `gzz` (direct) or `gzzi` (indirect).
    pub fn zone(scale: Scale, indirect: bool) -> Self {
        Ume {
            n: scale.apply(1 << 19, 1 << 10),
            indirect,
            name: if indirect { "gzzi" } else { "gzz" },
            distance_frac: 0.042, // the paper's 85K / 2M
        }
    }

    /// Point-gradient kernel: `gzp` (direct) or `gzpi` (indirect).
    pub fn point(scale: Scale, indirect: bool) -> Self {
        Ume {
            n: scale.apply(1 << 19, 1 << 10),
            indirect,
            name: if indirect { "gzpi" } else { "gzp" },
            distance_frac: 0.08,
        }
    }
}

struct DirectData {
    map: Arc<Vec<u32>>,
    mask: Arc<Vec<u32>>,
    h_map: ArrayHandle,
    h_mask: ArrayHandle,
    h_val: ArrayHandle,
    h_grad: ArrayHandle,
    ref_grad: Vec<f64>,
}

struct IndirectData {
    k_list: Arc<Vec<u32>>,
    #[allow(dead_code)]
    h_off: Arc<Vec<u32>>,
    c_map: Arc<Vec<u32>>,
    b_map: Arc<Vec<u32>>,
    mask: Arc<Vec<u32>>,
    hk: ArrayHandle,
    hh: ArrayHandle,
    hc: ArrayHandle,
    hb: ArrayHandle,
    hmask: ArrayHandle,
    ha: ArrayHandle,
    hout: ArrayHandle,
    ref_out: Vec<f64>,
    /// Flattened (outer, j) pairs for the baseline stream.
    flat: Arc<Vec<(u32, u32)>>,
}

impl Ume {
    fn build_direct(&self, seed: u64) -> (dx100_core::MemoryImage, DirectData) {
        let n = self.n;
        let mut r = rng(seed);
        let map = ume_index_map(n, (n as f64 * self.distance_frac) as usize, seed);
        let mask: Vec<u32> = (0..n).map(|_| r.gen_range(0..100u32)).collect();
        let vals: Vec<f64> = (0..n).map(|i| ((i % 31) as f64 - 15.0) * 0.5).collect();
        let mut ref_grad = vec![0.0f64; n];
        for i in 0..n {
            if mask[i] as u64 >= F_THRESHOLD {
                ref_grad[map[i] as usize] += vals[i];
            }
        }
        let mut image = dx100_core::MemoryImage::new();
        let h_map = image.alloc("map", DType::U32, n as u64);
        let h_mask = image.alloc("mask", DType::U32, n as u64);
        let h_val = image.alloc("val", DType::F64, n as u64);
        let h_grad = image.alloc("grad", DType::F64, n as u64);
        image.fill_u32(h_map, &map);
        image.fill_u32(h_mask, &mask);
        image.fill_f64(h_val, &vals);
        (
            image,
            DirectData {
                map: Arc::new(map),
                mask: Arc::new(mask),
                h_map,
                h_mask,
                h_val,
                h_grad,
                ref_grad,
            },
        )
    }

    fn build_indirect(&self, seed: u64) -> (dx100_core::MemoryImage, IndirectData) {
        // Outer list K of zones; each zone has a corner range in H;
        // corners map to points via C; points map to data slots via B.
        let n_outer = self.n / 8;
        let mut r = rng(seed);
        let mut h_off = Vec::with_capacity(n_outer + 1);
        h_off.push(0u32);
        for _ in 0..n_outer {
            let len = r.gen_range(2..=6u32);
            h_off.push(h_off.last().unwrap() + len);
        }
        let n_corner = *h_off.last().unwrap() as usize;
        let n_point = self.n;
        let c_map = ume_index_map(
            n_corner.max(1),
            (n_point as f64 * self.distance_frac) as usize,
            seed ^ 1,
        )
        .into_iter()
        .map(|v| v % n_point as u32)
        .collect::<Vec<_>>();
        let b_map = ume_index_map(
            n_point,
            (n_point as f64 * self.distance_frac) as usize,
            seed ^ 2,
        );
        let mask: Vec<u32> = (0..n_corner).map(|_| r.gen_range(0..100u32)).collect();
        let a: Vec<f64> = (0..n_point).map(|i| (i % 17) as f64 * 0.75).collect();
        // Shuffled outer order (frontier-like).
        let mut k_list: Vec<u32> = (0..n_outer as u32).collect();
        for i in (1..k_list.len()).rev() {
            k_list.swap(i, r.gen_range(0..=i));
        }
        let mut ref_out = vec![0.0f64; n_corner.max(1)];
        let mut flat = Vec::new();
        for (oi, &kz) in k_list.iter().enumerate() {
            let (lo, hi) = (h_off[kz as usize], h_off[kz as usize + 1]);
            for j in lo..hi {
                flat.push((oi as u32, j));
                if mask[j as usize] as u64 >= F_THRESHOLD {
                    ref_out[j as usize] = a[b_map[c_map[j as usize] as usize] as usize];
                }
            }
        }
        let mut image = dx100_core::MemoryImage::new();
        let hk = image.alloc("K", DType::U32, k_list.len() as u64);
        let hh = image.alloc("H", DType::U32, h_off.len() as u64);
        let hc = image.alloc("C", DType::U32, c_map.len() as u64);
        let hb = image.alloc("B", DType::U32, b_map.len() as u64);
        let hmask = image.alloc("mask", DType::U32, mask.len().max(1) as u64);
        let ha = image.alloc("A", DType::F64, a.len() as u64);
        let hout = image.alloc("out", DType::F64, ref_out.len() as u64);
        image.fill_u32(hk, &k_list);
        image.fill_u32(hh, &h_off);
        image.fill_u32(hc, &c_map);
        image.fill_u32(hb, &b_map);
        if !mask.is_empty() {
            image.fill_u32(hmask, &mask);
        }
        image.fill_f64(ha, &a);
        (
            image,
            IndirectData {
                k_list: Arc::new(k_list),
                h_off: Arc::new(h_off),
                c_map: Arc::new(c_map),
                b_map: Arc::new(b_map),
                mask: Arc::new(mask),
                hk,
                hh,
                hc,
                hb,
                hmask,
                ha,
                hout,
                ref_out,
                flat: Arc::new(flat),
            },
        )
    }
}

/// Baseline direct stream: `if mask[i] >= F { grad[map[i]] += val[i] }`.
struct DirectStream {
    d_map: Arc<Vec<u32>>,
    d_mask: Arc<Vec<u32>>,
    h_map: ArrayHandle,
    h_mask: ArrayHandle,
    h_val: ArrayHandle,
    h_grad: ArrayHandle,
    i: usize,
    hi: usize,
    step: u8,
}

impl OpStream for DirectStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            if self.i >= self.hi {
                return None;
            }
            let taken = self.d_mask[self.i] as u64 >= F_THRESHOLD;
            let op = match self.step {
                0 => CoreOp::load(self.h_mask.addr_of(self.i as u64), S_MASK),
                1 => CoreOp::alu().with_dep(1), // compare + branch
                2 if taken => CoreOp::load(self.h_map.addr_of(self.i as u64), S_MAP),
                3 if taken => CoreOp::alu().with_dep(1),
                4 if taken => CoreOp::load(self.h_val.addr_of(self.i as u64), S_VAL),
                5 if taken => {
                    let t = self.d_map[self.i] as u64;
                    CoreOp::atomic(self.h_grad.addr_of(t), S_GRAD)
                        .with_dep(1)
                        .with_dep(3)
                }
                _ => {
                    // Untaken iteration: only the condition work.
                    self.step = 0;
                    self.i += 1;
                    continue;
                }
            };
            self.step += 1;
            if self.step == 6 {
                self.step = 0;
                self.i += 1;
            }
            return Some(op);
        }
    }
}

/// Baseline indirect stream over the flattened (outer, j) pairs:
/// `if mask[j] >= F { out[j] = A[B[C[j]]] }` plus the per-outer range setup.
struct IndirectStream {
    d: Arc<Vec<(u32, u32)>>,
    c_map: Arc<Vec<u32>>,
    b_map: Arc<Vec<u32>>,
    mask: Arc<Vec<u32>>,
    hk: ArrayHandle,
    hh: ArrayHandle,
    hc: ArrayHandle,
    hb: ArrayHandle,
    hmask: ArrayHandle,
    ha: ArrayHandle,
    hout: ArrayHandle,
    idx: usize,
    hi: usize,
    step: u8,
    last_outer: u32,
}

impl OpStream for IndirectStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            if self.idx >= self.hi {
                return None;
            }
            let (outer, j) = self.d[self.idx];
            let ju = j as usize;
            let taken = self.mask[ju] as u64 >= F_THRESHOLD;
            // New outer iteration: pay the range-setup loads
            // (K[i], H[K[i]], H[K[i]+1]).
            if self.step == 0 && outer != self.last_outer {
                self.last_outer = outer;
                self.step = 10;
            }
            let op = match self.step {
                10 => CoreOp::load(self.hk.addr_of(outer as u64), S_K),
                11 => CoreOp::alu().with_dep(1),
                12 => CoreOp::Load {
                    addr: self.hh.addr_of(self.d[self.idx].0 as u64 % self.hh.len()),
                    stream: S_H,
                    dep: [1, 0],
                },
                13 => {
                    self.step = 0;
                    continue;
                }
                0 => CoreOp::load(self.hmask.addr_of(ju as u64), S_MASK),
                1 => CoreOp::alu().with_dep(1),
                2 if taken => CoreOp::load(self.hc.addr_of(ju as u64), S_C),
                3 if taken => {
                    let c = self.c_map[ju] as u64;
                    CoreOp::Load {
                        addr: self.hb.addr_of(c),
                        stream: S_B,
                        dep: [1, 0],
                    }
                }
                4 if taken => {
                    let b = self.b_map[self.c_map[ju] as usize] as u64;
                    CoreOp::Load {
                        addr: self.ha.addr_of(b),
                        stream: S_A,
                        dep: [1, 0],
                    }
                }
                5 if taken => CoreOp::Store {
                    addr: self.hout.addr_of(ju as u64),
                    stream: S_OUT,
                    dep: [1, 0],
                },
                _ => {
                    self.step = 0;
                    self.idx += 1;
                    continue;
                }
            };
            self.step += 1;
            if self.step == 6 {
                self.step = 0;
                self.idx += 1;
            }
            return Some(op);
        }
    }
}

impl KernelRun for Ume {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        if self.indirect {
            self.run_indirect(mode, cfg, seed)
        } else {
            self.run_direct(mode, cfg, seed)
        }
    }
}

impl Ume {
    fn run_direct(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build_direct(seed);
        let expected = checksum(d.ref_grad.iter().map(|&v| quantize_f64(v)));
        let mut sys = System::new(cfg.clone(), image);
        let cores = sys.num_cores();
        let n = self.n;

        let mut phases = vec![Phase::RoiBegin];
        match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern::simple(
                        d.h_map.base(),
                        n as u64,
                        DType::U32,
                        d.h_grad.base(),
                        DType::F64,
                    ));
                }
                let parts = chunks(n, cores);
                let (map, mask) = (d.map.clone(), d.mask.clone());
                let (h_map, h_mask, h_val, h_grad) = (d.h_map, d.h_mask, d.h_val, d.h_grad);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            DirectStream {
                                d_map: map.clone(),
                                d_mask: mask.clone(),
                                h_map,
                                h_mask,
                                h_val,
                                h_grad,
                                i: *lo,
                                hi: *hi,
                                step: 0,
                            },
                        );
                    }
                }));
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                let tiles = split_tiles(n, tile);
                let (h_map, h_mask, h_val, h_grad) = (d.h_map, d.h_mask, d.h_val, d.h_grad);
                phases.push(Phase::setup(move |sys| {
                    let jobs: Vec<TileJob> = tiles
                        .iter()
                        .enumerate()
                        .map(|(k, (lo, hi))| {
                            let core = k % cores;
                            let g = tile_set4(k);
                            let r = core_regs(core);
                            TileJob {
                                core,
                                pre_ops: vec![],
                                tile_writes: vec![],
                                reg_writes: vec![
                                    (r[0], *lo as u64),
                                    (r[1], 1),
                                    (r[2], (hi - lo) as u64),
                                    (r[3], F_THRESHOLD),
                                ],
                                instrs: vec![
                                    Instruction::sld(
                                        DType::U32,
                                        h_mask.base(),
                                        g[0],
                                        r[0],
                                        r[1],
                                        r[2],
                                    ),
                                    // cond = mask >= F
                                    Instruction::Alus {
                                        dtype: DType::U32,
                                        op: AluOp::Ge,
                                        td: g[1],
                                        ts: g[0],
                                        rs: r[3],
                                        tc: None,
                                    },
                                    Instruction::sld(
                                        DType::U32,
                                        h_map.base(),
                                        g[2],
                                        r[0],
                                        r[1],
                                        r[2],
                                    ),
                                    Instruction::Sld {
                                        dtype: DType::F64,
                                        base: h_val.base(),
                                        td: g[3],
                                        rs1: r[0],
                                        rs2: r[1],
                                        rs3: r[2],
                                        tc: None,
                                    },
                                    Instruction::irmw(
                                        DType::F64,
                                        AluOp::Add,
                                        h_grad.base(),
                                        g[2],
                                        g[3],
                                    )
                                    .with_condition(g[1]),
                                ],
                                post_ops: vec![],
                            }
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
            }
        }
        phases.push(Phase::WaitCoresIdle);
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            let image = sys.into_image();
            let got: Vec<f64> = (0..n)
                .map(|i| value::to_f64(image.read_elem(d.h_grad, i as u64)))
                .collect();
            assert_f64_close(&got, &d.ref_grad, 1e-9);
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }

    fn run_indirect(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build_indirect(seed);
        let expected = checksum(d.ref_out.iter().map(|&v| quantize_f64(v)));
        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // The mesh values A are recomputed by the host between gather
            // phases, and the host-built connectivity maps B and C are
            // re-walked every timestep. The indexed variants' accesses have
            // a windowed hot set (~4-8% of the mesh), so H-bits route the
            // engine's gathers via the LLC, where the window stays
            // resident — the same residency the baseline's loads enjoy.
            for h in [d.ha, d.hb, d.hc] {
                sys.mark_host_resident(h.base(), h.size_bytes());
            }
        }
        let cores = sys.num_cores();
        let n_outer = d.k_list.len();
        let flat_len = d.flat.len();

        let mut phases = vec![Phase::RoiBegin];
        match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern::simple(
                        d.hc.base(),
                        d.c_map.len() as u64,
                        DType::U32,
                        d.hb.base(),
                        DType::U32,
                    ));
                }
                let parts = chunks(flat_len, cores);
                let data = (
                    d.flat.clone(),
                    d.c_map.clone(),
                    d.b_map.clone(),
                    d.mask.clone(),
                );
                let handles = (d.hk, d.hh, d.hc, d.hb, d.hmask, d.ha, d.hout);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            IndirectStream {
                                d: data.0.clone(),
                                c_map: data.1.clone(),
                                b_map: data.2.clone(),
                                mask: data.3.clone(),
                                hk: handles.0,
                                hh: handles.1,
                                hc: handles.2,
                                hb: handles.3,
                                hmask: handles.4,
                                ha: handles.5,
                                hout: handles.6,
                                idx: *lo,
                                hi: *hi,
                                step: 0,
                                last_outer: u32::MAX,
                            },
                        );
                    }
                }));
            }
            Mode::Dx100 => {
                // Outer tiles sized so fused ranges fit one tile (ranges are
                // ≤ 6 elements).
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                let outer_per_tile = (tile / 8).max(1);
                let tiles = split_tiles(n_outer, outer_per_tile);
                let (hk, hh, hc, hb, hmask, ha, hout) =
                    (d.hk, d.hh, d.hc, d.hb, d.hmask, d.ha, d.hout);
                let budget = tile as u64;
                phases.push(Phase::setup(move |sys| {
                    let jobs: Vec<TileJob> = tiles
                        .iter()
                        .enumerate()
                        .map(|(k, (lo, hi))| {
                            let core = set8_core(k, cores);
                            let g = tile_set8(k);
                            let r = core_regs(core);
                            TileJob {
                                core,
                                pre_ops: vec![],
                                tile_writes: vec![],
                                reg_writes: vec![
                                    (r[0], *lo as u64),
                                    (r[1], 1),
                                    (r[2], (hi - lo) as u64),
                                    (r[3], 1),
                                    (r[4], budget),
                                    (r[5], F_THRESHOLD),
                                ],
                                instrs: vec![
                                    // K tile and its range bounds.
                                    Instruction::sld(DType::U32, hk.base(), g[0], r[0], r[1], r[2]),
                                    Instruction::ild(DType::U32, hh.base(), g[1], g[0]), // lo = H[K]
                                    Instruction::Alus {
                                        dtype: DType::U32,
                                        op: AluOp::Add,
                                        td: g[2],
                                        ts: g[0],
                                        rs: r[3],
                                        tc: None,
                                    },
                                    Instruction::ild(DType::U32, hh.base(), g[3], g[2]), // hi = H[K+1]
                                    // Fuse ranges → (outer, j).
                                    Instruction::Rng {
                                        td1: g[4],
                                        td2: g[5],
                                        ts1: g[1],
                                        ts2: g[3],
                                        rs1: r[4],
                                        tc: None,
                                    },
                                    // cond = mask[j] >= F.
                                    Instruction::ild(DType::U32, hmask.base(), g[6], g[5]),
                                    Instruction::Alus {
                                        dtype: DType::U32,
                                        op: AluOp::Ge,
                                        td: g[7],
                                        ts: g[6],
                                        rs: r[5],
                                        tc: None,
                                    },
                                    // Two-level gather A[B[C[j]]] (reuse g[1]/g[2]
                                    // once their consumers are done — the
                                    // scoreboard serializes as needed).
                                    Instruction::ild(DType::U32, hc.base(), g[1], g[5])
                                        .with_condition(g[7]),
                                    Instruction::ild(DType::U32, hb.base(), g[2], g[1])
                                        .with_condition(g[7]),
                                    Instruction::ild(DType::F64, ha.base(), g[3], g[2])
                                        .with_condition(g[7]),
                                    // Scatter to out[j].
                                    Instruction::ist(DType::F64, hout.base(), g[5], g[3])
                                        .with_condition(g[7]),
                                ],
                                post_ops: vec![],
                            }
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
            }
        }
        phases.push(Phase::WaitCoresIdle);
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            let image = sys.into_image();
            let got: Vec<f64> = (0..d.ref_out.len())
                .map(|j| value::to_f64(image.read_elem(d.hout, j as u64)))
                .collect();
            assert_f64_close(&got, &d.ref_out, 1e-9);
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gzz_direct_verifies() {
        let k = Ume::zone(Scale(1.0 / 128.0), false);
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 9);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 9);
        assert_eq!(b.checksum, x.checksum);
        assert!(x.stats.dx100.unwrap().condition_skips > 0);
    }

    #[test]
    fn gzzi_indirect_verifies() {
        let k = Ume::zone(Scale(1.0 / 128.0), true);
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 9);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 9);
        assert_eq!(b.checksum, x.checksum);
    }

    #[test]
    fn gzp_and_gzpi_run() {
        let k = Ume::point(Scale(1.0 / 256.0), false);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 2);
        assert!(x.stats.cycles > 0);
        let ki = Ume::point(Scale(1.0 / 256.0), true);
        let xi = ki.run(Mode::Dx100, &SystemConfig::paper_dx100(), 2);
        assert!(xi.stats.cycles > 0);
    }
}
