//! Hash-Join PRH: histogram-based parallel radix join partitioning —
//! Table 1 pattern `ST A[B[f(C[i])]]` with `f(C[i]) = (C[i] & F) >> G`.
//!
//! Phase 1 builds the bucket histogram with `hist[f(key)] += 1` (the ALU
//! mask/shift runs on DX100's ALUS lanes); phase 2 prefix-sums the
//! histogram; phase 3 scatters tuples to their partitions. Destination
//! indices are computed by the cores (the running per-bucket offset is
//! inherently sequential) and handed to DX100 as a host-produced tile for
//! the IST scatter.

use std::sync::Arc;

use dx100_common::{AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{System, SystemConfig};

use crate::datasets::join_tuples;
use crate::kernels::is::split_tiles;
use crate::util::{
    checksum, chunks, core_regs, install_jobs, produce_tile_ops, tile_set4, Phase, PhasedDriver,
    TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};

const S_KEY: u32 = 1;
const S_HIST: u32 = 2;
const S_OUT: u32 = 3;
const S_DEST: u32 = 4;

/// Radix bits (buckets = 2^BITS), masked from the low key bits then shifted.
const RADIX_BITS: u32 = 12;
const RADIX_SHIFT: u32 = 4;

/// The PRH kernel.
#[derive(Debug, Clone)]
pub struct RadixJoinHistogram {
    tuples: usize,
}

impl RadixJoinHistogram {
    /// Default: 2^19 tuples into 4096 buckets (paper: 2M tuples).
    pub fn new(scale: Scale) -> Self {
        RadixJoinHistogram {
            tuples: scale.apply(1 << 20, 1 << 10),
        }
    }

    fn bucket_of(key: u64) -> u64 {
        (key & (((1u64 << RADIX_BITS) - 1) << RADIX_SHIFT)) >> RADIX_SHIFT
    }
}

struct Data {
    keys: Arc<Vec<u64>>,
    h_key: ArrayHandle,
    h_hist: ArrayHandle,
    h_out: ArrayHandle,
    h_dest: ArrayHandle,
    ref_hist: Vec<u32>,
    dest: Vec<u32>,
    ref_out: Vec<u64>,
}

impl RadixJoinHistogram {
    fn build(&self, seed: u64) -> (dx100_core::MemoryImage, Data) {
        let n = self.tuples;
        let buckets = 1usize << RADIX_BITS;
        let tuples = join_tuples(n, u64::MAX >> 1, seed);
        let keys: Vec<u64> = tuples.iter().map(|(k, _)| *k).collect();
        let mut ref_hist = vec![0u32; buckets];
        for &k in &keys {
            ref_hist[Self::bucket_of(k) as usize] += 1;
        }
        let mut prefix = vec![0u32; buckets];
        let mut acc = 0u32;
        for b in 0..buckets {
            prefix[b] = acc;
            acc += ref_hist[b];
        }
        let mut running = prefix.clone();
        let mut dest = vec![0u32; n];
        let mut ref_out = vec![0u64; n];
        for (i, &k) in keys.iter().enumerate() {
            let b = Self::bucket_of(k) as usize;
            dest[i] = running[b];
            running[b] += 1;
            ref_out[dest[i] as usize] = k;
        }
        let mut image = dx100_core::MemoryImage::new();
        let h_key = image.alloc("keys", DType::U64, n as u64);
        let h_hist = image.alloc("hist", DType::U32, buckets as u64);
        let h_out = image.alloc("out", DType::U64, n as u64);
        let h_dest = image.alloc("dest", DType::U32, n as u64);
        for (i, &k) in keys.iter().enumerate() {
            image.write_elem(h_key, i as u64, k);
        }
        (
            image,
            Data {
                keys: Arc::new(keys),
                h_key,
                h_hist,
                h_out,
                h_dest,
                ref_hist,
                dest,
                ref_out,
            },
        )
    }
}

/// Baseline histogram stream with the mask/shift address calculation.
struct HistStream {
    keys: Arc<Vec<u64>>,
    h_key: ArrayHandle,
    h_hist: ArrayHandle,
    i: usize,
    hi: usize,
    step: u8,
}

impl OpStream for HistStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.i >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_key.addr_of(self.i as u64), S_KEY),
            1 => CoreOp::alu().with_dep(1), // mask
            2 => CoreOp::alu().with_dep(1), // shift
            3 => CoreOp::alu().with_dep(1), // address
            4 => {
                let b = RadixJoinHistogram::bucket_of(self.keys[self.i]);
                CoreOp::atomic(self.h_hist.addr_of(b), S_HIST).with_dep(1)
            }
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 5 {
            self.step = 0;
            self.i += 1;
        }
        Some(op)
    }
}

/// Baseline scatter stream: dest calc + out store + offset bump.
struct PartitionStream {
    keys: Arc<Vec<u64>>,
    dest: Arc<Vec<u32>>,
    h_key: ArrayHandle,
    h_hist: ArrayHandle,
    h_out: ArrayHandle,
    i: usize,
    hi: usize,
    step: u8,
}

impl OpStream for PartitionStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        if self.i >= self.hi {
            return None;
        }
        let op = match self.step {
            0 => CoreOp::load(self.h_key.addr_of(self.i as u64), S_KEY),
            1 => CoreOp::alu().with_dep(1), // mask
            2 => CoreOp::alu().with_dep(1), // shift
            3 => {
                // Atomic fetch-add on the bucket's running offset.
                let b = RadixJoinHistogram::bucket_of(self.keys[self.i]);
                CoreOp::atomic(self.h_hist.addr_of(b), S_HIST).with_dep(1)
            }
            4 => {
                let dst = self.dest[self.i] as u64;
                CoreOp::Store {
                    addr: self.h_out.addr_of(dst),
                    stream: S_OUT,
                    dep: [1, 0],
                }
            }
            _ => unreachable!(),
        };
        self.step += 1;
        if self.step == 5 {
            self.step = 0;
            self.i += 1;
        }
        Some(op)
    }
}

impl KernelRun for RadixJoinHistogram {
    fn name(&self) -> &'static str {
        "prh"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let (image, d) = self.build(seed);
        let expected = checksum(d.ref_out.iter().copied());
        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // The host zeroes the histogram before each build pass, so its
            // pages carry H-bits and the engine's RMWs route via the LLC.
            sys.mark_host_resident(d.h_hist.base(), d.h_hist.size_bytes());
        }
        let cores = sys.num_cores();
        let n = self.tuples;
        let buckets = 1usize << RADIX_BITS;

        let mut phases = vec![Phase::RoiBegin];
        match mode {
            Mode::Baseline | Mode::Dmp => {
                if mode == Mode::Dmp {
                    let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
                    dmp.add_pattern(IndirectPattern {
                        index_base: d.h_key.base(),
                        index_len: n as u64,
                        index_dtype: DType::U64,
                        target_base: d.h_hist.base(),
                        target_dtype: DType::U32,
                        index_shift: RADIX_SHIFT,
                        index_mask: ((1u64 << RADIX_BITS) - 1) << RADIX_SHIFT,
                    });
                }
                // Phase 1: histogram.
                let parts = chunks(n, cores);
                let (keys, h_key, h_hist) = (d.keys.clone(), d.h_key, d.h_hist);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            HistStream {
                                keys: keys.clone(),
                                h_key,
                                h_hist,
                                i: *lo,
                                hi: *hi,
                                step: 0,
                            },
                        );
                    }
                }));
                phases.push(Phase::WaitCoresIdle);
                // Phase 2+3: prefix (folded into scatter cost) + partition.
                let parts = chunks(n, cores);
                let (keys, dest) = (d.keys.clone(), Arc::new(d.dest.clone()));
                let (h_key, h_hist, h_out) = (d.h_key, d.h_hist, d.h_out);
                phases.push(Phase::setup(move |sys| {
                    for (c, (lo, hi)) in parts.iter().enumerate() {
                        sys.push_stream(
                            c,
                            PartitionStream {
                                keys: keys.clone(),
                                dest: dest.clone(),
                                h_key,
                                h_hist,
                                h_out,
                                i: *lo,
                                hi: *hi,
                                step: 0,
                            },
                        );
                    }
                }));
            }
            Mode::Dx100 => {
                let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
                // Phase 1: IRMW histogram with the mask/shift on DX100's ALU.
                let tiles1 = split_tiles(n, tile);
                let (h_key, h_hist) = (d.h_key, d.h_hist);
                let mask = ((1u64 << RADIX_BITS) - 1) << RADIX_SHIFT;
                phases.push(Phase::setup(move |sys| {
                    let jobs: Vec<TileJob> = tiles1
                        .iter()
                        .enumerate()
                        .map(|(k, (lo, hi))| {
                            let core = k % cores;
                            let g = tile_set4(k);
                            let r = core_regs(core);
                            TileJob {
                                core,
                                pre_ops: vec![],
                                tile_writes: vec![],
                                reg_writes: vec![
                                    (r[0], *lo as u64),
                                    (r[1], 1),
                                    (r[2], (hi - lo) as u64),
                                    (r[3], mask),
                                    (r[4], RADIX_SHIFT as u64),
                                    (r[5], 0),
                                ],
                                instrs: vec![
                                    Instruction::Sld {
                                        dtype: DType::U64,
                                        base: h_key.base(),
                                        td: g[0],
                                        rs1: r[0],
                                        rs2: r[1],
                                        rs3: r[2],
                                        tc: None,
                                    },
                                    Instruction::Alus {
                                        dtype: DType::U64,
                                        op: AluOp::And,
                                        td: g[1],
                                        ts: g[0],
                                        rs: r[3],
                                        tc: None,
                                    },
                                    Instruction::Alus {
                                        dtype: DType::U64,
                                        op: AluOp::Shr,
                                        td: g[2],
                                        ts: g[1],
                                        rs: r[4],
                                        tc: None,
                                    },
                                    // ones tile for the +1 updates
                                    Instruction::Alus {
                                        dtype: DType::U32,
                                        op: AluOp::Ge,
                                        td: g[3],
                                        ts: g[2],
                                        rs: r[5],
                                        tc: None,
                                    },
                                    Instruction::irmw(
                                        DType::U32,
                                        AluOp::Add,
                                        h_hist.base(),
                                        g[2],
                                        g[3],
                                    ),
                                ],
                                post_ops: vec![],
                            }
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
                phases.push(Phase::WaitCoresIdle);
                // Phase 3: cores compute destination indices into a host
                // tile; DX100 scatters the tuples.
                let tiles3 = split_tiles(n, tile);
                let (h_key, h_out) = (d.h_key, d.h_out);
                let dest = d.dest.clone();
                let h_dest = d.h_dest;
                phases.push(Phase::setup(move |sys| {
                    // Functional: dest array contents (also written to the
                    // image for reference symmetry).
                    for (i, &v) in dest.iter().enumerate() {
                        sys.image().write_elem(h_dest, i as u64, v as u64);
                    }
                    let jobs: Vec<TileJob> = tiles3
                        .iter()
                        .enumerate()
                        .map(|(k, (lo, hi))| {
                            let core = k % cores;
                            let g = tile_set4(k);
                            let r = core_regs(core);
                            let count = hi - lo;
                            // Host-produced destination tile: each element is
                            // key-load + 3 ALU (mask/shift/offset) + SPD store,
                            // then the data lands via a timed tile write.
                            let lanes: Vec<u64> =
                                dest[*lo..*hi].iter().map(|&v| v as u64).collect();
                            let pre = produce_tile_ops(sys, core, g[3], count, 3, S_DEST);
                            TileJob {
                                core,
                                pre_ops: pre,
                                tile_writes: vec![(g[3], lanes)],
                                reg_writes: vec![
                                    (r[0], *lo as u64),
                                    (r[1], 1),
                                    (r[2], count as u64),
                                ],
                                instrs: vec![
                                    Instruction::Sld {
                                        dtype: DType::U64,
                                        base: h_key.base(),
                                        td: g[0],
                                        rs1: r[0],
                                        rs2: r[1],
                                        rs3: r[2],
                                        tc: None,
                                    },
                                    Instruction::Ist {
                                        dtype: DType::U64,
                                        base: h_out.base(),
                                        ts1: g[3],
                                        ts2: g[0],
                                        tc: None,
                                    },
                                ],
                                post_ops: vec![],
                            }
                        })
                        .collect();
                    install_jobs(sys, &jobs);
                }));
            }
        }
        phases.push(Phase::WaitCoresIdle);
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            let image = sys.into_image();
            // Histogram (pre-prefix) counts.
            for (b, want) in d.ref_hist.iter().enumerate() {
                assert_eq!(
                    image.read_elem(d.h_hist, b as u64) as u32,
                    *want,
                    "hist[{b}]"
                );
            }
            for (i, want) in d.ref_out.iter().enumerate() {
                assert_eq!(image.read_elem(d.h_out, i as u64), *want, "out[{i}]");
            }
        }
        let _ = buckets;
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_verified() {
        let k = RadixJoinHistogram::new(Scale(1.0 / 128.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 4);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 4);
        assert_eq!(b.checksum, x.checksum);
    }
}
