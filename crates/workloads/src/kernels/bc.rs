//! GAP Betweenness Centrality — the forward (path-counting) sweep:
//! Table 1 pattern `RMW A[B[j]] if (D[E[j]] == F)` over indirect range
//! loops.
//!
//! Per BFS level `d`, every frontier node `u` scatters its path count to
//! next-level neighbors: `sigma[v] += sigma[u] if depth[v] == d+1`. The
//! condition is an indirect depth check, the update an indirect RMW —
//! exactly the paper's BC row. Levels come from a BFS computed at setup
//! (the GAP kernel runs them back to back).

use std::sync::Arc;

use dx100_common::{AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::ArrayHandle;
use dx100_cpu::{CoreOp, OpStream};
use dx100_prefetch::IndirectPattern;
use dx100_sim::{System, SystemConfig};

use crate::datasets::{uniform_graph, Csr};
use crate::kernels::bfs::INF;
use crate::kernels::is::split_tiles;
use crate::util::{
    checksum, chunks, core_regs, install_jobs, set8_core, tile_set8, Phase, PhasedDriver, TileJob,
};
use crate::{KernelRun, Mode, Scale, WorkloadResult};

const S_K: u32 = 1;
const S_H: u32 = 2;
const S_COL: u32 = 3;
const S_DEPTH: u32 = 4;
const S_SIGMA: u32 = 5;

/// The BC forward sweep.
#[derive(Debug, Clone)]
pub struct BetweennessCentrality {
    nodes: usize,
}

impl BetweennessCentrality {
    /// Default: 2^16 nodes, average degree 15.
    pub fn new(scale: Scale) -> Self {
        BetweennessCentrality {
            nodes: scale.apply(1 << 17, 1 << 9),
        }
    }
}

/// Baseline per-level stream: frontier edges with conditional atomic adds.
struct LevelStream {
    g: Arc<Csr>,
    frontier: Arc<Vec<u32>>,
    depth: Arc<Vec<u32>>,
    h_k: ArrayHandle,
    h_off: ArrayHandle,
    h_col: ArrayHandle,
    h_depth: ArrayHandle,
    h_sigma: ArrayHandle,
    d: u32,
    i: usize,
    hi: usize,
    pending: std::collections::VecDeque<CoreOp>,
}

impl LevelStream {
    fn refill(&mut self) {
        let u = self.frontier[self.i] as usize;
        self.pending
            .push_back(CoreOp::load(self.h_k.addr_of(self.i as u64), S_K));
        self.pending.push_back(CoreOp::alu().with_dep(1));
        self.pending.push_back(CoreOp::Load {
            addr: self.h_off.addr_of(u as u64),
            stream: S_H,
            dep: [1, 0],
        });
        self.pending.push_back(CoreOp::Load {
            addr: self.h_off.addr_of((u + 1) as u64),
            stream: S_H,
            dep: [2, 0],
        });
        // sigma[u] load (reused across the row).
        self.pending.push_back(CoreOp::Load {
            addr: self.h_sigma.addr_of(u as u64),
            stream: S_SIGMA,
            dep: [3, 0],
        });
        let (lo, hi) = (self.g.offsets[u], self.g.offsets[u + 1]);
        for j in lo..hi {
            let v = self.g.cols[j as usize] as usize;
            self.pending
                .push_back(CoreOp::load(self.h_col.addr_of(j as u64), S_COL));
            self.pending.push_back(CoreOp::alu().with_dep(1));
            self.pending.push_back(CoreOp::Load {
                addr: self.h_depth.addr_of(v as u64),
                stream: S_DEPTH,
                dep: [1, 0],
            });
            self.pending.push_back(CoreOp::alu().with_dep(1)); // compare
            if self.depth[v] == self.d + 1 {
                self.pending
                    .push_back(CoreOp::atomic(self.h_sigma.addr_of(v as u64), S_SIGMA).with_dep(1));
            }
        }
    }
}

impl OpStream for LevelStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            if let Some(op) = self.pending.pop_front() {
                return Some(op);
            }
            if self.i >= self.hi {
                return None;
            }
            self.refill();
            self.i += 1;
        }
    }
}

impl KernelRun for BetweennessCentrality {
    fn name(&self) -> &'static str {
        "bc"
    }

    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult {
        let g = Arc::new(uniform_graph(self.nodes, 15, seed));
        let n = self.nodes;
        // Depths and the per-level frontiers (setup, as in the GAP kernel).
        let mut depth = vec![INF; n];
        depth[0] = 0;
        let mut levels: Vec<Vec<u32>> = vec![vec![0u32]];
        loop {
            let d = (levels.len() - 1) as u32;
            let mut next = Vec::new();
            for u in 0..n {
                if depth[u] != INF {
                    continue;
                }
                if g.neigh(u).iter().any(|&v| depth[v as usize] == d) {
                    depth[u] = d + 1;
                    next.push(u as u32);
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }
        // Reference sigma (path counts).
        let mut ref_sigma = vec![0u64; n];
        ref_sigma[0] = 1;
        for (d, frontier) in levels.iter().enumerate() {
            for &u in frontier {
                let su = ref_sigma[u as usize];
                for &v in g.neigh(u as usize) {
                    if depth[v as usize] == d as u32 + 1 {
                        ref_sigma[v as usize] += su;
                    }
                }
            }
        }
        let expected = checksum(ref_sigma.iter().copied());

        let mut image = dx100_core::MemoryImage::new();
        let h_k = image.alloc("K", DType::U32, n as u64);
        let h_off = image.alloc("H", DType::U32, (n + 1) as u64);
        let h_col = image.alloc("col", DType::U32, g.edges().max(1) as u64);
        let h_depth = image.alloc("depth", DType::U32, n as u64);
        let h_sigma = image.alloc("sigma", DType::U64, n as u64);
        image.fill_u32(h_off, &g.offsets);
        if !g.cols.is_empty() {
            image.fill_u32(h_col, &g.cols);
        }
        for (u, &dv) in depth.iter().enumerate() {
            image.write_elem(h_depth, u as u64, dv as u64);
        }
        image.write_elem(h_sigma, 0, 1);

        let mut sys = System::new(cfg.clone(), image);
        if mode == Mode::Dx100 {
            // Same residency story as BFS: host-built CSR + depth.
            for h in [h_k, h_off, h_col, h_depth] {
                sys.mark_host_resident(h.base(), h.size_bytes());
            }
        }
        if mode == Mode::Dmp {
            let dmp = sys.dmp_mut().expect("DMP mode requires a DMP config");
            dmp.add_pattern(IndirectPattern::simple(
                h_col.base(),
                g.edges() as u64,
                DType::U32,
                h_depth.base(),
                DType::U32,
            ));
        }

        // One phase pair per level (levels are known after setup).
        let mut phases = vec![Phase::RoiBegin];
        let tile = cfg
            .dx100
            .as_ref()
            .map(|d| d.tile_elems)
            .unwrap_or(16 * 1024);
        for (d, frontier) in levels.iter().enumerate() {
            let frontier = Arc::new(frontier.clone());
            let depth_rc = Arc::new(depth.clone());
            let g2 = g.clone();
            let d = d as u32;
            let mode2 = mode;
            let frontier2 = frontier.clone();
            phases.push(Phase::setup(move |sys| {
                // Publish this level's frontier.
                {
                    let image = sys.image();
                    for (i, &u) in frontier2.iter().enumerate() {
                        image.write_elem(h_k, i as u64, u as u64);
                    }
                }
                let m = frontier2.len();
                match mode2 {
                    Mode::Baseline | Mode::Dmp => {
                        let parts = chunks(m, sys.num_cores());
                        for (c, (lo, hi)) in parts.iter().enumerate() {
                            sys.push_stream(
                                c,
                                LevelStream {
                                    g: g2.clone(),
                                    frontier: frontier2.clone(),
                                    depth: depth_rc.clone(),
                                    h_k,
                                    h_off,
                                    h_col,
                                    h_depth,
                                    h_sigma,
                                    d,
                                    i: *lo,
                                    hi: *hi,
                                    pending: Default::default(),
                                },
                            );
                        }
                    }
                    Mode::Dx100 => {
                        let cores = sys.num_cores();
                        let outer_per_tile = (tile / 32).max(1);
                        let tiles = split_tiles(m, outer_per_tile);
                        let jobs: Vec<TileJob> = tiles
                            .iter()
                            .enumerate()
                            .map(|(k, (lo, hi))| {
                                let core = set8_core(k, cores);
                                let gt = tile_set8(k);
                                let r = core_regs(core);
                                TileJob {
                                    core,
                                    pre_ops: vec![],
                                    tile_writes: vec![],
                                    reg_writes: vec![
                                        (r[0], *lo as u64),
                                        (r[1], 1),
                                        (r[2], (hi - lo) as u64),
                                        (r[3], 1),
                                        (r[4], tile as u64),
                                        (r[5], d as u64 + 1),
                                    ],
                                    instrs: vec![
                                        Instruction::sld(
                                            DType::U32,
                                            h_k.base(),
                                            gt[0],
                                            r[0],
                                            r[1],
                                            r[2],
                                        ),
                                        Instruction::ild(DType::U32, h_off.base(), gt[1], gt[0]),
                                        Instruction::Alus {
                                            dtype: DType::U32,
                                            op: AluOp::Add,
                                            td: gt[2],
                                            ts: gt[0],
                                            rs: r[3],
                                            tc: None,
                                        },
                                        Instruction::ild(DType::U32, h_off.base(), gt[3], gt[2]),
                                        Instruction::Rng {
                                            td1: gt[4],
                                            td2: gt[5],
                                            ts1: gt[1],
                                            ts2: gt[3],
                                            rs1: r[4],
                                            tc: None,
                                        },
                                        // v = col[j]; its depth; the d+1 check.
                                        Instruction::ild(DType::U32, h_col.base(), gt[6], gt[5]),
                                        Instruction::ild(DType::U32, h_depth.base(), gt[7], gt[6]),
                                        Instruction::Alus {
                                            dtype: DType::U32,
                                            op: AluOp::Eq,
                                            td: gt[2],
                                            ts: gt[7],
                                            rs: r[5],
                                            tc: None,
                                        },
                                        // Rebase the tile-relative outer index
                                        // by `lo`, then u = K[outer].
                                        Instruction::Alus {
                                            dtype: DType::U32,
                                            op: AluOp::Add,
                                            td: gt[1],
                                            ts: gt[4],
                                            rs: r[0],
                                            tc: None,
                                        },
                                        Instruction::ild(DType::U32, h_k.base(), gt[7], gt[1]),
                                        Instruction::ild(DType::U64, h_sigma.base(), gt[3], gt[7])
                                            .with_condition(gt[2]),
                                        // sigma[v] += sigma[u] where depth matches.
                                        Instruction::irmw(
                                            DType::U64,
                                            AluOp::Add,
                                            h_sigma.base(),
                                            gt[6],
                                            gt[3],
                                        )
                                        .with_condition(gt[2]),
                                    ],
                                    post_ops: vec![],
                                }
                            })
                            .collect();
                        install_jobs(sys, &jobs);
                    }
                }
            }));
            phases.push(Phase::WaitCoresIdle);
        }
        phases.push(Phase::RoiEnd);
        let stats = sys.run(&mut PhasedDriver::new(phases));
        let telemetry = sys.telemetry();

        if mode == Mode::Dx100 {
            let image = sys.into_image();
            for (u, want) in ref_sigma.iter().enumerate() {
                assert_eq!(image.read_elem(h_sigma, u as u64), *want, "sigma[{u}]");
            }
        }
        WorkloadResult {
            stats,
            checksum: expected,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts_verified() {
        let k = BetweennessCentrality::new(Scale(1.0 / 64.0));
        let b = k.run(Mode::Baseline, &SystemConfig::paper_baseline(), 12);
        let x = k.run(Mode::Dx100, &SystemConfig::paper_dx100(), 12);
        assert_eq!(b.checksum, x.checksum);
    }
}
