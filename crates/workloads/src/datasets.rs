//! Dataset generators: uniform graphs in CSR form, sparse matrices,
//! UME-style meshes with controlled index distance, join tuples, and the
//! xRAGE access pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A directed graph in CSR form.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Column indices (neighbors), length = #edges.
    pub cols: Vec<u32>,
}

impl Csr {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.cols.len()
    }

    /// Neighbors of `u`.
    pub fn neigh(&self, u: usize) -> &[u32] {
        &self.cols[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

/// Uniform random graph: `n` nodes, degree ~ Poisson-ish around `avg_deg`
/// (the paper's uniform graph with average degree 15).
pub fn uniform_graph(n: usize, avg_deg: usize, seed: u64) -> Csr {
    let mut r = rng(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    offsets.push(0u32);
    for _ in 0..n {
        let deg = r.gen_range(0..=avg_deg * 2);
        for _ in 0..deg {
            cols.push(r.gen_range(0..n as u32));
        }
        offsets.push(cols.len() as u32);
    }
    Csr { offsets, cols }
}

/// A sparse matrix in CSR form with f64 values.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    /// Row offsets, length `rows + 1`.
    pub offsets: Vec<u32>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Nonzero values.
    pub vals: Vec<f64>,
}

impl SparseMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }
}

/// Random square sparse matrix with ~`nnz_per_row` nonzeros per row,
/// columns spread uniformly (the low-locality regime of NAS CG).
pub fn sparse_matrix(n: usize, nnz_per_row: usize, seed: u64) -> SparseMatrix {
    let mut r = rng(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0u32);
    for _ in 0..n {
        let k = r.gen_range(nnz_per_row / 2..=nnz_per_row * 3 / 2);
        for _ in 0..k {
            cols.push(r.gen_range(0..n as u32));
            vals.push(r.gen_range(-1.0..1.0));
        }
        offsets.push(cols.len() as u32);
    }
    SparseMatrix {
        offsets,
        cols,
        vals,
    }
}

/// UME-style index map: `n` indices into an array of `n` points with a mean
/// absolute index distance around `mean_distance` (the paper measured ~85K
/// on the 2M-point mesh — limited spatial locality but not uniform random).
pub fn ume_index_map(n: usize, mean_distance: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let d = r.gen_range(0..=(2 * mean_distance)) as i64 - mean_distance as i64;
            (i as i64 + d).rem_euclid(n as i64) as u32
        })
        .collect()
}

/// Join tuples: `(key, payload)` with keys uniform in `0..key_space`.
pub fn join_tuples(n: usize, key_space: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| (r.gen_range(0..key_space), i as u64))
        .collect()
}

/// xRAGE-style scatter pattern (Spatter trace shape): runs of short strided
/// bursts at scattered bases — moderate spatial locality inside a burst,
/// none across bursts.
pub fn xrage_pattern(n: usize, target_len: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let base = r.gen_range(0..target_len as u32);
        let burst = r.gen_range(4..=16usize);
        let stride = *[1u32, 2, 4].get(r.gen_range(0..3)).unwrap();
        for k in 0..burst {
            if out.len() >= n {
                break;
            }
            out.push((base + k as u32 * stride) % target_len as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_graph_shape() {
        let g = uniform_graph(1000, 15, 1);
        assert_eq!(g.nodes(), 1000);
        let avg = g.edges() as f64 / g.nodes() as f64;
        assert!((10.0..20.0).contains(&avg), "avg degree {avg}");
        assert!(g.cols.iter().all(|&c| (c as usize) < 1000));
        // Deterministic per seed.
        let g2 = uniform_graph(1000, 15, 1);
        assert_eq!(g.cols, g2.cols);
        let g3 = uniform_graph(1000, 15, 2);
        assert_ne!(g.cols, g3.cols);
    }

    #[test]
    fn sparse_matrix_shape() {
        let m = sparse_matrix(256, 8, 7);
        assert_eq!(m.rows(), 256);
        assert_eq!(m.cols.len(), m.vals.len());
        assert!(m.cols.iter().all(|&c| (c as usize) < 256));
    }

    #[test]
    fn ume_map_mean_distance() {
        let n = 100_000;
        let want = 5_000;
        let map = ume_index_map(n, want, 3);
        let mean: f64 = map
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let d = (i as i64 - b as i64).abs();
                // Wrap-around distances count as the short way.
                d.min(n as i64 - d) as f64
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (want as f64 * 0.3..want as f64 * 1.2).contains(&mean),
            "mean distance {mean}"
        );
    }

    #[test]
    fn xrage_pattern_in_bounds() {
        let p = xrage_pattern(10_000, 50_000, 9);
        assert_eq!(p.len(), 10_000);
        assert!(p.iter().all(|&x| (x as usize) < 50_000));
        // Bursty: many consecutive pairs are small strides.
        let local = p
            .windows(2)
            .filter(|w| (w[1] as i64 - w[0] as i64).abs() <= 4)
            .count();
        assert!(local * 2 > p.len(), "pattern should be bursty: {local}");
    }

    #[test]
    fn join_tuples_deterministic() {
        let a = join_tuples(100, 1 << 20, 5);
        let b = join_tuples(100, 1 << 20, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|(k, _)| *k < (1 << 20)));
    }
}
