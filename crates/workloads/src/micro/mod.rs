//! The five microbenchmarks of Figure 8.
//!
//! * [`allhit`] — warm-cache runs isolating instruction-offload benefits:
//!   Gather-SPD, Gather-Full, RMW (vs atomic and non-atomic baselines), and
//!   single-core Scatter.
//! * [`allmiss`] — the Gather-Full kernel over 64K unique indices laid out
//!   with exact row-buffer-hit / channel-interleave / bank-group-interleave
//!   properties, constructed through the DRAM address mapping's inverse.

pub mod allhit;
pub mod allmiss;
