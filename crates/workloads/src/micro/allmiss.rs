//! All-miss microbenchmark (Figures 8b/8c): Gather-Full over 64K unique
//! indices whose *order* is constructed — via the DRAM address mapping's
//! inverse — to hit exact row-buffer-hit-rate, channel-interleaving, and
//! bank-group-interleaving targets for the baseline.
//!
//! The target array spans 64K cache lines = 16 row values across every
//! (channel, bank group, bank) of the Table 3 organization, matching the
//! paper's "16 rows in all banks, bank groups, and channels". Caches start
//! cold and every line is touched once, so all indirect accesses miss.

use dx100_common::{DType, LineAddr};
use dx100_core::isa::Instruction;
use dx100_core::MemoryImage;
use dx100_cpu::CoreOp;
use dx100_dram::DramConfig;
use dx100_sim::{RunStats, System, SystemConfig};

use crate::util::{core_regs, install_jobs, tile_set4, Phase, PhasedDriver, TileJob};

const S_B: u32 = 1;
const S_A: u32 = 2;
const S_C: u32 = 3;

/// Number of gathered elements (one per unique cache line).
pub const ACCESSES: usize = 64 * 1024;

/// An index-ordering scenario for the baseline access stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Target row-buffer hit rate for in-order issue, in `[0, 1]`.
    pub rbh: f64,
    /// Alternate channels between consecutive accesses.
    pub chi: bool,
    /// Alternate bank groups between consecutive accesses.
    pub bgi: bool,
}

impl Scenario {
    /// The seven bars of Figure 8b, worst (left) to best (right).
    pub fn sweep() -> Vec<(String, Scenario)> {
        let mut v = Vec::new();
        v.push((
            "rbh0-nochi-nobgi".into(),
            Scenario {
                rbh: 0.0,
                chi: false,
                bgi: false,
            },
        ));
        v.push((
            "rbh0".into(),
            Scenario {
                rbh: 0.0,
                chi: true,
                bgi: true,
            },
        ));
        for rbh in [0.25, 0.5, 0.75] {
            v.push((
                format!("rbh{}", (rbh * 100.0) as u32),
                Scenario {
                    rbh,
                    chi: true,
                    bgi: true,
                },
            ));
        }
        v.push((
            "rbh100-nobgi".into(),
            Scenario {
                rbh: 1.0,
                chi: true,
                bgi: false,
            },
        ));
        v.push((
            "rbh100".into(),
            Scenario {
                rbh: 1.0,
                chi: true,
                bgi: true,
            },
        ));
        v
    }
}

/// Builds the index order for a scenario.
///
/// Per bank, lines are ordered either row-grouped (row-buffer hits) or
/// row-rotated (every access a row miss), mixed to hit the `rbh` target;
/// the global order then interleaves banks with channel/bank-group rotation
/// per the `chi`/`bgi` flags.
pub fn build_indices(scenario: Scenario, a_base_line: LineAddr, dram: &DramConfig) -> Vec<u32> {
    let org = &dram.organization;
    let nbanks = org.channels * org.banks_per_channel();
    // Collect each bank's lines (as element indices into A).
    let mut per_bank: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nbanks]; // (row, elem_idx)
    for k in 0..ACCESSES as u64 {
        let line = LineAddr(a_base_line.0 + k);
        let c = dram.addr_map.decode(line, org);
        let bank_idx = c.channel * org.banks_per_channel() + c.bank_index(org);
        per_bank[bank_idx].push((c.row, k * 16)); // 16 u32 words per line
    }
    // Order within each bank: `hit_run` consecutive same-row accesses, then
    // switch rows. rbh=1 → full rows; rbh=0 → alternate rows every access.
    for lines in &mut per_bank {
        lines.sort_unstable();
        let rows: Vec<Vec<u64>> = lines
            .chunk_by(|a, b| a.0 == b.0)
            .map(|c| c.iter().map(|(_, e)| *e).collect())
            .collect();
        let cols = rows.first().map(|r| r.len()).unwrap_or(1);
        // Average run length 1/(1-p) gives hit fraction p; fractional
        // targets alternate floor/ceil runs via an error accumulator.
        let target_run = if scenario.rbh >= 1.0 {
            cols as f64
        } else {
            (1.0 / (1.0 - scenario.rbh)).min(cols as f64)
        };
        let mut order = Vec::with_capacity(lines.len());
        let mut cursors: Vec<usize> = vec![0; rows.len()];
        let mut row = 0;
        let mut carry = 0.0f64;
        while order.len() < lines.len() {
            let mut advanced = false;
            for _ in 0..rows.len() {
                let r = row % rows.len();
                row += 1;
                let want = target_run + carry;
                let run = (want.floor() as usize).max(1);
                let take = run.min(rows[r].len() - cursors[r]);
                if take > 0 {
                    carry = want - run as f64;
                    order.extend(&rows[r][cursors[r]..cursors[r] + take]);
                    cursors[r] += take;
                    advanced = true;
                    break;
                }
            }
            assert!(advanced, "bank ordering stalled");
        }
        *lines = order.into_iter().map(|e| (0, e)).collect();
    }
    // Global interleave. With the flag on, the dimension alternates every
    // access; with it off, it alternates only every `block` accesses —
    // larger than the 32-entry controller window (so the *baseline* gets no
    // interleaving) yet smaller than a 16K tile (so DX100's full-tile
    // visibility still recovers the parallelism, as in Figure 8c).
    let ch_period: usize = if scenario.chi { 1 } else { 2048 };
    let bg_period: usize = if scenario.bgi { 1 } else { 512 };
    // Without bank-group interleaving the order also dwells on one bank at
    // a time (the paper's worst case), in blocks the controller window
    // cannot see past but a 16K tile easily covers.
    let bank_period: usize = if scenario.bgi { 1 } else { 128 };
    let mut cursors = vec![0usize; nbanks];
    let mut out = Vec::with_capacity(ACCESSES);
    let mut p = 0usize;
    while out.len() < ACCESSES {
        let mut placed = false;
        // Preferred slot for position p, then fall back over offsets.
        for off in 0..nbanks {
            let ch = ((p / ch_period) + off) % org.channels;
            let bg = ((p / bg_period) + off / org.channels) % org.bank_groups;
            let bank = ((p / (org.channels * org.bank_groups * bank_period))
                + off / (org.channels * org.bank_groups))
                % org.banks_per_group;
            let b = ch * org.banks_per_channel() + org.bank_index(0, bg, bank);
            if cursors[b] < per_bank[b].len() {
                out.push(per_bank[b][cursors[b]].1 as u32);
                cursors[b] += 1;
                placed = true;
                break;
            }
        }
        assert!(placed, "interleave schedule stalled");
        p += 1;
    }
    out
}

/// Runs the all-miss Gather-Full benchmark; `dx100` selects the machine.
/// Returns the run statistics (bandwidth utilization is Figure 8c's metric).
pub fn run_allmiss(scenario: Scenario, dx100: bool, cfg: &SystemConfig) -> RunStats {
    let mut image = MemoryImage::new();
    // A: one gathered word per line over 64K lines.
    let a = image.alloc("A", DType::U32, (ACCESSES * 16) as u64);
    let b = image.alloc("B", DType::U32, ACCESSES as u64);
    let c = image.alloc("C", DType::U32, ACCESSES as u64);
    let indices = build_indices(scenario, LineAddr::containing(a.base()), &cfg.dram);
    assert_eq!(indices.len(), ACCESSES);
    image.fill_u32(b, &indices);
    let mut sys = System::new(cfg.clone(), image);
    let cores = sys.num_cores().min(4);

    let mut phases = vec![Phase::RoiBegin];
    if !dx100 {
        let per = ACCESSES / cores;
        // Strided partitioning: core c takes accesses c, c+cores, ... so the
        // four cores collectively preserve the constructed global order (a
        // blocked split would interleave distant regions and destroy the
        // scenario's row-locality knob).
        let streams: Vec<Vec<CoreOp>> = (0..cores)
            .map(|core| {
                let mut ops = Vec::with_capacity(per * 4);
                for i in (core..ACCESSES).step_by(cores) {
                    ops.push(CoreOp::load(b.addr_of(i as u64), S_B));
                    ops.push(CoreOp::alu().with_dep(1));
                    ops.push(CoreOp::Load {
                        addr: a.addr_of(indices[i] as u64),
                        stream: S_A,
                        dep: [1, 0],
                    });
                    ops.push(CoreOp::Store {
                        addr: c.addr_of(i as u64),
                        stream: S_C,
                        dep: [1, 0],
                    });
                }
                ops
            })
            .collect();
        phases.push(Phase::setup(move |sys| {
            for (core, ops) in streams.into_iter().enumerate() {
                sys.push_ops(core, ops);
            }
        }));
    } else {
        let tile = cfg.dx100.as_ref().expect("dx100 config").tile_elems;
        phases.push(Phase::setup(move |sys| {
            let cores = sys.num_cores();
            let tiles = crate::kernels::is::split_tiles(ACCESSES, tile);
            let jobs: Vec<TileJob> = tiles
                .iter()
                .enumerate()
                .map(|(k, (lo, hi))| {
                    let core = k % cores;
                    let g = tile_set4(k);
                    let r = core_regs(core);
                    TileJob {
                        core,
                        pre_ops: vec![],
                        tile_writes: vec![],
                        reg_writes: vec![(r[0], *lo as u64), (r[1], 1), (r[2], (hi - lo) as u64)],
                        instrs: vec![
                            Instruction::sld(DType::U32, b.base(), g[0], r[0], r[1], r[2]),
                            Instruction::ild(DType::U32, a.base(), g[1], g[0]),
                            Instruction::Sst {
                                dtype: DType::U32,
                                base: c.base(),
                                ts: g[1],
                                rs1: r[0],
                                rs2: r[1],
                                rs3: r[2],
                                tc: None,
                            },
                        ],
                        post_ops: vec![],
                    }
                })
                .collect();
            install_jobs(sys, &jobs);
        }));
    }
    phases.push(Phase::WaitCoresIdle);
    phases.push(Phase::RoiEnd);
    sys.run(&mut PhasedDriver::new(phases))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_dram::AddrMap;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_baseline()
    }

    #[test]
    fn indices_are_unique_and_cover_all_lines() {
        let s = Scenario {
            rbh: 0.5,
            chi: true,
            bgi: true,
        };
        let idx = build_indices(s, LineAddr(1000), &cfg().dram);
        let mut seen: Vec<u32> = idx.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ACCESSES, "indices must be unique");
        assert!(idx.iter().all(|&e| e % 16 == 0), "one word per line");
    }

    #[test]
    fn rbh100_order_groups_rows() {
        let dram = cfg().dram;
        let s = Scenario {
            rbh: 1.0,
            chi: true,
            bgi: true,
        };
        let base = LineAddr(0);
        let idx = build_indices(s, base, &dram);
        // Per bank, count row switches: with rbh=1 each bank's rows appear
        // as full runs → switches = rows - 1 = 15.
        let org = &dram.organization;
        let mut last_row: std::collections::HashMap<usize, u64> = Default::default();
        let mut switches = vec![0usize; org.channels * org.banks_per_channel()];
        for &e in &idx {
            let line = LineAddr(base.0 + e as u64 / 16);
            let c = dram.addr_map.decode(line, org);
            let bidx = c.channel * org.banks_per_channel() + c.bank_index(org);
            if let Some(&prev) = last_row.get(&bidx) {
                if prev != c.row {
                    switches[bidx] += 1;
                }
            }
            last_row.insert(bidx, c.row);
        }
        assert!(
            switches.iter().all(|&s| s == 15),
            "row runs must be whole: {switches:?}"
        );
    }

    #[test]
    fn chi_alternates_channels() {
        let dram = cfg().dram;
        let s = Scenario {
            rbh: 1.0,
            chi: true,
            bgi: true,
        };
        let idx = build_indices(s, LineAddr(0), &dram);
        let org = &dram.organization;
        let alternations = idx
            .windows(2)
            .filter(|w| {
                let ch = |e: u32| dram.addr_map.decode(LineAddr(e as u64 / 16), org).channel;
                ch(w[0]) != ch(w[1])
            })
            .count();
        assert!(
            alternations * 10 > idx.len() * 9,
            "consecutive accesses should alternate channels: {alternations}/{}",
            idx.len()
        );
        // And the no-CHI order keeps channel constant almost everywhere.
        let s2 = Scenario {
            rbh: 1.0,
            chi: false,
            bgi: false,
        };
        let idx2 = build_indices(s2, LineAddr(0), &dram);
        let alternations2 = idx2
            .windows(2)
            .filter(|w| {
                let ch = |e: u32| dram.addr_map.decode(LineAddr(e as u64 / 16), org).channel;
                ch(w[0]) != ch(w[1])
            })
            .count();
        // Block-based no-CHI order: one switch per 2048-access block.
        assert!(
            alternations2 <= ACCESSES / 2048 + 8,
            "no-CHI order: {alternations2} switches"
        );
        assert!(alternations2 * 100 < alternations, "no-CHI ≪ CHI");
        let _ = AddrMap::ChBgColBaRow;
    }
}
