//! All-hit microbenchmarks (Figure 8a): caches warmed, streaming indices
//! (`B[i] = i`), so the baseline serves everything from L1 and the benefit
//! isolated is instruction offload — plus atomic elimination for RMW and
//! the write-hazard escape for Scatter.

use dx100_common::{AluOp, DType};
use dx100_core::isa::Instruction;
use dx100_core::{ArrayHandle, MemoryImage};
use dx100_cpu::CoreOp;
use dx100_sim::{RunStats, System, SystemConfig};

use crate::util::{
    consume_tile_ops, core_regs, install_jobs, tile_set4, Phase, PhasedDriver, TileJob,
};

/// Elements per array — small enough to live in the private caches (with
/// streaming indices the stride prefetchers keep L1 hot), large enough to
/// amortize DX100's per-tile MMIO/fill overheads as the paper's 16K tiles do.
const N: usize = 16 * 1024;
/// Measured passes over the arrays.
const PASSES: usize = 4;

const S_B: u32 = 1;
const S_A: u32 = 2;
const S_C: u32 = 3;
const S_SPD: u32 = 4;

/// The five Figure 8a experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// Gather into the scratchpad; cores consume from the SPD region.
    GatherSpd,
    /// Gather fully offloaded: `C[i] = A[B[i]]` via SLD + ILD + SST.
    GatherFull,
    /// `A[B[i]] += C[i]` — baseline uses atomics.
    RmwAtomic,
    /// `A[B[i]] += C[i]` — baseline (incorrectly) skips atomics.
    RmwNoAtom,
    /// `A[B[i]] = C[i]` — single-core baseline (parallel scatter has WAW
    /// hazards), DX100 IST.
    Scatter,
}

impl MicroKind {
    /// All five, in the figure's order.
    pub const ALL: [MicroKind; 5] = [
        MicroKind::GatherSpd,
        MicroKind::GatherFull,
        MicroKind::RmwAtomic,
        MicroKind::RmwNoAtom,
        MicroKind::Scatter,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            MicroKind::GatherSpd => "gather-spd",
            MicroKind::GatherFull => "gather-full",
            MicroKind::RmwAtomic => "rmw-atomic",
            MicroKind::RmwNoAtom => "rmw-noatom",
            MicroKind::Scatter => "scatter",
        }
    }

    fn cores_used(self, baseline: bool) -> usize {
        match self {
            MicroKind::Scatter if baseline => 1,
            MicroKind::Scatter => 1,
            _ => 4,
        }
    }
}

struct Arrays {
    a: ArrayHandle,
    b: ArrayHandle,
    c: ArrayHandle,
}

fn build() -> (MemoryImage, Arrays) {
    let mut image = MemoryImage::new();
    let a = image.alloc("A", DType::U32, N as u64);
    let b = image.alloc("B", DType::U32, N as u64);
    let c = image.alloc("C", DType::U32, N as u64);
    for i in 0..N as u64 {
        image.write_elem(a, i, i * 3 + 1);
        image.write_elem(b, i, i); // streaming indices
        image.write_elem(c, i, i + 100);
    }
    (image, Arrays { a, b, c })
}

/// Warm-up ops: touch every line of every array from each core.
fn warm_ops(ar: &Arrays) -> Vec<CoreOp> {
    let mut ops = Vec::new();
    for i in (0..N).step_by(16) {
        ops.push(CoreOp::load(ar.a.addr_of(i as u64), S_A));
        ops.push(CoreOp::load(ar.b.addr_of(i as u64), S_B));
        ops.push(CoreOp::load(ar.c.addr_of(i as u64), S_C));
    }
    ops
}

/// One baseline pass of the kernel for a core's index range.
fn baseline_pass(kind: MicroKind, ar: &Arrays, lo: usize, hi: usize) -> Vec<CoreOp> {
    let mut ops = Vec::new();
    for i in lo..hi {
        let i64v = i as u64;
        // Loop-overhead µops (induction update, bound check, branch) —
        // the paper's x86 baseline spends ~13 dynamic instructions per
        // gather iteration.
        ops.push(CoreOp::alu());
        ops.push(CoreOp::alu());
        match kind {
            MicroKind::GatherSpd | MicroKind::GatherFull => {
                ops.push(CoreOp::load(ar.b.addr_of(i64v), S_B));
                ops.push(CoreOp::alu().with_dep(1));
                ops.push(CoreOp::Load {
                    addr: ar.a.addr_of(i64v), // B[i] = i
                    stream: S_A,
                    dep: [1, 0],
                });
                ops.push(CoreOp::alu().with_dep(1)); // consume
                if kind == MicroKind::GatherFull {
                    ops.push(CoreOp::Store {
                        addr: ar.c.addr_of(i64v),
                        stream: S_C,
                        dep: [2, 0],
                    });
                }
            }
            MicroKind::RmwAtomic => {
                ops.push(CoreOp::load(ar.b.addr_of(i64v), S_B));
                ops.push(CoreOp::alu().with_dep(1));
                ops.push(CoreOp::load(ar.c.addr_of(i64v), S_C));
                ops.push(
                    CoreOp::atomic(ar.a.addr_of(i64v), S_A)
                        .with_dep(1)
                        .with_dep(3),
                );
            }
            MicroKind::RmwNoAtom => {
                ops.push(CoreOp::load(ar.b.addr_of(i64v), S_B));
                ops.push(CoreOp::alu().with_dep(1));
                ops.push(CoreOp::Load {
                    addr: ar.a.addr_of(i64v),
                    stream: S_A,
                    dep: [1, 0],
                });
                ops.push(CoreOp::load(ar.c.addr_of(i64v), S_C));
                ops.push(CoreOp::alu().with_dep(1).with_dep(2)); // add
                ops.push(CoreOp::Store {
                    addr: ar.a.addr_of(i64v),
                    stream: S_A,
                    dep: [1, 0],
                });
            }
            MicroKind::Scatter => {
                ops.push(CoreOp::load(ar.b.addr_of(i64v), S_B));
                ops.push(CoreOp::alu().with_dep(1));
                ops.push(CoreOp::load(ar.c.addr_of(i64v), S_C));
                ops.push(CoreOp::Store {
                    addr: ar.a.addr_of(i64v),
                    stream: S_A,
                    dep: [1, 2],
                });
            }
        }
    }
    ops
}

/// Runs one all-hit experiment; `dx100` selects the machine.
pub fn run_allhit(kind: MicroKind, dx100: bool, cfg: &SystemConfig, _seed: u64) -> RunStats {
    let (image, ar) = build();
    let mut sys = System::new(cfg.clone(), image);
    let cores = kind.cores_used(!dx100).min(sys.num_cores());

    let mut phases = Vec::new();
    // Warm pass (not measured).
    {
        let w: Vec<Vec<CoreOp>> = (0..cores).map(|_| warm_ops(&ar)).collect();
        phases.push(Phase::setup(move |sys| {
            for (c, ops) in w.into_iter().enumerate() {
                sys.push_ops(c, ops);
            }
        }));
        phases.push(Phase::WaitCoresIdle);
    }
    phases.push(Phase::RoiBegin);
    if !dx100 {
        let per = N / cores;
        let mut per_core: Vec<Vec<CoreOp>> = vec![Vec::new(); cores];
        for _ in 0..PASSES {
            for (c, ops) in per_core.iter_mut().enumerate() {
                ops.extend(baseline_pass(kind, &ar, c * per, (c + 1) * per));
            }
        }
        phases.push(Phase::setup(move |sys| {
            for (c, ops) in per_core.into_iter().enumerate() {
                sys.push_ops(c, ops);
            }
        }));
    } else {
        let (a, b, c_arr) = (ar.a, ar.b, ar.c);
        phases.push(Phase::setup(move |sys| {
            let mut jobs = Vec::new();
            for pass in 0..PASSES {
                for (slot, core) in (0..cores).enumerate() {
                    let k = pass * cores + slot;
                    let per = N / cores;
                    let (lo, n) = (core * per, per);
                    let g = tile_set4(k);
                    let r = core_regs(core);
                    let reg_writes = vec![(r[0], lo as u64), (r[1], 1), (r[2], n as u64)];
                    let (instrs, post) = match kind {
                        MicroKind::GatherSpd => (
                            vec![
                                Instruction::sld(DType::U32, b.base(), g[0], r[0], r[1], r[2]),
                                Instruction::ild(DType::U32, a.base(), g[1], g[0]),
                            ],
                            consume_tile_ops(sys, core, g[1], n, 1, S_SPD),
                        ),
                        MicroKind::GatherFull => (
                            vec![
                                Instruction::sld(DType::U32, b.base(), g[0], r[0], r[1], r[2]),
                                Instruction::ild(DType::U32, a.base(), g[1], g[0]),
                                Instruction::Sst {
                                    dtype: DType::U32,
                                    base: c_arr.base(),
                                    ts: g[1],
                                    rs1: r[0],
                                    rs2: r[1],
                                    rs3: r[2],
                                    tc: None,
                                },
                            ],
                            vec![],
                        ),
                        MicroKind::RmwAtomic | MicroKind::RmwNoAtom => (
                            vec![
                                Instruction::sld(DType::U32, b.base(), g[0], r[0], r[1], r[2]),
                                Instruction::sld(DType::U32, c_arr.base(), g[1], r[0], r[1], r[2]),
                                Instruction::irmw(DType::U32, AluOp::Add, a.base(), g[0], g[1]),
                            ],
                            vec![],
                        ),
                        MicroKind::Scatter => (
                            vec![
                                Instruction::sld(DType::U32, b.base(), g[0], r[0], r[1], r[2]),
                                Instruction::sld(DType::U32, c_arr.base(), g[1], r[0], r[1], r[2]),
                                Instruction::ist(DType::U32, a.base(), g[0], g[1]),
                            ],
                            vec![],
                        ),
                    };
                    jobs.push(TileJob {
                        core,
                        pre_ops: vec![],
                        tile_writes: vec![],
                        reg_writes,
                        instrs,
                        post_ops: post,
                    });
                }
            }
            install_jobs(sys, &jobs);
        }));
    }
    phases.push(Phase::WaitCoresIdle);
    phases.push(Phase::RoiEnd);
    sys.run(&mut PhasedDriver::new(phases))
}

/// Figure 8a rows: `(label, dx100_speedup_over_named_baseline)`.
pub fn fig08a(seed: u64) -> Vec<(&'static str, f64)> {
    let base_cfg = SystemConfig::paper_baseline();
    let dx_cfg = SystemConfig::paper_dx100();
    MicroKind::ALL
        .iter()
        .map(|&kind| {
            let base = run_allhit(kind, false, &base_cfg, seed);
            // RmwNoAtom shares the DX100 run with RmwAtomic (one accelerator
            // implementation, two baselines).
            let dx_kind = kind;
            let dx = run_allhit(dx_kind, true, &dx_cfg, seed);
            (kind.label(), base.cycles as f64 / dx.cycles.max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_atomic_slower_than_noatom_baseline() {
        let cfg = SystemConfig::paper_baseline();
        let at = run_allhit(MicroKind::RmwAtomic, false, &cfg, 1);
        let no = run_allhit(MicroKind::RmwNoAtom, false, &cfg, 1);
        let ratio = at.cycles as f64 / no.cycles as f64;
        // Paper: ~4.8×. Anywhere in 2–12× preserves the phenomenon.
        assert!(
            (2.0..12.0).contains(&ratio),
            "atomic/noatom ratio {ratio:.2}"
        );
    }

    #[test]
    fn dx100_wins_every_allhit_microbench() {
        // Gather-SPD sits at ~1× (the paper's 1.2×: SPD consumption eats
        // most of the offload win); everything else must clearly win.
        for (label, speedup) in fig08a(1) {
            let floor = if label == "gather-spd" { 0.8 } else { 1.0 };
            assert!(speedup > floor, "{label}: speedup {speedup:.2}");
        }
    }

    #[test]
    fn gather_full_beats_gather_spd() {
        // Full offload avoids the core-side SPD consumption (paper: 3.2×
        // vs 1.2×).
        let rows = fig08a(2);
        let spd = rows.iter().find(|(l, _)| *l == "gather-spd").unwrap().1;
        let full = rows.iter().find(|(l, _)| *l == "gather-full").unwrap().1;
        assert!(full > spd, "full {full:.2} vs spd {spd:.2}");
    }
}
