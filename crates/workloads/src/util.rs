//! Shared workload machinery: phased drivers, tile-job pipelining, core-side
//! scratchpad produce/consume op generation, and verification helpers.

use dx100_common::flags::FlagId;
use dx100_common::CoreId;
use dx100_core::isa::{Instruction, RegId, TileId};
use dx100_cpu::CoreOp;
use dx100_sim::{Driver, DriverStatus, System};

/// A one-shot setup action.
pub type SetupFn = Box<dyn FnOnce(&mut System)>;

/// One step of a [`PhasedDriver`].
pub enum Phase {
    /// Run a one-shot action (install op streams, send instructions, ...).
    Setup(Option<SetupFn>),
    /// Wait until every core has drained its program.
    WaitCoresIdle,
    /// Begin the measured region of interest.
    RoiBegin,
    /// End the measured region of interest.
    RoiEnd,
    /// Poll a closure until it reports completion.
    Poll(Box<dyn FnMut(&mut System) -> bool>),
}

impl Phase {
    /// Convenience constructor for [`Phase::Setup`].
    pub fn setup(f: impl FnOnce(&mut System) + 'static) -> Phase {
        Phase::Setup(Some(Box::new(f)))
    }

    /// Convenience constructor for [`Phase::Poll`].
    pub fn poll(f: impl FnMut(&mut System) -> bool + 'static) -> Phase {
        Phase::Poll(Box::new(f))
    }
}

/// A driver that walks a fixed list of phases. This is the shape of every
/// workload's "software": setup, kick off work, wait, measure, repeat.
pub struct PhasedDriver {
    phases: Vec<Phase>,
    idx: usize,
}

impl PhasedDriver {
    /// Creates a driver over `phases`.
    pub fn new(phases: Vec<Phase>) -> Self {
        PhasedDriver { phases, idx: 0 }
    }
}

impl Driver for PhasedDriver {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        while self.idx < self.phases.len() {
            match &mut self.phases[self.idx] {
                Phase::Setup(f) => {
                    if let Some(f) = f.take() {
                        f(sys);
                    }
                    self.idx += 1;
                }
                Phase::WaitCoresIdle => {
                    if sys.cores_idle() {
                        self.idx += 1;
                    } else {
                        return DriverStatus::Running;
                    }
                }
                Phase::RoiBegin => {
                    sys.roi_begin();
                    self.idx += 1;
                }
                Phase::RoiEnd => {
                    sys.roi_end();
                    self.idx += 1;
                }
                Phase::Poll(f) => {
                    if f(sys) {
                        self.idx += 1;
                    } else {
                        return DriverStatus::Running;
                    }
                }
            }
        }
        DriverStatus::Done
    }
}

/// One tile-granular unit of DX100 work issued from a core.
#[derive(Debug, Clone, Default)]
pub struct TileJob {
    /// Issuing core.
    pub core: CoreId,
    /// Core-side ops to run before anything is sent (produce phase: e.g.
    /// computing a destination-index tile).
    pub pre_ops: Vec<CoreOp>,
    /// Host tile writes applied (functionally) after `pre_ops`' timing.
    pub tile_writes: Vec<(TileId, Vec<u64>)>,
    /// Register writes preceding the instructions.
    pub reg_writes: Vec<(RegId, u64)>,
    /// Instructions, issued in order; the last one carries the completion
    /// flag the core waits on.
    pub instrs: Vec<Instruction>,
    /// Core-side ops to run after the job completes (consume phase).
    pub post_ops: Vec<CoreOp>,
}

/// Installs per-core job sequences with double buffering: each core sends
/// job *k+1*'s instructions before waiting on job *k*, so the accelerator
/// always has a tile in flight. Jobs on one core must therefore alternate
/// between two disjoint tile groups.
///
/// Returns the completion flags, one per job, in input order.
pub fn install_jobs(sys: &mut System, jobs: &[TileJob]) -> Vec<FlagId> {
    let flags: Vec<FlagId> = jobs.iter().map(|_| sys.alloc_flag()).collect();
    let cores: Vec<CoreId> = {
        let mut c: Vec<CoreId> = jobs.iter().map(|j| j.core).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    for core in cores {
        let idxs: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.core == core)
            .map(|(i, _)| i)
            .collect();
        // Send job 0 immediately; then for each k: send k+1, wait k, post k.
        // Lookahead is skipped when the next job's *host tile writes* would
        // touch tiles the current job's instructions still use — those
        // writes bypass the controller's scoreboard, so ordering must come
        // from the core program (wait first, then send).
        if let Some(&first) = idxs.first() {
            send_job(sys, &jobs[first], flags[first]);
        }
        let mut sent = vec![false; idxs.len()];
        if !sent.is_empty() {
            sent[0] = true;
        }
        for w in 0..idxs.len() {
            let cur = idxs[w];
            if w + 1 < idxs.len() {
                let next = idxs[w + 1];
                if lookahead_safe(&jobs[cur], &jobs[next]) {
                    send_job(sys, &jobs[next], flags[next]);
                    sent[w + 1] = true;
                }
            }
            sys.push_wait(core, flags[cur], false);
            if w + 1 < idxs.len() && !sent[w + 1] {
                let next = idxs[w + 1];
                send_job(sys, &jobs[next], flags[next]);
                sent[w + 1] = true;
            }
            if !jobs[cur].post_ops.is_empty() {
                sys.push_ops(core, jobs[cur].post_ops.clone());
            }
        }
    }
    flags
}

/// Whether `next` may be sent before waiting on `cur`: its host tile
/// writes must not touch any tile `cur`'s instructions use.
fn lookahead_safe(cur: &TileJob, next: &TileJob) -> bool {
    if next.tile_writes.is_empty() {
        return true;
    }
    let used: Vec<TileId> = cur
        .instrs
        .iter()
        .flat_map(|i| {
            i.dest_tiles()
                .into_iter()
                .chain(i.source_tiles())
                .collect::<Vec<_>>()
        })
        .collect();
    next.tile_writes.iter().all(|(t, _)| !used.contains(t))
}

fn send_job(sys: &mut System, job: &TileJob, flag: FlagId) {
    if !job.pre_ops.is_empty() {
        sys.push_ops(job.core, job.pre_ops.clone());
    }
    for (t, data) in &job.tile_writes {
        sys.send_tile_write(job.core, *t, data.clone());
    }
    for (r, v) in &job.reg_writes {
        sys.send_reg_write(job.core, *r, *v);
    }
    for (k, instr) in job.instrs.iter().enumerate() {
        let f = (k == job.instrs.len() - 1).then_some(flag);
        sys.send_instruction(job.core, *instr, f);
    }
}

/// Core ops that consume a gathered tile from the scratchpad region:
/// one load per element (lines are cached and prefetched, so most hit)
/// plus `alu_per_elem` arithmetic µops per element.
pub fn consume_tile_ops(
    sys: &System,
    core: CoreId,
    tile: TileId,
    n: usize,
    alu_per_elem: usize,
    stream: u32,
) -> Vec<CoreOp> {
    let mut ops = Vec::with_capacity(n * (1 + alu_per_elem));
    for i in 0..n {
        ops.push(CoreOp::load(sys.spd_elem_addr(core, tile, i), stream));
        for _ in 0..alu_per_elem {
            ops.push(CoreOp::alu().with_dep(1));
        }
    }
    ops
}

/// Core ops that produce a tile into the scratchpad region (host-computed
/// values written tile-wise): `alu_per_elem` µops then a store per element.
/// The functional data must be written separately via
/// [`dx100_core::Dx100Engine::write_tile`].
pub fn produce_tile_ops(
    sys: &System,
    core: CoreId,
    tile: TileId,
    n: usize,
    alu_per_elem: usize,
    stream: u32,
) -> Vec<CoreOp> {
    let mut ops = Vec::with_capacity(n * (1 + alu_per_elem));
    for i in 0..n {
        for _ in 0..alu_per_elem {
            ops.push(CoreOp::alu());
        }
        ops.push(CoreOp::store(sys.spd_elem_addr(core, tile, i), stream));
    }
    ops
}

/// Splits `n` items into per-core contiguous chunks.
pub fn chunks(n: usize, cores: usize) -> Vec<(usize, usize)> {
    let per = n.div_ceil(cores);
    (0..cores)
        .map(|c| (c * per, ((c + 1) * per).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// FNV-1a checksum of a u64 slice (output verification).
pub fn checksum(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Quantizes an f64 for checksumming across reordered FP accumulation
/// (matches to ~6 significant digits).
pub fn quantize_f64(v: f64) -> u64 {
    if v == 0.0 {
        return 0;
    }
    let scaled = (v * 1e6).round();
    scaled.to_bits()
}

/// Asserts two f64 slices match within a relative tolerance.
///
/// # Panics
/// Panics with a diagnostic on mismatch.
pub fn assert_f64_close(got: &[f64], want: &[f64], rel: f64) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        assert!(
            (g - w).abs() <= rel * scale,
            "element {i}: got {g}, want {w}"
        );
    }
}

/// Four-tile working set for job number `k`: eight rotating sets cover the
/// 32-tile scratchpad, so a core's consecutive jobs (k and k+4 under 4-core
/// round-robin) land on different sets and double-buffer cleanly. Reuse
/// across in-flight jobs is *safe* regardless — the controller's scoreboard
/// serializes conflicting destinations — it only costs parallelism.
pub fn tile_set4(k: usize) -> [TileId; 4] {
    let s = k % 8;
    std::array::from_fn(|i| TileId::new((s * 4 + i) as u8))
}

/// Eight-tile working set for job number `k` (four rotating sets), for
/// kernels whose per-tile pipeline needs more intermediate tiles (range
/// fusion, multi-level indirection).
pub fn tile_set8(k: usize) -> [TileId; 8] {
    let s = k % 4;
    std::array::from_fn(|i| TileId::new((s * 8 + i) as u8))
}

/// Submitting core for a `tile_set8` job: the 8-tile sets rotate mod 4,
/// so jobs `k` and `k + 4` share tiles. Host tile writes bypass the
/// engine's scoreboard, so tile reuse is only safe when ordered by one
/// core's program — map same-set jobs to the same core (at most 4
/// submitters even on 8-core machines; submission is never the
/// bottleneck).
pub fn set8_core(k: usize, cores: usize) -> CoreId {
    k % cores.min(4)
}

/// Registers a core may use without clashing with other cores (a private
/// bank of 8 for up to 8 cores — register writes are MMIO actions that
/// interleave across cores, so banks must never be shared).
pub fn core_regs(core: CoreId) -> [RegId; 8] {
    let base = (core % 8) * 8;
    std::array::from_fn(|k| RegId::new((base + k) as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set8_jobs_sharing_tiles_share_a_core() {
        // tile_set8 rotates mod 4: jobs k and k+4 share tiles, so they
        // must map to the same submitting core at every supported core
        // count (host tile writes bypass the engine scoreboard).
        for cores in [1, 2, 4, 8] {
            for k in 0..32 {
                assert_eq!(
                    set8_core(k, cores),
                    set8_core(k + 4, cores),
                    "jobs {k} and {} share tile_set8 but not a core",
                    k + 4
                );
                assert!(set8_core(k, cores) < cores);
            }
        }
    }

    #[test]
    fn core_regs_are_private_per_core() {
        for a in 0..8usize {
            for b in (a + 1)..8 {
                let (ra, rb) = (core_regs(a), core_regs(b));
                assert!(
                    ra.iter().all(|r| !rb.contains(r)),
                    "cores {a} and {b} share registers"
                );
            }
        }
    }

    #[test]
    fn chunks_cover_everything() {
        assert_eq!(chunks(10, 4), vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert_eq!(chunks(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(chunks(2, 4), vec![(0, 1), (1, 2)]);
        let total: usize = chunks(1001, 4).iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 1001);
    }

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let a = checksum([1, 2, 3]);
        let b = checksum([1, 2, 3]);
        let c = checksum([3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tile_sets_rotate_without_overlap() {
        // Consecutive jobs of one core (k, k+4) use disjoint 4-tile sets.
        for k in 0..8 {
            let a = tile_set4(k);
            let b = tile_set4(k + 4);
            for t in a {
                assert!(!b.contains(&t), "job {k}: tile {t} shared");
            }
        }
        // The eight sets cover all 32 tiles.
        let mut seen = std::collections::HashSet::new();
        for k in 0..8 {
            seen.extend(tile_set4(k).map(|t| t.index()));
        }
        assert_eq!(seen.len(), 32);
        assert_eq!(tile_set8(0)[7].index(), 7);
        assert_eq!(tile_set8(3)[0].index(), 24);
    }

    #[test]
    fn quantize_tolerates_tiny_fp_noise() {
        assert_eq!(quantize_f64(1.0000000001), quantize_f64(1.0));
        assert_ne!(quantize_f64(1.01), quantize_f64(1.0));
    }
}
