//! The paper's evaluation workloads: 12 irregular kernels from five suites
//! (Table 1) plus the five microbenchmarks of Figure 8, each with a
//! baseline (multicore op-stream) implementation and a DX100-offloaded
//! implementation, sharing one dataset per seed.
//!
//! Every kernel verifies its DX100-simulated output against a plain-Rust
//! functional reference before reporting timing, so the performance numbers
//! in the bench harness are backed by end-to-end correctness.
//!
//! | Kernel | Suite | Pattern (Table 1) |
//! |---|---|---|
//! | `is` | NAS | `RMW A[B[i]]`, single loop |
//! | `cg` | NAS | `LD A[B[j]]`, direct range loop (CSR SpMV) |
//! | `bfs` | GAP | `ST/LD` with condition, indirect range loop |
//! | `pr` | GAP | `RMW A[B[j]]`, direct range loop (push PageRank) |
//! | `bc` | GAP | `RMW A[B[j]] if (D[E[j]] == F)`, indirect range loop |
//! | `prh` | Hash-Join | `ST A[B[f(C[i])]]`, `f = (C[i] & F) >> G` |
//! | `pro` | Hash-Join | bucket-chain probe: `nodes[next_idx[i]]` walks |
//! | `gzz`/`gzp` | UME | `RMW A[B[i]] if (D[i] >= F)` |
//! | `gzzi`/`gzpi` | UME | `LD A[B[C[j]]] if (D[j] >= F)`, indirect range |
//! | `xrage` | Spatter | `ST A[B[i]]` with the xRAGE trace shape |

pub mod datasets;
pub mod kernels;
pub mod micro;
pub mod util;

use dx100_sim::{RunStats, RunTelemetry, SystemConfig};

/// Which machine runs the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain multicore (Table 3 baseline).
    Baseline,
    /// Multicore plus the DMP indirect prefetcher.
    Dmp,
    /// Multicore plus DX100 offload.
    Dx100,
}

impl Mode {
    /// All three modes.
    pub const ALL: [Mode; 3] = [Mode::Baseline, Mode::Dmp, Mode::Dx100];

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Dmp => "dmp",
            Mode::Dx100 => "dx100",
        }
    }
}

/// Result of one kernel run.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Region-of-interest statistics.
    pub stats: RunStats,
    /// Checksum of the (verified) kernel output, stable across modes.
    pub checksum: u64,
    /// Cycle-skip counters and (with `obs.profile`) the cycle attribution.
    /// Kept outside [`RunStats`] so those stay bit-identical across
    /// telemetry switches; defaulted on paths that extrapolate stats
    /// rather than simulate end-to-end (sampled runs).
    pub telemetry: RunTelemetry,
}

/// A runnable kernel at a fixed dataset scale.
pub trait KernelRun {
    /// Short name (matches the paper's labels).
    fn name(&self) -> &'static str;

    /// Runs the kernel in `mode` on a machine built from `cfg`.
    ///
    /// The same `seed` produces the same dataset in every mode, and DX100
    /// runs verify their output against the functional reference.
    fn run(&self, mode: Mode, cfg: &SystemConfig, seed: u64) -> WorkloadResult;

    /// Prepares this kernel for sampled simulation: a clock-0 checkpoint
    /// plus per-stage functional access models and window installers (see
    /// `dx100-sampling`). Kernels without an interval decomposition return
    /// `None` and run in full (inside a replay worker thread).
    ///
    /// Sampled runs skip output verification — the returned checksum comes
    /// from the functional reference, and full runs of the same kernel
    /// (which do verify) cover correctness.
    fn prepare_sampled(
        &self,
        _mode: Mode,
        _cfg: &SystemConfig,
        _seed: u64,
    ) -> Option<dx100_sampling::SampledRun> {
        None
    }
}

/// Dataset scale: 1.0 is this reproduction's default size (documented per
/// kernel; a few × smaller than the paper's gem5 datasets so runs take
/// seconds, not hours). Tests use small fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Scales a base element count, keeping at least `min`.
    pub fn apply(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.0) as usize).max(min)
    }
}

/// All 12 paper kernels at `scale`. Kernels are `Send + Sync` so the
/// sampled bench path can run them from replay worker threads.
pub fn all_kernels(scale: Scale) -> Vec<Box<dyn KernelRun + Send + Sync>> {
    vec![
        Box::new(kernels::is::IntegerSort::new(scale)),
        Box::new(kernels::cg::ConjugateGradient::new(scale)),
        Box::new(kernels::bfs::Bfs::new(scale)),
        Box::new(kernels::bc::BetweennessCentrality::new(scale)),
        Box::new(kernels::pr::PageRank::new(scale)),
        Box::new(kernels::prh::RadixJoinHistogram::new(scale)),
        Box::new(kernels::pro::RadixJoinChaining::new(scale)),
        Box::new(kernels::ume::Ume::zone(scale, false)),
        Box::new(kernels::ume::Ume::zone(scale, true)),
        Box::new(kernels::ume::Ume::point(scale, false)),
        Box::new(kernels::ume::Ume::point(scale, true)),
        Box::new(kernels::xrage::Xrage::new(scale)),
    ]
}
