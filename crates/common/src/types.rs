//! Core vocabulary types: time, addresses, data types, ALU operations.

use std::fmt;

/// Simulation time in CPU clock cycles (3.2 GHz in the paper's Table 3).
pub type Cycle = u64;

/// A byte address in the simulated physical/virtual address space.
pub type Addr = u64;

/// Identifier of a CPU core.
pub type CoreId = usize;

/// Unique identifier of an in-flight memory request.
pub type ReqId = u64;

/// Width of a cache line in bytes. All caches and DRAM bursts in the paper's
/// configuration use 64-byte lines.
pub const CACHE_LINE_BYTES: u64 = 64;

/// `log2(CACHE_LINE_BYTES)`.
pub const CACHE_LINE_SHIFT: u32 = 6;

/// A cache-line-aligned address, stored in units of cache lines.
///
/// Newtype so the type system distinguishes line numbers from byte addresses
/// (`C-NEWTYPE`): mixing the two is the classic off-by-`<<6` bug in memory
/// simulators.
///
/// ```
/// use dx100_common::{Addr, LineAddr};
/// let byte: Addr = 0x1234;
/// let line = LineAddr::containing(byte);
/// assert_eq!(line.base(), 0x1200);
/// assert_eq!(line.offset_of(byte), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `addr`.
    #[inline]
    pub fn containing(addr: Addr) -> Self {
        LineAddr(addr >> CACHE_LINE_SHIFT)
    }

    /// Byte address of the first byte of this line.
    #[inline]
    pub fn base(self) -> Addr {
        self.0 << CACHE_LINE_SHIFT
    }

    /// Byte offset of `addr` within this line.
    ///
    /// # Panics
    /// Panics in debug builds if `addr` is not inside this line.
    #[inline]
    pub fn offset_of(self, addr: Addr) -> u64 {
        debug_assert_eq!(LineAddr::containing(addr), self);
        addr & (CACHE_LINE_BYTES - 1)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.base())
    }
}

/// Data types supported by the DX100 ISA (`DTYPE` operand, paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// Unsigned 32-bit integer.
    #[default]
    U32,
    /// Signed 32-bit integer.
    I32,
    /// IEEE-754 single-precision float.
    F32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
    /// IEEE-754 double-precision float.
    F64,
}

impl DType {
    /// Size of one element in bytes (4 for the 32-bit types, 8 for 64-bit).
    #[inline]
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::U32 | DType::I32 | DType::F32 => 4,
            DType::U64 | DType::I64 | DType::F64 => 8,
        }
    }

    /// All data types, in the order used by the ISA encoding.
    pub const ALL: [DType; 6] = [
        DType::U32,
        DType::I32,
        DType::F32,
        DType::U64,
        DType::I64,
        DType::F64,
    ];

    /// Encoding used in the 192-bit instruction format.
    #[inline]
    pub fn encode(self) -> u8 {
        match self {
            DType::U32 => 0,
            DType::I32 => 1,
            DType::F32 => 2,
            DType::U64 => 3,
            DType::I64 => 4,
            DType::F64 => 5,
        }
    }

    /// Inverse of [`DType::encode`]. Returns `None` for invalid encodings.
    #[inline]
    pub fn decode(bits: u8) -> Option<Self> {
        DType::ALL.get(bits as usize).copied()
    }

    /// Whether the type is a floating-point type.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::U32 => "u32",
            DType::I32 => "i32",
            DType::F32 => "f32",
            DType::U64 => "u64",
            DType::I64 => "i64",
            DType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// ALU operations supported by the DX100 ISA (`OP` operand, paper Table 2).
///
/// The comparison operators produce a boolean condition value (0 or 1) usable
/// as a condition tile; the arithmetic/bitwise operators produce values of the
/// instruction's [`DType`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND (integer types only).
    And,
    /// Bitwise OR (integer types only).
    Or,
    /// Bitwise XOR (integer types only).
    Xor,
    /// Logical shift right (integer types only).
    Shr,
    /// Shift left (integer types only).
    Shl,
    /// Less-than comparison, result 0/1.
    Lt,
    /// Less-or-equal comparison, result 0/1.
    Le,
    /// Greater-than comparison, result 0/1.
    Gt,
    /// Greater-or-equal comparison, result 0/1.
    Ge,
    /// Equality comparison, result 0/1.
    Eq,
}

impl AluOp {
    /// All operations in ISA encoding order.
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shr,
        AluOp::Shl,
        AluOp::Lt,
        AluOp::Le,
        AluOp::Gt,
        AluOp::Ge,
        AluOp::Eq,
    ];

    /// Encoding used in the 192-bit instruction format.
    #[inline]
    pub fn encode(self) -> u8 {
        AluOp::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    /// Inverse of [`AluOp::encode`]. Returns `None` for invalid encodings.
    #[inline]
    pub fn decode(bits: u8) -> Option<Self> {
        AluOp::ALL.get(bits as usize).copied()
    }

    /// Whether the operation produces a 0/1 condition value.
    #[inline]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            AluOp::Lt | AluOp::Le | AluOp::Gt | AluOp::Ge | AluOp::Eq
        )
    }

    /// Whether the operation is associative and commutative, and therefore
    /// legal for `IRMW` instructions, whose hardware reorders the updates
    /// (paper Section 3.1: "DX100 only supports a subset of associative and
    /// commutative operations, such as ADD, MAX, and MIN for the IRMW
    /// instructions").
    ///
    /// Floating-point `Add` is *not* strictly associative, but the paper (and
    /// every scatter-add accelerator) accepts reordered FP accumulation; the
    /// functional model therefore mirrors hardware ordering so tests can still
    /// compare bit-exactly.
    #[inline]
    pub fn is_rmw_legal(self) -> bool {
        matches!(
            self,
            AluOp::Add | AluOp::Min | AluOp::Max | AluOp::And | AluOp::Or | AluOp::Xor
        )
    }

    /// Whether the operation only makes sense for integer types.
    #[inline]
    pub fn is_integer_only(self) -> bool {
        matches!(
            self,
            AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Shr | AluOp::Shl
        )
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shr => "shr",
            AluOp::Shl => "shl",
            AluOp::Lt => "lt",
            AluOp::Le => "le",
            AluOp::Gt => "gt",
            AluOp::Ge => "ge",
            AluOp::Eq => "eq",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_round_trips() {
        for addr in [0u64, 63, 64, 65, 0xdead_beef] {
            let line = LineAddr::containing(addr);
            assert!(line.base() <= addr);
            assert!(addr < line.base() + CACHE_LINE_BYTES);
            assert_eq!(line.base() + line.offset_of(addr), addr);
        }
    }

    #[test]
    fn dtype_encoding_round_trips() {
        for dt in DType::ALL {
            assert_eq!(DType::decode(dt.encode()), Some(dt));
        }
        assert_eq!(DType::decode(200), None);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::U32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert!(DType::F32.is_float());
        assert!(!DType::I64.is_float());
    }

    #[test]
    fn aluop_encoding_round_trips() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::decode(op.encode()), Some(op));
        }
        assert_eq!(AluOp::decode(99), None);
    }

    #[test]
    fn rmw_legality_matches_paper() {
        // Paper: ADD, MAX, MIN (plus other assoc/comm bitwise ops) are legal.
        assert!(AluOp::Add.is_rmw_legal());
        assert!(AluOp::Min.is_rmw_legal());
        assert!(AluOp::Max.is_rmw_legal());
        // Non-associative/commutative ops are not.
        assert!(!AluOp::Sub.is_rmw_legal());
        assert!(!AluOp::Shl.is_rmw_legal());
        assert!(!AluOp::Lt.is_rmw_legal());
    }

    #[test]
    fn comparisons_flagged() {
        assert!(AluOp::Lt.is_comparison());
        assert!(!AluOp::Add.is_comparison());
    }
}
