//! A deterministic delay queue for modeling fixed-latency links.
//!
//! Components in the timing model (cache-to-cache links, the NoC hop to
//! DX100, DRAM response wires) deliver messages a fixed number of cycles
//! after they are sent. [`DelayQueue`] preserves FIFO order among messages
//! that become ready on the same cycle, which keeps the whole simulation
//! deterministic.
//!
//! The queue is a flat ring (`VecDeque`) kept sorted by ready cycle rather
//! than a `BinaryHeap`: almost every producer schedules at `now + fixed
//! latency` with a monotonically advancing `now`, so pushes append at the
//! back in O(1), and both `pop_ready` and `next_ready_at` are a single
//! front-slot probe — no sift-down, no per-entry sequence numbers. Items
//! inserted for the same ready cycle land *after* existing entries with
//! that cycle (stable insertion), which is exactly the FIFO tie-break the
//! old `(ready_at, seq)` heap ordering provided.

use std::collections::VecDeque;

use crate::types::Cycle;

/// A queue whose items become visible only once the simulation clock reaches
/// their ready cycle.
///
/// ```
/// use dx100_common::DelayQueue;
///
/// let mut q = DelayQueue::new();
/// q.push_at(10, "a");
/// q.push_at(5, "b");
/// assert_eq!(q.pop_ready(4), None);
/// assert_eq!(q.pop_ready(5), Some("b"));
/// assert_eq!(q.pop_ready(5), None);
/// assert_eq!(q.pop_ready(100), Some("a"));
/// ```
#[derive(Clone)]
pub struct DelayQueue<T> {
    /// `(ready_at, item)`, sorted by `ready_at`; ties in insertion order.
    ring: VecDeque<(Cycle, T)>,
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DelayQueue {
            ring: VecDeque::new(),
        }
    }

    /// Schedules `item` to become ready at absolute cycle `ready_at`.
    #[inline]
    pub fn push_at(&mut self, ready_at: Cycle, item: T) {
        // Fast path: ready times are almost always nondecreasing (fixed
        // latencies, advancing clock), so the slot is the back of the ring.
        if self.ring.back().is_none_or(|&(t, _)| t <= ready_at) {
            self.ring.push_back((ready_at, item));
            return;
        }
        // Out-of-order push: stable insert after any equal-cycle entries.
        let idx = self.ring.partition_point(|&(t, _)| t <= ready_at);
        self.ring.insert(idx, (ready_at, item));
    }

    /// Pops the oldest item whose ready cycle is `<= now`, if any.
    #[inline]
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.ring.front().is_some_and(|&(t, _)| t <= now) {
            self.ring.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Cycle at which the next item becomes ready, if the queue is non-empty.
    #[inline]
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.ring.front().map(|&(t, _)| t)
    }

    /// Number of queued items (ready or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the queue holds no items at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for DelayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayQueue")
            .field("len", &self.ring.len())
            .field("next_ready_at", &self.next_ready_at())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_cycles() {
        let mut q = DelayQueue::new();
        q.push_at(3, 1);
        q.push_at(3, 2);
        q.push_at(3, 3);
        assert_eq!(q.pop_ready(3), Some(1));
        assert_eq!(q.pop_ready(3), Some(2));
        assert_eq!(q.pop_ready(3), Some(3));
        assert_eq!(q.pop_ready(3), None);
    }

    #[test]
    fn respects_ready_time() {
        let mut q = DelayQueue::new();
        q.push_at(10, "x");
        assert!(q.pop_ready(9).is_none());
        assert_eq!(q.next_ready_at(), Some(10));
        assert_eq!(q.pop_ready(10), Some("x"));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_order() {
        let mut q = DelayQueue::new();
        q.push_at(5, "late");
        q.push_at(1, "early");
        q.push_at(3, "mid");
        assert_eq!(q.pop_ready(100), Some("early"));
        assert_eq!(q.pop_ready(100), Some("mid"));
        assert_eq!(q.pop_ready(100), Some("late"));
    }

    #[test]
    fn out_of_order_push_ties_stay_fifo() {
        let mut q = DelayQueue::new();
        q.push_at(10, "first@10");
        q.push_at(20, "only@20");
        // Pushed after, ready at an earlier-seen cycle: must land *after*
        // the existing entry at cycle 10.
        q.push_at(10, "second@10");
        assert_eq!(q.pop_ready(100), Some("first@10"));
        assert_eq!(q.pop_ready(100), Some("second@10"));
        assert_eq!(q.pop_ready(100), Some("only@20"));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = DelayQueue::new();
        assert!(q.is_empty());
        q.push_at(1, ());
        q.push_at(2, ());
        assert_eq!(q.len(), 2);
        let _ = q.pop_ready(5);
        assert_eq!(q.len(), 1);
    }
}

/// Differential property tests: the flat-ring queue must agree op-for-op
/// with the original `BinaryHeap` implementation (ordered by `(ready_at,
/// insertion seq)`), including FIFO order among same-cycle ties.
#[cfg(test)]
mod differential {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    /// The pre-flat-ring implementation, kept verbatim as the reference
    /// model for the differential test below.
    struct HeapEntry<T> {
        ready_at: Cycle,
        seq: u64,
        item: T,
    }

    impl<T> PartialEq for HeapEntry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.ready_at == other.ready_at && self.seq == other.seq
        }
    }
    impl<T> Eq for HeapEntry<T> {}
    impl<T> PartialOrd for HeapEntry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T> Ord for HeapEntry<T> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (other.ready_at, other.seq).cmp(&(self.ready_at, self.seq))
        }
    }

    struct HeapDelayQueue<T> {
        heap: BinaryHeap<HeapEntry<T>>,
        seq: u64,
    }

    impl<T> HeapDelayQueue<T> {
        fn new() -> Self {
            HeapDelayQueue {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push_at(&mut self, ready_at: Cycle, item: T) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(HeapEntry {
                ready_at,
                seq,
                item,
            });
        }
        fn pop_ready(&mut self, now: Cycle) -> Option<T> {
            if self.heap.peek().is_some_and(|e| e.ready_at <= now) {
                Some(self.heap.pop().unwrap().item)
            } else {
                None
            }
        }
        fn next_ready_at(&self) -> Option<Cycle> {
            self.heap.peek().map(|e| e.ready_at)
        }
        fn len(&self) -> usize {
            self.heap.len()
        }
    }

    /// One step of a random schedule. Ready cycles are drawn from a small
    /// range so same-cycle ties are common; pushes are a mix of monotonic
    /// (`now + delta`, the common fixed-latency shape) and absolute
    /// (out-of-order) times.
    #[derive(Debug, Clone)]
    enum Op {
        PushAfter(Cycle),
        PushAbsolute(Cycle),
        PopReady,
        Advance(Cycle),
        Probe,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Arms are repeated in lieu of weights (the vendored prop_oneof!
        // draws uniformly): pushes and pops dominate, probes are rarer.
        prop_oneof![
            (0u64..8).prop_map(Op::PushAfter),
            (0u64..8).prop_map(Op::PushAfter),
            (0u64..8).prop_map(Op::PushAfter),
            (0u64..32).prop_map(Op::PushAbsolute),
            (0u64..32).prop_map(Op::PushAbsolute),
            Just(Op::PopReady),
            Just(Op::PopReady),
            Just(Op::PopReady),
            (0u64..4).prop_map(Op::Advance),
            (0u64..4).prop_map(Op::Advance),
            Just(Op::Probe),
        ]
    }

    proptest! {
        #[test]
        fn flat_ring_matches_heap_reference(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut ring = DelayQueue::new();
            let mut heap = HeapDelayQueue::new();
            let mut now: Cycle = 0;
            let mut tag: u32 = 0;
            for op in ops {
                match op {
                    Op::PushAfter(d) => {
                        ring.push_at(now + d, tag);
                        heap.push_at(now + d, tag);
                        tag += 1;
                    }
                    Op::PushAbsolute(t) => {
                        ring.push_at(t, tag);
                        heap.push_at(t, tag);
                        tag += 1;
                    }
                    Op::PopReady => {
                        prop_assert_eq!(ring.pop_ready(now), heap.pop_ready(now));
                    }
                    Op::Advance(d) => now += d,
                    Op::Probe => {
                        prop_assert_eq!(ring.next_ready_at(), heap.next_ready_at());
                        prop_assert_eq!(ring.len(), heap.len());
                    }
                }
            }
            // Drain both to the end: full pop order must agree.
            loop {
                let (a, b) = (ring.pop_ready(Cycle::MAX), heap.pop_ready(Cycle::MAX));
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
