//! A deterministic delay queue for modeling fixed-latency links.
//!
//! Components in the timing model (cache-to-cache links, the NoC hop to
//! DX100, DRAM response wires) deliver messages a fixed number of cycles
//! after they are sent. [`DelayQueue`] preserves FIFO order among messages
//! that become ready on the same cycle, which keeps the whole simulation
//! deterministic.

use std::collections::BinaryHeap;

use crate::types::Cycle;

/// Heap entry: ordered by ready cycle, then by insertion sequence so that
/// same-cycle messages pop in FIFO order.
#[derive(Clone)]
struct Entry<T> {
    ready_at: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (earliest) pops first.
        (other.ready_at, other.seq).cmp(&(self.ready_at, self.seq))
    }
}

/// A queue whose items become visible only once the simulation clock reaches
/// their ready cycle.
///
/// ```
/// use dx100_common::DelayQueue;
///
/// let mut q = DelayQueue::new();
/// q.push_at(10, "a");
/// q.push_at(5, "b");
/// assert_eq!(q.pop_ready(4), None);
/// assert_eq!(q.pop_ready(5), Some("b"));
/// assert_eq!(q.pop_ready(5), None);
/// assert_eq!(q.pop_ready(100), Some("a"));
/// ```
#[derive(Clone)]
pub struct DelayQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` to become ready at absolute cycle `ready_at`.
    pub fn push_at(&mut self, ready_at: Cycle, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            ready_at,
            seq,
            item,
        });
    }

    /// Pops the oldest item whose ready cycle is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.ready_at <= now) {
            Some(self.heap.pop().unwrap().item)
        } else {
            None
        }
    }

    /// Cycle at which the next item becomes ready, if the queue is non-empty.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.ready_at)
    }

    /// Number of queued items (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for DelayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayQueue")
            .field("len", &self.heap.len())
            .field("next_ready_at", &self.next_ready_at())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_cycles() {
        let mut q = DelayQueue::new();
        q.push_at(3, 1);
        q.push_at(3, 2);
        q.push_at(3, 3);
        assert_eq!(q.pop_ready(3), Some(1));
        assert_eq!(q.pop_ready(3), Some(2));
        assert_eq!(q.pop_ready(3), Some(3));
        assert_eq!(q.pop_ready(3), None);
    }

    #[test]
    fn respects_ready_time() {
        let mut q = DelayQueue::new();
        q.push_at(10, "x");
        assert!(q.pop_ready(9).is_none());
        assert_eq!(q.next_ready_at(), Some(10));
        assert_eq!(q.pop_ready(10), Some("x"));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_order() {
        let mut q = DelayQueue::new();
        q.push_at(5, "late");
        q.push_at(1, "early");
        q.push_at(3, "mid");
        assert_eq!(q.pop_ready(100), Some("early"));
        assert_eq!(q.pop_ready(100), Some("mid"));
        assert_eq!(q.pop_ready(100), Some("late"));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = DelayQueue::new();
        assert!(q.is_empty());
        q.push_at(1, ());
        q.push_at(2, ());
        assert_eq!(q.len(), 2);
        let _ = q.pop_ready(5);
        assert_eq!(q.len(), 1);
    }
}
