//! Simulator state checkpointing.
//!
//! A [`Checkpoint`] snapshot captures everything a timing component needs to
//! resume exactly where it left off: restoring a saved state into a freshly
//! constructed component and continuing must produce the same statistics and
//! trace events as a run that was never interrupted (the sampling layer's
//! parallel replay workers rely on this, and property tests in each
//! component crate enforce it).
//!
//! States must be [`Send`] so one saved checkpoint can be restored
//! concurrently by many replay threads; `restore` takes the state by
//! reference for the same reason.

/// Why a component could not be checkpointed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The component holds a lazy op generator that does not implement
    /// cloning (see `OpStream::try_clone` in `dx100-cpu`).
    UnclonableStream,
    /// Anything else, with a human-readable reason.
    Other(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::UnclonableStream => {
                write!(f, "component holds an op stream that cannot be cloned")
            }
            CheckpointError::Other(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Snapshot/restore of a component's complete simulation state.
pub trait Checkpoint {
    /// The saved state. `Send + Sync` so one checkpoint behind an `Arc`
    /// can be restored concurrently from many replay threads; `'static` so
    /// it outlives the component it came from.
    type State: Send + Sync + 'static;

    /// Captures the current state.
    fn save(&self) -> Result<Self::State, CheckpointError>;

    /// Overwrites this component's state with `state`. The component must
    /// have been built with an equivalent configuration.
    fn restore(&mut self, state: &Self::State);
}
