//! Worker pools shared by every parallel driver in the workspace.
//!
//! Two shapes:
//!
//! * [`run_parallel`] — a *scoped batch*: all tasks known up front,
//!   numbered at submission; workers pull them from a shared queue in
//!   that order and write each result into a slot indexed by task id, so
//!   the returned vector is in *task order* for any worker count — the
//!   foundation of the bench harness's "bit-identical at any `--threads`"
//!   guarantee. Only scheduling (which worker runs which task, and when)
//!   varies with the thread count; every observable output is fixed.
//!   Used by sampled-replay windows and full-fidelity figure sweeps.
//! * [`WorkerPool`] — a *long-lived* pool for open-ended work: tasks
//!   arrive over time (the `dx100-serve` job scheduler submits one per
//!   accepted simulation job) and run FIFO on a fixed set of worker
//!   threads. Results travel through whatever channel the task captures;
//!   the pool only guarantees execution. [`WorkerPool::shutdown`] drains:
//!   queued and in-flight tasks finish before the workers exit, so a
//!   graceful daemon shutdown never abandons an accepted job.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A boxed one-shot task submitted to [`run_parallel`].
pub type PoolTask<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Runs `tasks` on `threads` worker threads, returning results in task
/// order. Results are written into pre-sized slots indexed by task id, so
/// the output is identical for any thread count.
///
/// `threads` is clamped to `1..=tasks.len()`; surplus workers would only
/// contend on the queue. Panics in a task propagate: the scope join
/// re-raises the worker's panic, so a poisoned run never returns partial
/// results.
pub fn run_parallel<'a, T: Send>(tasks: Vec<PoolTask<'a, T>>, threads: usize) -> Vec<T> {
    let n = tasks.len();
    let threads = threads.clamp(1, n.max(1));
    let queue: Mutex<VecDeque<(usize, PoolTask<'a, T>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((i, task)) => {
                        let r = task();
                        *slots[i].lock().unwrap() = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("worker completed every task")
        })
        .collect()
}

/// A task submitted to a [`WorkerPool`]; any result is communicated
/// through state the closure captures.
pub type QueueTask = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signaled on submission and on shutdown.
    work: Condvar,
}

struct PoolQueue {
    tasks: VecDeque<QueueTask>,
    draining: bool,
}

/// A long-lived FIFO worker pool with graceful drain (see module docs).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Starts `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                draining: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dx100-pool-{i}"))
                    .spawn(move || loop {
                        let task = {
                            let mut q = shared.queue.lock().unwrap();
                            loop {
                                if let Some(t) = q.tasks.pop_front() {
                                    break t;
                                }
                                if q.draining {
                                    return;
                                }
                                q = shared.work.wait(q).unwrap();
                            }
                        };
                        task();
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Enqueues a task; it runs FIFO on the next free worker.
    ///
    /// # Panics
    /// Panics if called after [`shutdown`](Self::shutdown) began (the pool
    /// is consumed by value there, so this needs a leaked handle).
    pub fn submit(&self, task: QueueTask) {
        let mut q = self.shared.queue.lock().unwrap();
        assert!(!q.draining, "submit to a draining WorkerPool");
        q.tasks.push_back(task);
        drop(q);
        self.shared.work.notify_one();
    }

    /// Tasks waiting for a worker (excludes in-flight ones).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().unwrap().tasks.len()
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Graceful drain: stops accepting work, lets every queued and
    /// in-flight task finish, and joins the workers. A worker panic
    /// propagates after the others have been joined.
    pub fn shutdown(mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.draining = true;
        }
        self.shared.work.notify_all();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for w in self.workers.drain(..) {
            if let Err(p) = w.join() {
                panic = Some(p);
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn preserves_task_order_for_any_thread_count() {
        let make = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..37usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect()
        };
        let expect: Vec<usize> = (0..37usize).map(|i| i * i).collect();
        for threads in [1, 3, 8, 64] {
            assert_eq!(run_parallel(make(), threads), expect);
        }
    }

    #[test]
    fn preserves_order_under_adversarial_durations() {
        // Early tasks sleep longest, so under any concurrency > 1 the
        // *completion* order inverts the submission order; the returned
        // vector must still be in submission order.
        let n = 16usize;
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..n)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis((n - i) as u64 * 3));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(run_parallel(tasks, 8), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_oversubscribed_inputs() {
        let empty: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_parallel(empty, 4).is_empty());
        let one: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(run_parallel(one, 1000), vec![42]);
    }

    #[test]
    fn borrows_locals_across_the_scope() {
        // The 'a lifetime lets tasks capture references to caller state —
        // the sampled sweep borrows its prepared plans this way.
        let data: Vec<u64> = (0..10).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
            .iter()
            .map(|v| Box::new(move || v * 2) as Box<dyn FnOnce() -> u64 + Send + '_>)
            .collect();
        let doubled = run_parallel(tasks, 3);
        assert_eq!(doubled, (0..10).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_pool_runs_every_task() {
        let pool = WorkerPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn worker_pool_shutdown_drains_queued_and_in_flight_work() {
        // One worker, several slow tasks: shutdown is called while the
        // first is still running and the rest are queued — all must
        // complete before shutdown returns.
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(20));
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        std::thread::sleep(Duration::from_millis(5)); // first task in flight
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_pool_single_worker_is_fifo() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let order = Arc::clone(&order);
            pool.submit(Box::new(move || {
                order.lock().unwrap().push(i);
            }));
        }
        pool.shutdown();
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_pool_idle_shutdown_and_zero_threads_clamp() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.queued(), 0);
        pool.shutdown(); // no work: workers wake on drain and exit
    }
}
