//! A deterministic scoped worker pool shared by every parallel driver in
//! the workspace (sampled-replay windows, full-fidelity figure sweeps).
//!
//! Tasks are numbered at submission; workers pull them from a shared queue
//! in that order and write each result into a slot indexed by task id, so
//! the returned vector is in *task order* for any worker count — the
//! foundation of the bench harness's "bit-identical at any `--threads`"
//! guarantee. Only scheduling (which worker runs which task, and when)
//! varies with the thread count; every observable output is fixed.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A boxed one-shot task submitted to [`run_parallel`].
pub type PoolTask<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Runs `tasks` on `threads` worker threads, returning results in task
/// order. Results are written into pre-sized slots indexed by task id, so
/// the output is identical for any thread count.
///
/// `threads` is clamped to `1..=tasks.len()`; surplus workers would only
/// contend on the queue. Panics in a task propagate: the scope join
/// re-raises the worker's panic, so a poisoned run never returns partial
/// results.
pub fn run_parallel<'a, T: Send>(tasks: Vec<PoolTask<'a, T>>, threads: usize) -> Vec<T> {
    let n = tasks.len();
    let threads = threads.clamp(1, n.max(1));
    let queue: Mutex<VecDeque<(usize, PoolTask<'a, T>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((i, task)) => {
                        let r = task();
                        *slots[i].lock().unwrap() = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("worker completed every task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn preserves_task_order_for_any_thread_count() {
        let make = || -> Vec<Box<dyn FnOnce() -> usize + Send>> {
            (0..37usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect()
        };
        let expect: Vec<usize> = (0..37usize).map(|i| i * i).collect();
        for threads in [1, 3, 8, 64] {
            assert_eq!(run_parallel(make(), threads), expect);
        }
    }

    #[test]
    fn preserves_order_under_adversarial_durations() {
        // Early tasks sleep longest, so under any concurrency > 1 the
        // *completion* order inverts the submission order; the returned
        // vector must still be in submission order.
        let n = 16usize;
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..n)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis((n - i) as u64 * 3));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(run_parallel(tasks, 8), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_oversubscribed_inputs() {
        let empty: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_parallel(empty, 4).is_empty());
        let one: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 42)];
        assert_eq!(run_parallel(one, 1000), vec![42]);
    }

    #[test]
    fn borrows_locals_across_the_scope() {
        // The 'a lifetime lets tasks capture references to caller state —
        // the sampled sweep borrows its prepared plans this way.
        let data: Vec<u64> = (0..10).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
            .iter()
            .map(|v| Box::new(move || v * 2) as Box<dyn FnOnce() -> u64 + Send + '_>)
            .collect();
        let doubled = run_parallel(tasks, 3);
        assert_eq!(doubled, (0..10).map(|v| v * 2).collect::<Vec<_>>());
    }
}
