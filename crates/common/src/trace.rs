//! Event tracing for the simulator: timestamped spans and instants,
//! exported as Chrome trace-event JSON loadable in Perfetto.
//!
//! The layer is built to cost nothing when disabled: components hold an
//! `Option<TraceHandle>` and every hook is a single `if let Some(..)` —
//! no event is constructed, formatted, or allocated unless a sink exists.
//!
//! One [`TraceBuffer`] collects the events of one simulated run. Components
//! record through [`TraceHandle`]s, which are cheap clones sharing the
//! buffer; each handle is bound to a *track* (a named row in the viewer —
//! a DRAM channel, a cache's MSHR file, a core, a DX100 engine) and to a
//! timestamp scale, which converts component-local clocks (e.g. DRAM ticks
//! at half the CPU rate) onto the shared CPU-cycle timeline.
//!
//! Event taxonomy (category → events):
//!
//! | category | events | kind |
//! |---|---|---|
//! | `dram` | `ACT`/`PRE` per bank | instant |
//! | `dram` | `RD`/`WR` per bank (CAS issue → end of data transfer), `REF` | span |
//! | `mshr` | one span per miss line, allocation → fill | span |
//! | `dx100` | `fill`, `issue`, `drain` tile-phase activity per engine | span |
//! | `stall` | `rob_full`, `lq_full`, `sq_full`, `fence` per core | span |
//! | `profile` | epoch-boundary utilization samples (`--profile`) | counter |

use std::sync::{Arc, Mutex};

use crate::Cycle;

/// Identifies a named track (viewer row) within a buffer.
pub type TrackId = u32;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval; `ts` is the start, `dur` its length (CPU cycles).
    Span {
        /// Duration in CPU cycles.
        dur: u64,
    },
    /// A point in time.
    Instant,
    /// A counter sample (`"ph":"C"` in Chrome trace format): the viewer
    /// draws one stepped utilization curve per counter name.
    Counter {
        /// Sampled value.
        value: u64,
    },
}

/// One recorded event, timestamped in CPU cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name shown in the viewer (e.g. `RD b3`).
    pub name: String,
    /// Taxonomy category: `dram`, `mshr`, `dx100`, or `stall`.
    pub cat: &'static str,
    /// Start time in CPU cycles.
    pub ts: u64,
    /// Span or instant.
    pub kind: EventKind,
    /// Track the event belongs to.
    pub track: TrackId,
}

/// All events of one simulated run, plus its track registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    tracks: Vec<String>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events; later events are counted
    /// as dropped rather than grown without bound.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            tracks: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    fn add_track(&mut self, name: String) -> TrackId {
        self.tracks.push(name);
        (self.tracks.len() - 1) as TrackId
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Registered track names, indexed by [`TrackId`].
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A cheap, cloneable recorder bound to one track of a shared buffer.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    buf: Arc<Mutex<TraceBuffer>>,
    ts_scale: u64,
    track: TrackId,
}

impl TraceHandle {
    /// Creates the buffer and its root handle (track `sim`, scale 1).
    pub fn root(capacity: usize) -> TraceHandle {
        let mut buf = TraceBuffer::new(capacity);
        let track = buf.add_track("sim".to_string());
        TraceHandle {
            buf: Arc::new(Mutex::new(buf)),
            ts_scale: 1,
            track,
        }
    }

    /// A handle recording onto a newly registered track, same scale.
    pub fn track(&self, name: impl Into<String>) -> TraceHandle {
        let track = self.buf.lock().unwrap().add_track(name.into());
        TraceHandle {
            buf: Arc::clone(&self.buf),
            ts_scale: self.ts_scale,
            track,
        }
    }

    /// A handle whose timestamps are multiplied by `factor` — for
    /// components whose local clock runs slower than the CPU clock.
    pub fn scaled(&self, factor: u64) -> TraceHandle {
        TraceHandle {
            buf: Arc::clone(&self.buf),
            ts_scale: self.ts_scale * factor.max(1),
            track: self.track,
        }
    }

    /// Records a point event at component-local time `ts`.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>, ts: Cycle) {
        self.buf.lock().unwrap().push(TraceEvent {
            name: name.into(),
            cat,
            ts: ts * self.ts_scale,
            kind: EventKind::Instant,
            track: self.track,
        });
    }

    /// Records a counter sample at component-local time `ts` (drawn as a
    /// stepped curve named `name` in the viewer).
    pub fn counter(&self, cat: &'static str, name: impl Into<String>, ts: Cycle, value: u64) {
        self.buf.lock().unwrap().push(TraceEvent {
            name: name.into(),
            cat,
            ts: ts * self.ts_scale,
            kind: EventKind::Counter { value },
            track: self.track,
        });
    }

    /// Records an interval `[start, end)` in component-local time.
    pub fn span(&self, cat: &'static str, name: impl Into<String>, start: Cycle, end: Cycle) {
        let start_scaled = start * self.ts_scale;
        let end_scaled = end.max(start) * self.ts_scale;
        self.buf.lock().unwrap().push(TraceEvent {
            name: name.into(),
            cat,
            ts: start_scaled,
            kind: EventKind::Span {
                dur: end_scaled - start_scaled,
            },
            track: self.track,
        });
    }

    /// Clones the collected buffer out (for attaching to run statistics).
    pub fn snapshot(&self) -> TraceBuffer {
        self.buf.lock().unwrap().clone()
    }
}

/// Tracks a level-triggered activity and emits one span per contiguous
/// active stretch (rising edge starts it, falling edge records it).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanTracker {
    since: Option<Cycle>,
}

impl SpanTracker {
    /// Feeds this cycle's activity level.
    pub fn update(
        &mut self,
        active: bool,
        now: Cycle,
        handle: &TraceHandle,
        cat: &'static str,
        name: &str,
    ) {
        match (self.since, active) {
            (None, true) => self.since = Some(now),
            (Some(start), false) => {
                handle.span(cat, name, start, now);
                self.since = None;
            }
            _ => {}
        }
    }

    /// Closes any open span at end of run.
    pub fn finish(&mut self, now: Cycle, handle: &TraceHandle, cat: &'static str, name: &str) {
        if let Some(start) = self.since.take() {
            handle.span(cat, name, start, now.max(start + 1));
        }
    }
}

/// Serializes runs as Chrome trace-event JSON (the "JSON object format"):
/// each `(label, buffer)` pair becomes one process whose tracks are
/// threads. Events are sorted by timestamp, so the output's `ts` sequence
/// is monotonically non-decreasing. Load the file in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn chrome_trace_json(runs: &[(String, &TraceBuffer)]) -> String {
    use crate::json::Json;
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, piece: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&piece);
    };

    // Metadata first: process and thread names.
    for (run_idx, (label, buf)) in runs.iter().enumerate() {
        let pid = run_idx + 1;
        emit(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":{}}}}}",
                Json::from(label.as_str())
            ),
        );
        for (tid, track) in buf.tracks().iter().enumerate() {
            emit(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    Json::from(track.as_str())
                ),
            );
        }
    }

    // Data events, globally sorted by timestamp.
    let mut indexed: Vec<(u64, usize, &TraceEvent)> = Vec::new();
    for (run_idx, (_, buf)) in runs.iter().enumerate() {
        for ev in buf.events() {
            indexed.push((ev.ts, run_idx + 1, ev));
        }
    }
    indexed.sort_by_key(|(ts, _, _)| *ts);
    for (_, pid, ev) in indexed {
        let name = Json::from(ev.name.as_str()).to_string();
        match ev.kind {
            EventKind::Span { dur } => emit(
                &mut out,
                format!(
                    "{{\"name\":{name},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{pid},\"tid\":{}}}",
                    ev.cat,
                    ev.ts,
                    dur.max(1),
                    ev.track
                ),
            ),
            EventKind::Instant => emit(
                &mut out,
                format!(
                    "{{\"name\":{name},\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{}}}",
                    ev.cat, ev.ts, ev.track
                ),
            ),
            EventKind::Counter { value } => emit(
                &mut out,
                format!(
                    "{{\"name\":{name},\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":{pid},\"tid\":{},\"args\":{{\"value\":{value}}}}}",
                    ev.cat, ev.ts, ev.track
                ),
            ),
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn records_and_scales() {
        let root = TraceHandle::root(16);
        let dram = root.scaled(2).track("ch0");
        dram.instant("dram", "ACT", 10);
        dram.span("dram", "RD", 10, 14);
        let buf = root.snapshot();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.events()[0].ts, 20, "DRAM ticks scale onto CPU cycles");
        assert!(matches!(buf.events()[1].kind, EventKind::Span { dur: 8 }));
        assert_eq!(buf.tracks(), &["sim".to_string(), "ch0".to_string()]);
    }

    #[test]
    fn capacity_drops_and_counts() {
        let root = TraceHandle::root(2);
        for i in 0..5 {
            root.instant("dram", "x", i);
        }
        let buf = root.snapshot();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
    }

    #[test]
    fn span_tracker_merges_contiguous_activity() {
        let root = TraceHandle::root(16);
        let mut tr = SpanTracker::default();
        for now in 0..10 {
            tr.update((2..6).contains(&now), now, &root, "dx100", "fill");
        }
        tr.finish(10, &root, "dx100", "fill");
        let buf = root.snapshot();
        assert_eq!(buf.len(), 1, "one span for cycles 2..6");
        assert_eq!(buf.events()[0].ts, 2);
        assert!(matches!(buf.events()[0].kind, EventKind::Span { dur: 4 }));
    }

    #[test]
    fn counter_events_export_as_ph_c() {
        let root = TraceHandle::root(16);
        root.counter("profile", "dram_qdepth", 40, 14);
        let buf = root.snapshot();
        assert!(matches!(
            buf.events()[0].kind,
            EventKind::Counter { value: 14 }
        ));
        let text = chrome_trace_json(&[("r".to_string(), &buf)]);
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let c = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .expect("counter event present");
        assert_eq!(c.get("ts").and_then(Json::as_f64), Some(40.0));
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(14.0)
        );
    }

    #[test]
    fn chrome_export_is_valid_and_sorted() {
        let root = TraceHandle::root(64);
        let a = root.track("a");
        a.span("dram", "RD", 7, 9);
        a.instant("dram", "ACT", 3);
        root.instant("mshr", "m", 5);
        let buf = root.snapshot();
        let text = chrome_trace_json(&[("run \"one\"".to_string(), &buf)]);
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 metadata (process + 2 threads) + 3 data events.
        assert_eq!(events.len(), 6);
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ts, vec![3.0, 5.0, 7.0]);
    }
}
