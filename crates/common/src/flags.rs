//! A board of boolean completion flags used for core ↔ accelerator and
//! core ↔ core synchronization.
//!
//! In the paper, cores poll a scratchpad tile's *ready bit* until DX100 sets
//! it (the `wait` API, Section 4.1). The flag board is the simulator's
//! equivalent: workload drivers allocate a flag per synchronization point,
//! cores block on it with a `WaitFlag` op, and DX100 (or another core) sets
//! it when the producing instruction retires.

/// Identifier of one flag on a [`FlagBoard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlagId(pub usize);

/// A growable set of boolean flags.
///
/// ```
/// use dx100_common::flags::FlagBoard;
/// let mut board = FlagBoard::new();
/// let f = board.alloc();
/// assert!(!board.get(f));
/// board.set(f);
/// assert!(board.get(f));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlagBoard {
    flags: Vec<bool>,
}

impl FlagBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new flag, initially clear.
    pub fn alloc(&mut self) -> FlagId {
        self.flags.push(false);
        FlagId(self.flags.len() - 1)
    }

    /// Reads a flag.
    ///
    /// # Panics
    /// Panics if `id` was not allocated on this board.
    pub fn get(&self, id: FlagId) -> bool {
        self.flags[id.0]
    }

    /// Sets a flag.
    ///
    /// # Panics
    /// Panics if `id` was not allocated on this board.
    pub fn set(&mut self, id: FlagId) {
        self.flags[id.0] = true;
    }

    /// Clears a flag (tile reuse across loop iterations).
    ///
    /// # Panics
    /// Panics if `id` was not allocated on this board.
    pub fn clear(&mut self, id: FlagId) {
        self.flags[id.0] = false;
    }

    /// Number of allocated flags.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether no flags have been allocated.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_set_clear_round_trip() {
        let mut b = FlagBoard::new();
        assert!(b.is_empty());
        let a = b.alloc();
        let c = b.alloc();
        assert_eq!(b.len(), 2);
        b.set(c);
        assert!(!b.get(a));
        assert!(b.get(c));
        b.clear(c);
        assert!(!b.get(c));
    }
}
