//! Flags, in both senses the workspace uses the word:
//!
//! * [`FlagBoard`] — boolean completion flags for core ↔ accelerator and
//!   core ↔ core synchronization. In the paper, cores poll a scratchpad
//!   tile's *ready bit* until DX100 sets it (the `wait` API, Section 4.1).
//!   The flag board is the simulator's equivalent: workload drivers
//!   allocate a flag per synchronization point, cores block on it with a
//!   `WaitFlag` op, and DX100 (or another core) sets it when the producing
//!   instruction retires.
//! * [`ServeOpts`] — the shared command-line options of the serving layer
//!   (`--addr` / `--cache-dir` / `--max-jobs` / `--cache-cap-mb`), parsed
//!   with the workspace's strict error discipline: unknown flags,
//!   duplicate flags, and missing values are hard errors, because a typo'd
//!   option silently falling back to a default is worse on a long-running
//!   daemon than on a one-shot figure binary.

use std::path::PathBuf;

/// Identifier of one flag on a [`FlagBoard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlagId(pub usize);

/// A growable set of boolean flags.
///
/// ```
/// use dx100_common::flags::FlagBoard;
/// let mut board = FlagBoard::new();
/// let f = board.alloc();
/// assert!(!board.get(f));
/// board.set(f);
/// assert!(board.get(f));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlagBoard {
    flags: Vec<bool>,
}

impl FlagBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new flag, initially clear.
    pub fn alloc(&mut self) -> FlagId {
        self.flags.push(false);
        FlagId(self.flags.len() - 1)
    }

    /// Reads a flag.
    ///
    /// # Panics
    /// Panics if `id` was not allocated on this board.
    pub fn get(&self, id: FlagId) -> bool {
        self.flags[id.0]
    }

    /// Sets a flag.
    ///
    /// # Panics
    /// Panics if `id` was not allocated on this board.
    pub fn set(&mut self, id: FlagId) {
        self.flags[id.0] = true;
    }

    /// Clears a flag (tile reuse across loop iterations).
    ///
    /// # Panics
    /// Panics if `id` was not allocated on this board.
    pub fn clear(&mut self, id: FlagId) {
        self.flags[id.0] = false;
    }

    /// Number of allocated flags.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether no flags have been allocated.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

/// Command-line options shared by everything that hosts the simulation
/// service (the `serve` daemon, CI smoke harnesses).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Listen address (`--addr`, default `127.0.0.1:8100`). Port 0 asks
    /// the OS for an ephemeral port (tests).
    pub addr: String,
    /// Result-cache directory (`--cache-dir`, default `dx100-cache`);
    /// created on startup if absent.
    pub cache_dir: PathBuf,
    /// Simulation worker threads (`--max-jobs`, default: available
    /// parallelism). Bounds how many jobs simulate concurrently; further
    /// submissions queue.
    pub max_jobs: usize,
    /// Result-cache size cap in MiB (`--cache-cap-mb`, default 1024);
    /// least-recently-used entries (by file mtime) are evicted past it.
    pub cache_cap_mb: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:8100".to_string(),
            cache_dir: PathBuf::from("dx100-cache"),
            max_jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_cap_mb: 1024,
        }
    }
}

impl ServeOpts {
    /// One-line usage string for error paths.
    pub const USAGE: &'static str =
        "usage: [--addr <host:port>] [--cache-dir <path>] [--max-jobs <n>] [--cache-cap-mb <n>]";

    /// Parses the process arguments; prints the problem and exits
    /// non-zero on anything malformed.
    pub fn parse() -> ServeOpts {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Fallible parser over an explicit argument list (testable).
    ///
    /// Strictness contract: unknown flags, repeated flags, missing values,
    /// and unparsable values are all errors naming the offending flag.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<ServeOpts, String> {
        let mut out = ServeOpts::default();
        let mut seen: Vec<&'static str> = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |flag: &'static str| -> Result<String, String> {
                if seen.contains(&flag) {
                    return Err(format!("duplicate flag {flag}"));
                }
                seen.push(flag);
                it.next().ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--addr" => {
                    let v = take("--addr")?;
                    if v.is_empty() || !v.contains(':') {
                        return Err(format!("invalid --addr value `{v}` (want host:port)"));
                    }
                    out.addr = v;
                }
                "--cache-dir" => {
                    let v = take("--cache-dir")?;
                    if v.is_empty() {
                        return Err("invalid --cache-dir value `` (empty path)".to_string());
                    }
                    out.cache_dir = PathBuf::from(v);
                }
                "--max-jobs" => {
                    let v = take("--max-jobs")?;
                    out.max_jobs = v
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("invalid --max-jobs value `{v}`"))?;
                }
                "--cache-cap-mb" => {
                    let v = take("--cache-cap-mb")?;
                    out.cache_cap_mb = v
                        .parse::<u64>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| format!("invalid --cache-cap-mb value `{v}`"))?;
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Cache cap in bytes.
    pub fn cache_cap_bytes(&self) -> u64 {
        self.cache_cap_mb.saturating_mul(1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_set_clear_round_trip() {
        let mut b = FlagBoard::new();
        assert!(b.is_empty());
        let a = b.alloc();
        let c = b.alloc();
        assert_eq!(b.len(), 2);
        b.set(c);
        assert!(!b.get(a));
        assert!(b.get(c));
        b.clear(c);
        assert!(!b.get(c));
    }

    fn parse(args: &[&str]) -> Result<ServeOpts, String> {
        ServeOpts::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn serve_opts_parse_all_flags() {
        let opts = parse(&[
            "--addr",
            "0.0.0.0:9000",
            "--cache-dir",
            "/tmp/c",
            "--max-jobs",
            "3",
            "--cache-cap-mb",
            "64",
        ])
        .unwrap();
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.cache_dir, PathBuf::from("/tmp/c"));
        assert_eq!(opts.max_jobs, 3);
        assert_eq!(opts.cache_cap_mb, 64);
        assert_eq!(opts.cache_cap_bytes(), 64 * 1024 * 1024);
    }

    #[test]
    fn serve_opts_defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, ServeOpts::default());
        assert_eq!(opts.addr, "127.0.0.1:8100");
        assert!(opts.max_jobs >= 1);
    }

    #[test]
    fn serve_opts_rejects_duplicates() {
        let err = parse(&["--addr", "a:1", "--addr", "b:2"]).unwrap_err();
        assert!(err.contains("duplicate flag --addr"), "{err}");
        let err = parse(&["--max-jobs", "2", "--max-jobs", "4"]).unwrap_err();
        assert!(err.contains("duplicate flag --max-jobs"), "{err}");
    }

    #[test]
    fn serve_opts_rejects_missing_values() {
        for flag in ["--addr", "--cache-dir", "--max-jobs", "--cache-cap-mb"] {
            let err = parse(&[flag]).unwrap_err();
            assert!(err.contains("requires a value"), "{flag}: {err}");
            assert!(err.contains(flag), "{flag}: {err}");
        }
    }

    #[test]
    fn serve_opts_rejects_unknown_and_malformed() {
        assert!(parse(&["--port", "80"]).unwrap_err().contains("--port"));
        assert!(parse(&["serve"]).unwrap_err().contains("unknown"));
        assert!(parse(&["--addr", "noport"]).is_err());
        assert!(parse(&["--addr", ""]).is_err());
        assert!(parse(&["--cache-dir", ""]).is_err());
        assert!(parse(&["--max-jobs", "0"]).is_err());
        assert!(parse(&["--max-jobs", "lots"]).is_err());
        assert!(parse(&["--cache-cap-mb", "0"]).is_err());
        assert!(parse(&["--cache-cap-mb", "-5"]).is_err());
    }

    #[test]
    fn serve_opts_value_can_look_like_a_flag_value_error() {
        // `--max-jobs --addr` consumes `--addr` as the (invalid) value —
        // strictness means an error, not silently treating it as a flag.
        assert!(parse(&["--max-jobs", "--addr"]).is_err());
    }
}
