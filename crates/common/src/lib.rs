//! Shared primitives for the DX100 simulator workspace.
//!
//! This crate holds the vocabulary types that every other crate in the
//! reproduction speaks: simulation time ([`Cycle`]), physical/virtual
//! addresses ([`Addr`], [`LineAddr`]), the accelerator's data types and ALU
//! operations ([`DType`], [`AluOp`]) together with bit-exact value arithmetic
//! ([`value`]), a deterministic [`DelayQueue`] used to model fixed-latency
//! links, lightweight statistics helpers ([`stats`]), batch-exact
//! cycle-attribution primitives ([`profile`]), the deterministic
//! worker [`pool`] that parallel figure sweeps and sampled replay share,
//! the observability layer's event tracing ([`trace`]), its
//! dependency-free JSON value ([`json`]), and the stable content hash
//! ([`hash`]) the serving layer keys its result cache by.
//!
//! # Example
//!
//! ```
//! use dx100_common::{AluOp, DType, value};
//!
//! // 32-bit float addition performed on raw u64 lanes, exactly as the
//! // accelerator's Word Modifier would.
//! let a = value::from_f32(1.5);
//! let b = value::from_f32(2.25);
//! let sum = value::alu(AluOp::Add, DType::F32, a, b);
//! assert_eq!(value::to_f32(sum), 3.75);
//! ```

pub mod checkpoint;
pub mod flags;
pub mod hash;
pub mod json;
pub mod pool;
pub mod profile;
pub mod queue;
pub mod stats;
pub mod trace;
pub mod types;
pub mod value;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use profile::{Counter, OccAccum, Pow2Histogram};
pub use queue::DelayQueue;
pub use trace::{SpanTracker, TraceBuffer, TraceHandle};
pub use types::{
    Addr, AluOp, CoreId, Cycle, DType, LineAddr, ReqId, CACHE_LINE_BYTES, CACHE_LINE_SHIFT,
};
