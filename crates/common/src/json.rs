//! A minimal JSON value: build, serialize, parse.
//!
//! The workspace is dependency-free offline, so report serialization
//! (`--json`), Chrome trace export (`--trace`), and the schema tests that
//! pin both formats use this module instead of serde. Object key order is
//! preserved, making serialized output deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, serialized without a decimal point.
    Int(i128),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v as i128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i128)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v as i128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builds an object from `(key, value)` pairs, preserving order.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Serializes without whitespace (and provides `to_string`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Appends the serialized form to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view covering both `Int` and `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses JSON text (strict enough for round-tripping this module's
    /// own output and validating externally produced documents).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Serializes a float: non-finite becomes `null`; integral values keep a
/// trailing `.0` so the JSON type (number with fraction) is stable.
fn write_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{n:.1}");
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    } else {
        // Integer literals beyond i128 fall back to f64: large floats
        // serialize as plain digit strings (Display uses no exponent for
        // them), and the parser must accept its own serializer's output.
        text.parse::<i128>().map(Json::Int).or_else(|_| {
            text.parse::<f64>()
                .ok()
                .filter(|f| f.is_finite())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number `{text}`"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = obj([
            ("a", Json::from(1u64)),
            ("b", Json::from(2.5)),
            ("c", Json::from("x\"y\n")),
            ("d", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("e", Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_fraction_ints_do_not() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Int(2).to_string(), "2");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn oversized_integer_literals_parse_as_floats() {
        // f64::MAX serializes as a 309-digit plain integer string; it must
        // re-parse (as the float it is) rather than overflow i128.
        let s = Json::Num(f64::MAX).to_string();
        assert!(
            !s.contains(['e', '.']),
            "test premise: plain digits, got {s}"
        );
        assert_eq!(Json::parse(&s).unwrap(), Json::Num(f64::MAX));
        // And the fallback still rejects non-numbers.
        assert!(Json::parse("99999999999999999999999999999999999999999x").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"x": [1, 2.5, "s"]}"#).unwrap();
        let arr = v.get("x").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert!(v.get("y").is_none());
    }
}
