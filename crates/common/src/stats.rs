//! Lightweight statistics helpers shared by every timing component.

/// A running average of a quantity sampled once per cycle (e.g. request
/// buffer occupancy).
///
/// ```
/// use dx100_common::stats::RunningAverage;
/// let mut avg = RunningAverage::new();
/// avg.sample(2.0);
/// avg.sample(4.0);
/// assert_eq!(avg.mean(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningAverage {
    sum: f64,
    count: u64,
}

impl RunningAverage {
    /// Creates an empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn sample(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Adds the same sample `n` times in one step.
    ///
    /// Bit-identical to `n` repeated [`sample`](Self::sample) calls provided
    /// `v` and every previously recorded sample lie on a common dyadic grid
    /// (integers, or fractions with a power-of-two denominator) and the sum
    /// stays below 2^53 grid units — true for all occupancy counters in this
    /// workspace, which sample integer queue depths or k/2^m fractions.
    /// Cycle-skipping relies on this to credit idle spans without replaying
    /// each cycle.
    #[inline]
    pub fn sample_n(&mut self, v: f64, n: u64) {
        // Catch callers that would break the bit-exactness contract above:
        // `v * n` is only exact when `v` sits on a dyadic grid. m <= 32 is
        // far coarser than any counter in the workspace actually uses.
        debug_assert!(
            (v * (1u64 << 32) as f64).fract() == 0.0,
            "sample_n requires a dyadic-grid value (k/2^m, m <= 32), got {v}"
        );
        self.sum += v * n as f64;
        self.count += n;
    }

    /// Mean of all samples, or 0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples. With [`count`](Self::count) this lets epoch
    /// samplers compute the mean of an interval from two cumulative
    /// snapshots: `(sum2 - sum1) / (count2 - count1)`.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another average into this one, as if all samples had been
    /// recorded on a single counter.
    pub fn merge(&mut self, other: &RunningAverage) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Reassembles an average from its `(sum, count)` parts — the inverse of
    /// [`sum`](Self::sum)/[`count`](Self::count), used when reconstituting
    /// weighted statistics from sampled intervals.
    pub fn from_parts(sum: f64, count: u64) -> Self {
        RunningAverage { sum, count }
    }

    /// Folds `other` in with every sample weighted by `factor` (fractional
    /// counts are rounded). Scaling both sum and count leaves the mean
    /// intact while giving the interval `factor`× its measured weight.
    pub fn merge_scaled(&mut self, other: &RunningAverage, factor: f64) {
        self.sum += other.sum * factor;
        self.count += (other.count as f64 * factor).round() as u64;
    }
}

/// A hit/miss (or success/failure) ratio counter.
///
/// ```
/// use dx100_common::stats::Ratio;
/// let mut r = Ratio::new();
/// r.hit();
/// r.hit();
/// r.miss();
/// assert!((r.rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Ratio {
    hits: u64,
    misses: u64,
}

impl Ratio {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records `hit` as a boolean outcome.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hit()
        } else {
            self.miss()
        }
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Folds another counter into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Reassembles a counter from explicit hit/miss counts (weighted
    /// reconstitution of sampled intervals).
    pub fn from_parts(hits: u64, misses: u64) -> Self {
        Ratio { hits, misses }
    }

    /// Folds `other` in with both counts scaled by `factor` (rounded).
    pub fn merge_scaled(&mut self, other: &Ratio, factor: f64) {
        self.hits += (other.hits as f64 * factor).round() as u64;
        self.misses += (other.misses as f64 * factor).round() as u64;
    }

    /// Hit rate in `[0, 1]`; 0 if no events were recorded.
    pub fn rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Geometric mean of a slice of positive values, the aggregate the paper uses
/// for cross-workload speedups. Returns 0 for an empty slice.
///
/// ```
/// use dx100_common::stats::geomean;
/// assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

// ---------------------------------------------------------------------------
// Cumulative-counter interval diffing.
//
// Both the epoch time-series sampler (`dx100-sim::epoch`) and the sampled-
// simulation interval profiler (`dx100-sampling`) measure *intervals* by
// snapshotting monotonically growing cumulative counters at boundaries and
// diffing consecutive snapshots. The arithmetic lives here so the two
// agree exactly on edge cases (empty intervals, counter resets).
// ---------------------------------------------------------------------------

/// Interval delta of a cumulative counter. Saturates at zero so a counter
/// reset inside the interval (e.g. an ROI boundary) yields an empty delta
/// instead of wrapping.
#[inline]
pub fn interval_delta(cur: u64, prev: u64) -> u64 {
    cur.saturating_sub(prev)
}

/// Interval hit rate from cumulative hit/miss counters: the rate over just
/// the events that occurred inside the interval, or 0 if there were none.
pub fn interval_rate(hits: (u64, u64), misses: (u64, u64)) -> f64 {
    let h = interval_delta(hits.0, hits.1);
    let m = interval_delta(misses.0, misses.1);
    if h + m == 0 {
        0.0
    } else {
        h as f64 / (h + m) as f64
    }
}

/// Interval ratio of two cumulative counters (e.g. busy ticks / total
/// ticks), or 0 when the denominator did not advance.
pub fn interval_ratio(num: (u64, u64), den: (u64, u64)) -> f64 {
    let d = interval_delta(den.0, den.1);
    if d == 0 {
        0.0
    } else {
        interval_delta(num.0, num.1) as f64 / d as f64
    }
}

/// Interval mean of a cumulative [`RunningAverage`]'s `(sum, count)` pair:
/// the mean of just the samples recorded inside the interval.
pub fn interval_mean(sum: (f64, f64), count: (u64, u64)) -> f64 {
    let c = interval_delta(count.0, count.1);
    if c == 0 {
        0.0
    } else {
        (sum.0 - sum.1).max(0.0) / c as f64
    }
}

/// Interval events-per-kilo-instruction from cumulative event and
/// instruction counters (the MPKI shape).
pub fn interval_per_kilo(events: (u64, u64), instructions: (u64, u64)) -> f64 {
    let i = interval_delta(instructions.0, instructions.1);
    if i == 0 {
        0.0
    } else {
        interval_delta(events.0, events.1) as f64 * 1000.0 / i as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_average_basic() {
        let mut a = RunningAverage::new();
        assert_eq!(a.mean(), 0.0);
        a.sample(1.0);
        a.sample(3.0);
        a.sample(5.0);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn ratio_basic() {
        let mut r = Ratio::new();
        assert_eq!(r.rate(), 0.0);
        r.record(true);
        r.record(false);
        r.record(false);
        r.record(false);
        assert_eq!(r.hits(), 1);
        assert_eq!(r.misses(), 3);
        assert_eq!(r.rate(), 0.25);
    }

    #[test]
    fn geomean_matches_definition() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_definition() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    mod sample_n_bit_exactness {
        use super::*;
        use proptest::prelude::*;

        /// `sample_n(v, n)` must be bit-identical to `n` repeated
        /// `sample(v)` calls for grid-representable inputs — the contract
        /// batched skip-span crediting relies on. Exercised for integers
        /// and k/2^m fractions, interleaved with a prior history so the
        /// accumulated sum is nontrivial.
        fn assert_bit_identical(history: &[f64], v: f64, n: u64) {
            let mut batched = RunningAverage::new();
            let mut repeated = RunningAverage::new();
            for &h in history {
                batched.sample(h);
                repeated.sample(h);
            }
            batched.sample_n(v, n);
            for _ in 0..n {
                repeated.sample(v);
            }
            assert_eq!(batched.sum().to_bits(), repeated.sum().to_bits());
            assert_eq!(batched.count(), repeated.count());
        }

        proptest! {
            #[test]
            fn integers(
                history in proptest::collection::vec((-1000i64..1000).prop_map(|k| k as f64), 0..8),
                v in -1000i64..1000,
                n in 1u64..4096,
            ) {
                assert_bit_identical(&history, v as f64, n);
            }

            #[test]
            fn dyadic_fractions(
                history in proptest::collection::vec(
                    (-1000i64..1000, 0u32..20).prop_map(|(k, m)| k as f64 / (1u64 << m) as f64),
                    0..8,
                ),
                k in -1000i64..1000,
                m in 0u32..20,
                n in 1u64..4096,
            ) {
                assert_bit_identical(&history, k as f64 / (1u64 << m) as f64, n);
            }
        }
    }
}
