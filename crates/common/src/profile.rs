//! Low-overhead profiling primitives: monotonic counters, exact integer
//! occupancy accumulators, and power-of-two-bucketed histograms.
//!
//! These are the building blocks of the cycle-attribution profiler. Every
//! timed component keeps a small profile struct made of these types and
//! updates it once per tick (or once per elided span — see below), so the
//! per-cycle cost is a handful of integer adds.
//!
//! # Batch exactness
//!
//! The cycle-skip layer elides quiescent spans and later credits them in
//! one batch (`credit_idle_span`). For profile output to be bit-identical
//! with skipping on or off, every primitive here must satisfy the batch
//! identity used by that credit path:
//!
//! * [`OccAccum::add`]`(v, n)` ≡ n × `add(v, 1)`
//! * [`Pow2Histogram::record_n`]`(v, n)` ≡ n × `record(v)`
//!
//! Both hold exactly because all state is integer — there is no running
//! float mean to drift. (Contrast `stats::RunningAverage`, whose `sample_n`
//! needs a dyadic-grid argument for the same guarantee.)

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds one event.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter in.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

/// Exact integer occupancy accumulator: the sum of one sample per cycle,
/// plus the sample count and the peak value seen.
///
/// `add(v, n)` records `n` consecutive cycles at occupancy `v` in O(1),
/// which is what makes skip-span batch crediting exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccAccum {
    /// Σ value over all sampled cycles.
    pub sum: u64,
    /// Number of sampled cycles.
    pub cycles: u64,
    /// Maximum value ever sampled.
    pub peak: u64,
}

impl OccAccum {
    /// Records `n` cycles at occupancy `value`.
    #[inline]
    pub fn add(&mut self, value: u64, n: u64) {
        self.sum += value * n;
        self.cycles += n;
        if value > self.peak && n > 0 {
            self.peak = value;
        }
    }

    /// Mean occupancy over all sampled cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sum as f64 / self.cycles as f64
        }
    }

    /// Folds another accumulator in.
    pub fn merge(&mut self, other: &OccAccum) {
        self.sum += other.sum;
        self.cycles += other.cycles;
        self.peak = self.peak.max(other.peak);
    }
}

/// Number of buckets in a [`Pow2Histogram`]: one zero bucket plus one per
/// possible leading-one position of a u64.
pub const POW2_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram over u64 values.
///
/// Bucket 0 holds exactly the value 0; bucket *i* (1 ≤ *i* ≤ 64) holds
/// values in `[2^(i-1), 2^i)`. Recording and merging are pure integer
/// bucket-count additions, so `merge` is associative and commutative and
/// `record_n` is batch-exact.
#[derive(Clone, PartialEq, Eq)]
pub struct Pow2Histogram {
    counts: [u64; POW2_BUCKETS],
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Pow2Histogram {
            counts: [0; POW2_BUCKETS],
        }
    }
}

impl std::fmt::Debug for Pow2Histogram {
    /// Prints only the non-empty buckets as `upper_bound: count` pairs, so
    /// debug output (and debug-string equality tests) stay readable.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(
                self.nonzero_buckets()
                    .map(|(i, c)| (Self::bucket_upper_bound(i), c)),
            )
            .finish()
    }
}

impl Pow2Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The largest value bucket `i` can hold (`0` for bucket 0, else
    /// `2^i − 1`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` in O(1).
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.counts[Self::bucket_of(value)] += n;
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds another histogram in (elementwise bucket addition —
    /// associative and commutative).
    pub fn merge(&mut self, other: &Pow2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// `q` (in [0, 1]) of the total; 0 when the histogram is empty. With
    /// power-of-two buckets this is a conservative quantile: the true
    /// p-quantile is ≤ the returned bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(POW2_BUCKETS - 1)
    }

    /// Non-empty buckets as `(bucket index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Pow2Histogram::bucket_of(0), 0);
        assert_eq!(Pow2Histogram::bucket_of(1), 1);
        assert_eq!(Pow2Histogram::bucket_of(2), 2);
        assert_eq!(Pow2Histogram::bucket_of(3), 2);
        assert_eq!(Pow2Histogram::bucket_of(4), 3);
        assert_eq!(Pow2Histogram::bucket_of(u64::MAX), 64);
        // Every bucket's upper bound maps back to that bucket.
        for i in 0..POW2_BUCKETS {
            assert_eq!(
                Pow2Histogram::bucket_of(Pow2Histogram::bucket_upper_bound(i)),
                i
            );
        }
    }

    #[test]
    fn record_n_is_batch_exact() {
        let mut a = Pow2Histogram::new();
        let mut b = Pow2Histogram::new();
        for v in [0u64, 1, 5, 14, 1000] {
            a.record_n(v, 7);
            for _ in 0..7 {
                b.record(v);
            }
        }
        assert_eq!(a, b);
        assert_eq!(a.total(), 35);
    }

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let mut h = Pow2Histogram::new();
        for _ in 0..99 {
            h.record(3); // bucket [2, 3]
        }
        h.record(14); // bucket [8, 15]
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.99), 3);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(Pow2Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn occupancy_batch_identity() {
        let mut a = OccAccum::default();
        let mut b = OccAccum::default();
        a.add(6, 10);
        for _ in 0..10 {
            b.add(6, 1);
        }
        assert_eq!(a, b);
        assert_eq!(a.mean(), 6.0);
        assert_eq!(a.peak, 6);
        // add(_, 0) records nothing, including the peak.
        a.add(100, 0);
        assert_eq!(a.peak, 6);
        assert_eq!(a.cycles, 10);
    }

    use proptest::prelude::*;

    /// Any u64 (not just small values) via a bit-length-uniform strategy,
    /// so high buckets get exercised too.
    fn any_magnitude() -> impl Strategy<Value = u64> {
        use proptest::strategy::boxed;
        (0u32..=64).prop_flat_map(|bits| {
            if bits == 0 {
                boxed(Just(0u64))
            } else {
                let lo = 1u64 << (bits - 1);
                let hi = if bits == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                boxed(lo..=hi)
            }
        })
    }

    fn hist_of(values: &[u64]) -> Pow2Histogram {
        let mut h = Pow2Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// `bucket_of` places every value into the unique bucket whose
        /// range contains it: at most the bucket's upper bound, and
        /// strictly above the previous bucket's.
        #[test]
        fn bucket_of_respects_bucket_ranges(v in any_magnitude()) {
            let i = Pow2Histogram::bucket_of(v);
            prop_assert!(i < POW2_BUCKETS);
            prop_assert!(v <= Pow2Histogram::bucket_upper_bound(i));
            if i > 0 {
                prop_assert!(v > Pow2Histogram::bucket_upper_bound(i - 1));
            }
        }

        /// The batch identity the skip-span credit path relies on:
        /// `record_n(v, n)` is exactly `n` repeated `record(v)` calls.
        #[test]
        fn record_n_equals_n_records(v in any_magnitude(), n in 0u64..500) {
            let mut batch = Pow2Histogram::new();
            batch.record_n(v, n);
            let mut single = Pow2Histogram::new();
            for _ in 0..n {
                single.record(v);
            }
            prop_assert_eq!(batch, single);
        }

        /// Histogram merge is associative and commutative, and preserves
        /// the total observation count — so merging per-shard or
        /// per-channel histograms in any order gives one answer.
        #[test]
        fn histogram_merge_is_associative_and_commutative(
            a in proptest::collection::vec(any_magnitude(), 0..40),
            b in proptest::collection::vec(any_magnitude(), 0..40),
            c in proptest::collection::vec(any_magnitude(), 0..40),
        ) {
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            // (a ⊕ b) ⊕ c
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            // a ⊕ (b ⊕ c)
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // b ⊕ a  ==  a ⊕ b
            let mut ba = hb.clone();
            ba.merge(&ha);
            let mut ab = ha.clone();
            ab.merge(&hb);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(left.total(), (a.len() + b.len() + c.len()) as u64);
            // Merging equals recording the concatenation directly.
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &hist_of(&all));
        }

        /// `quantile` is a conservative bound: at least the true
        /// q-quantile of the recorded values, and monotone in q.
        #[test]
        fn quantile_bounds_true_quantile(
            values in proptest::collection::vec(any_magnitude(), 1..60),
            // The vendored proptest has no float ranges; draw percent points.
            q_pct in 0u64..=100,
        ) {
            let q = q_pct as f64 / 100.0;
            let h = hist_of(&values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            prop_assert!(h.quantile(q) >= sorted[rank - 1]);
            prop_assert!(h.quantile(q) <= h.quantile(1.0));
        }

        /// `OccAccum` batch identity and merge consistency: `add(v, n)`
        /// matches n unit adds, and merging shards matches accumulating
        /// the union.
        #[test]
        fn occ_accum_batch_and_merge(
            // Occupancies are queue depths, not magnitudes: keep `Σ v·n`
            // far from u64 overflow (`add` uses unchecked arithmetic).
            samples in proptest::collection::vec((0u64..1 << 32, 0u64..20), 0..30),
            split in 0usize..30,
        ) {
            let mut batch = OccAccum::default();
            let mut single = OccAccum::default();
            for &(v, n) in &samples {
                batch.add(v, n);
                for _ in 0..n {
                    single.add(v, 1);
                }
            }
            prop_assert_eq!(batch, single);

            let split = split.min(samples.len());
            let (mut lo, mut hi) = (OccAccum::default(), OccAccum::default());
            for &(v, n) in &samples[..split] {
                lo.add(v, n);
            }
            for &(v, n) in &samples[split..] {
                hi.add(v, n);
            }
            lo.merge(&hi);
            prop_assert_eq!(lo, batch);
        }
    }

    #[test]
    fn counter_and_merge() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        let mut d = Counter(10);
        d.merge(&c);
        assert_eq!(d.get(), 15);

        let mut x = OccAccum::default();
        x.add(2, 3);
        let mut y = OccAccum::default();
        y.add(8, 1);
        x.merge(&y);
        assert_eq!(x.sum, 14);
        assert_eq!(x.cycles, 4);
        assert_eq!(x.peak, 8);
    }
}
