//! Bit-exact value arithmetic over raw `u64` lanes.
//!
//! Scratchpad tiles, ALU lanes, and the Word Modifier all operate on values
//! stored as `u64` bit patterns whose interpretation is given by a [`DType`].
//! This module centralizes that arithmetic so the functional model, the timed
//! model, and the compiler interpreter cannot drift apart.

use crate::types::{AluOp, DType};

/// Reinterpret an `f32` as a value lane (upper 32 bits zero).
#[inline]
pub fn from_f32(v: f32) -> u64 {
    v.to_bits() as u64
}

/// Reinterpret a value lane as an `f32` (lower 32 bits).
#[inline]
pub fn to_f32(v: u64) -> f32 {
    f32::from_bits(v as u32)
}

/// Reinterpret an `f64` as a value lane.
#[inline]
pub fn from_f64(v: f64) -> u64 {
    v.to_bits()
}

/// Reinterpret a value lane as an `f64`.
#[inline]
pub fn to_f64(v: u64) -> f64 {
    f64::from_bits(v)
}

/// Reinterpret an `i32` as a value lane (sign bits truncated to 32).
#[inline]
pub fn from_i32(v: i32) -> u64 {
    v as u32 as u64
}

/// Reinterpret a value lane as an `i32`.
#[inline]
pub fn to_i32(v: u64) -> i32 {
    v as u32 as i32
}

/// Reinterpret an `i64` as a value lane.
#[inline]
pub fn from_i64(v: i64) -> u64 {
    v as u64
}

/// Reinterpret a value lane as an `i64`.
#[inline]
pub fn to_i64(v: u64) -> i64 {
    v as i64
}

/// Truncate a lane to the width of `dtype` (upper bits of 32-bit types are
/// cleared, exactly as a 4-byte scratchpad word would store them).
#[inline]
pub fn truncate(dtype: DType, v: u64) -> u64 {
    if dtype.size_bytes() == 4 {
        v & 0xffff_ffff
    } else {
        v
    }
}

/// Read a value of `dtype` from a little-endian byte buffer at `offset`.
///
/// # Panics
/// Panics if `offset + dtype.size_bytes()` exceeds `buf.len()`.
#[inline]
pub fn read_le(dtype: DType, buf: &[u8], offset: usize) -> u64 {
    match dtype.size_bytes() {
        4 => u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap()) as u64,
        8 => u64::from_le_bytes(buf[offset..offset + 8].try_into().unwrap()),
        _ => unreachable!(),
    }
}

/// Write a value of `dtype` to a little-endian byte buffer at `offset`.
///
/// # Panics
/// Panics if `offset + dtype.size_bytes()` exceeds `buf.len()`.
#[inline]
pub fn write_le(dtype: DType, buf: &mut [u8], offset: usize, v: u64) {
    match dtype.size_bytes() {
        4 => buf[offset..offset + 4].copy_from_slice(&(v as u32).to_le_bytes()),
        8 => buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes()),
        _ => unreachable!(),
    }
}

/// Apply a binary ALU operation to two lanes interpreted as `dtype`.
///
/// Comparison operations return 0 or 1 regardless of `dtype`. Integer
/// arithmetic wraps. Shift counts are masked to the type width, matching
/// hardware shifters.
///
/// # Panics
/// Panics if an integer-only operation ([`AluOp::is_integer_only`]) is applied
/// to a floating-point `dtype`; the ISA makes such instructions illegal and
/// the controller rejects them before they reach an ALU lane.
pub fn alu(op: AluOp, dtype: DType, a: u64, b: u64) -> u64 {
    assert!(
        !(op.is_integer_only() && dtype.is_float()),
        "ALU op {op} is illegal on floating-point type {dtype}"
    );
    match dtype {
        DType::U32 => alu_u32(op, a as u32, b as u32),
        DType::I32 => alu_i32(op, to_i32(a), to_i32(b)),
        DType::F32 => alu_f32(op, to_f32(a), to_f32(b)),
        DType::U64 => alu_u64(op, a, b),
        DType::I64 => alu_i64(op, to_i64(a), to_i64(b)),
        DType::F64 => alu_f64(op, to_f64(a), to_f64(b)),
    }
}

fn alu_u32(op: AluOp, a: u32, b: u32) -> u64 {
    let r: u32 = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shr => a >> (b & 31),
        AluOp::Shl => a << (b & 31),
        AluOp::Lt => return (a < b) as u64,
        AluOp::Le => return (a <= b) as u64,
        AluOp::Gt => return (a > b) as u64,
        AluOp::Ge => return (a >= b) as u64,
        AluOp::Eq => return (a == b) as u64,
    };
    r as u64
}

fn alu_i32(op: AluOp, a: i32, b: i32) -> u64 {
    let r: i32 = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shr => ((a as u32) >> (b as u32 & 31)) as i32,
        AluOp::Shl => a.wrapping_shl(b as u32 & 31),
        AluOp::Lt => return (a < b) as u64,
        AluOp::Le => return (a <= b) as u64,
        AluOp::Gt => return (a > b) as u64,
        AluOp::Ge => return (a >= b) as u64,
        AluOp::Eq => return (a == b) as u64,
    };
    from_i32(r)
}

fn alu_u64(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shr => a >> (b & 63),
        AluOp::Shl => a << (b & 63),
        AluOp::Lt => (a < b) as u64,
        AluOp::Le => (a <= b) as u64,
        AluOp::Gt => (a > b) as u64,
        AluOp::Ge => (a >= b) as u64,
        AluOp::Eq => (a == b) as u64,
    }
}

fn alu_i64(op: AluOp, a: i64, b: i64) -> u64 {
    let r: i64 = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Lt => return (a < b) as u64,
        AluOp::Le => return (a <= b) as u64,
        AluOp::Gt => return (a > b) as u64,
        AluOp::Ge => return (a >= b) as u64,
        AluOp::Eq => return (a == b) as u64,
    };
    from_i64(r)
}

fn alu_f32(op: AluOp, a: f32, b: f32) -> u64 {
    let r: f32 = match op {
        AluOp::Add => a + b,
        AluOp::Sub => a - b,
        AluOp::Mul => a * b,
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::Lt => return (a < b) as u64,
        AluOp::Le => return (a <= b) as u64,
        AluOp::Gt => return (a > b) as u64,
        AluOp::Ge => return (a >= b) as u64,
        AluOp::Eq => return (a == b) as u64,
        _ => unreachable!("integer-only op on f32 rejected by caller"),
    };
    from_f32(r)
}

fn alu_f64(op: AluOp, a: f64, b: f64) -> u64 {
    let r: f64 = match op {
        AluOp::Add => a + b,
        AluOp::Sub => a - b,
        AluOp::Mul => a * b,
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::Lt => return (a < b) as u64,
        AluOp::Le => return (a <= b) as u64,
        AluOp::Gt => return (a > b) as u64,
        AluOp::Ge => return (a >= b) as u64,
        AluOp::Eq => return (a == b) as u64,
        _ => unreachable!("integer-only op on f64 rejected by caller"),
    };
    from_f64(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trips() {
        assert_eq!(to_f32(from_f32(3.5)), 3.5);
        assert_eq!(to_f64(from_f64(-2.25)), -2.25);
        assert_eq!(to_i32(from_i32(-7)), -7);
        assert_eq!(to_i64(from_i64(i64::MIN)), i64::MIN);
    }

    #[test]
    fn u32_arithmetic_wraps() {
        assert_eq!(alu(AluOp::Add, DType::U32, u32::MAX as u64, 1), 0);
        assert_eq!(alu(AluOp::Sub, DType::U32, 0, 1), u32::MAX as u64);
        assert_eq!(alu(AluOp::Mul, DType::U32, 3, 5), 15);
    }

    #[test]
    fn i32_sign_handling() {
        assert_eq!(
            to_i32(alu(AluOp::Add, DType::I32, from_i32(-3), from_i32(1))),
            -2
        );
        assert_eq!(alu(AluOp::Lt, DType::I32, from_i32(-1), from_i32(0)), 1);
        // As unsigned the same comparison would be 0.
        assert_eq!(alu(AluOp::Lt, DType::U32, from_i32(-1), from_i32(0)), 0);
    }

    #[test]
    fn float_min_max() {
        assert_eq!(
            to_f32(alu(AluOp::Min, DType::F32, from_f32(2.0), from_f32(-1.0))),
            -1.0
        );
        assert_eq!(
            to_f64(alu(AluOp::Max, DType::F64, from_f64(2.0), from_f64(7.5))),
            7.5
        );
    }

    #[test]
    fn comparisons_produce_booleans() {
        for (op, expect) in [
            (AluOp::Lt, 1),
            (AluOp::Le, 1),
            (AluOp::Gt, 0),
            (AluOp::Ge, 0),
            (AluOp::Eq, 0),
        ] {
            assert_eq!(alu(op, DType::U64, 3, 4), expect, "{op}");
        }
        assert_eq!(alu(AluOp::Eq, DType::F32, from_f32(1.0), from_f32(1.0)), 1);
    }

    #[test]
    fn shifts_mask_counts() {
        assert_eq!(alu(AluOp::Shl, DType::U32, 1, 33), 2); // 33 & 31 == 1
        assert_eq!(alu(AluOp::Shr, DType::U64, 8, 67), 1); // 67 & 63 == 3
    }

    #[test]
    #[should_panic(expected = "illegal on floating-point")]
    fn integer_op_on_float_panics() {
        let _ = alu(AluOp::And, DType::F32, 1, 1);
    }

    #[test]
    fn le_buffer_round_trip() {
        let mut buf = [0u8; 16];
        write_le(DType::U32, &mut buf, 4, 0xdead_beef);
        assert_eq!(read_le(DType::U32, &buf, 4), 0xdead_beef);
        write_le(DType::F64, &mut buf, 8, from_f64(1.5));
        assert_eq!(to_f64(read_le(DType::F64, &buf, 8)), 1.5);
    }

    #[test]
    fn truncate_clears_high_bits() {
        assert_eq!(truncate(DType::U32, 0x1_0000_0001), 1);
        assert_eq!(truncate(DType::U64, 0x1_0000_0001), 0x1_0000_0001);
    }
}
