//! Stable content hashing: FNV-1a 64.
//!
//! The serving layer (`dx100-serve`) keys its on-disk result cache by a
//! content hash of the fully resolved job configuration, so the hash
//! function is part of the cache's on-disk format: it must produce the
//! same value on every platform and every build, forever. FNV-1a is the
//! smallest function with well-known published test vectors that meets
//! that bar; the golden vectors below pin this implementation to the
//! reference one, and any change to them is a cache-format break.
//!
//! Not a cryptographic hash: collisions are possible in principle, but
//! with a handful of distinct job configs per deployment the 64-bit space
//! is effectively collision-free, and a collision only ever returns a
//! *wrong cached report*, never corrupts state — acceptable for a
//! memoization cache whose ground truth can always be recomputed.

/// FNV-1a 64 offset basis.
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a 64 over `bytes`.
///
/// ```
/// use dx100_common::hash::fnv1a_64;
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Incremental FNV-1a 64 state; feeding bytes in any split produces the
/// same digest as one [`fnv1a_64`] call over the concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Fresh state (offset basis).
    pub fn new() -> Self {
        Fnv64(FNV1A_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV1A_PRIME);
        }
    }

    /// The digest so far (the state itself; FNV has no finalization).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fixed-width lowercase hex form used as the cache file name: 16 digits,
/// zero-padded, so keys sort lexicographically like they sort numerically
/// and every key has the same length.
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors from the reference FNV distribution
    /// (<http://www.isthe.com/chongo/tech/comp/fnv/>). These pin the
    /// on-disk cache key format; a failure here means existing caches
    /// would be silently invalidated.
    #[test]
    fn golden_vectors() {
        for (input, want) in [
            (&b""[..], 0xcbf29ce484222325),
            (&b"a"[..], 0xaf63dc4c8601ec8c),
            (&b"b"[..], 0xaf63df4c8601f1a5),
            (&b"foobar"[..], 0x85944171f73967e8),
            (&b"chongo was here!\n"[..], 0x46810940eff5f915),
        ] {
            assert_eq!(
                fnv1a_64(input),
                want,
                "fnv1a_64({:?})",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Fnv64::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), fnv1a_64(data), "split at {split}");
        }
    }

    #[test]
    fn hex_is_fixed_width_lowercase() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xcbf29ce484222325), "cbf29ce484222325");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
        assert_eq!(hex16(0xA), "000000000000000a");
    }

    #[test]
    fn distinct_inputs_disperse() {
        // Not a statistical test, just a guard against a degenerate
        // implementation (e.g. ignoring input bytes).
        let a = fnv1a_64(b"kernel=is");
        let b = fnv1a_64(b"kernel=pr");
        let c = fnv1a_64(b"kernel=is "); // trailing byte matters
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
