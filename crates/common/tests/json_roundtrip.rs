//! Round-trip and property coverage for `dx100_common::json` — the wire
//! format of the serving layer rides on it, so parse ↔ serialize must be
//! lossless and serialization must be a *canonical fixpoint*: for any
//! value `v`, `serialize(parse(serialize(v))) == serialize(v)` byte for
//! byte. The serve result cache compares and stores exactly those bytes.

use dx100_common::json::{obj, Json};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Semantic equality: like `PartialEq` but treating `Int(i)` and an
/// integral `Num` of the same value as equal. The serializer prints
/// integral floats ≥ 1e15 without a fraction, so they re-parse as `Int` —
/// numerically lossless, structurally coerced.
fn sem_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Arr(x), Json::Arr(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| sem_eq(a, b))
        }
        (Json::Obj(x), Json::Obj(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && sem_eq(va, vb))
        }
        (Json::Int(i), Json::Num(n)) | (Json::Num(n), Json::Int(i)) => *i as f64 == *n,
        _ => a == b,
    }
}

/// A random JSON value with bounded depth/size. Floats are drawn finite
/// (non-finite serializes as `null` by design, tested separately);
/// strings mix ASCII, controls, escapes, and multi-byte scalars.
fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 5u32 } else { 7u32 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Bias toward edge magnitudes: extremes, powers of two, small.
            let i: i128 = match rng.gen_range(0..4u32) {
                0 => rng.gen_range(-1000i64..1000) as i128,
                1 => i128::from(rng.next_u64()) << rng.gen_range(0..64u32),
                2 => i128::MAX - rng.gen_range(0i64..3) as i128,
                _ => i128::MIN + rng.gen_range(0i64..3) as i128,
            };
            Json::Int(i)
        }
        3 => {
            let mag = 10f64.powi(rng.gen_range(-320i32..=308));
            let n = (rng.gen_range(-1.0..1.0f64)) * mag;
            Json::Num(if n.is_finite() { n } else { 0.0 })
        }
        4 => Json::Str(random_string(rng)),
        5 => Json::Arr(
            (0..rng.gen_range(0..5usize))
                .map(|_| random_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_range(0..5usize))
                .map(|i| {
                    (
                        format!("{}{}", random_string(rng), i),
                        random_json(rng, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

fn random_string(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1}',
        '\u{1f}',
        '\u{7f}',
        'é',
        '中',
        '\u{1F600}',
        '\u{2028}',
        '€',
    ];
    (0..rng.gen_range(0..12usize))
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

#[test]
fn random_values_round_trip_and_serialization_is_a_fixpoint() {
    let mut rng = StdRng::seed_from_u64(0xd100);
    for case in 0..600 {
        let v = random_json(&mut rng, 4);
        let s = v.to_string();
        let back = Json::parse(&s).unwrap_or_else(|e| panic!("case {case}: {e}\n{s}"));
        assert!(sem_eq(&back, &v), "case {case}: {v:?} -> {s} -> {back:?}");
        // Canonical fixpoint: re-serializing the parse yields identical
        // bytes — what makes cached response bodies byte-comparable.
        assert_eq!(back.to_string(), s, "case {case}");
    }
}

#[test]
fn string_escapes_round_trip() {
    for s in [
        "",
        "plain",
        "quote\" backslash\\ slash/ nl\n cr\r tab\t",
        "\u{0}\u{1}\u{8}\u{c}\u{1f}", // controls, incl. \b and \f forms
        "mixed é 中 😀 € \u{2028}\u{2029}", // multi-byte + JS line separators
        "ends with backslash\\",
        "\"",
    ] {
        let v = Json::Str(s.to_string());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
    }
}

#[test]
fn escape_forms_parse_to_expected_scalars() {
    assert_eq!(
        Json::parse(r#""A\t\/\b\f""#).unwrap(),
        Json::Str("A\t/\u{8}\u{c}".to_string())
    );
    // A lone surrogate cannot form a scalar; the parser substitutes
    // U+FFFD rather than erroring (matches lossy external producers).
    assert_eq!(
        Json::parse(r#""\ud834""#).unwrap(),
        Json::Str("\u{fffd}".to_string())
    );
}

#[test]
fn number_edge_cases() {
    // Integer extremes survive (i128 carrier).
    for i in [
        0i128,
        -1,
        i64::MAX as i128,
        i64::MIN as i128,
        i128::MAX,
        i128::MIN,
    ] {
        let s = Json::Int(i).to_string();
        assert_eq!(Json::parse(&s).unwrap(), Json::Int(i), "{s}");
    }
    // Scientific notation parses as float.
    assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    assert_eq!(Json::parse("-2.5e-3").unwrap(), Json::Num(-0.0025));
    // Integral floats keep their fraction marker under 1e15…
    assert_eq!(Json::Num(2.0).to_string(), "2.0");
    // …and above it coerce to Int on re-parse, numerically lossless.
    let s = Json::Num(1e15).to_string();
    assert_eq!(Json::parse(&s).unwrap(), Json::Int(1_000_000_000_000_000));
    // Subnormal and near-max magnitudes round-trip through Display.
    for f in [5e-324, f64::MAX, -5e-321] {
        let s = Json::Num(f).to_string();
        assert_eq!(Json::parse(&s).unwrap(), Json::Num(f), "{s}");
    }
    // Non-finite serializes as null by design (no round trip).
    assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    // "-0" is an integer zero to the parser.
    assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
}

#[test]
fn nested_structures_round_trip() {
    // 64-deep array nesting.
    let mut v = Json::Int(7);
    for _ in 0..64 {
        v = Json::Arr(vec![v]);
    }
    let s = v.to_string();
    assert_eq!(Json::parse(&s).unwrap(), v);

    // Objects preserve insertion order and tolerate duplicate keys
    // (first-wins on lookup, both preserved on the wire).
    let dup = Json::Obj(vec![
        ("k".to_string(), Json::Int(1)),
        ("k".to_string(), Json::Int(2)),
    ]);
    let s = dup.to_string();
    assert_eq!(s, r#"{"k":1,"k":2}"#);
    let back = Json::parse(&s).unwrap();
    assert_eq!(back, dup);
    assert_eq!(back.get("k"), Some(&Json::Int(1)));
}

#[test]
fn whitespace_is_insignificant_between_tokens() {
    let compact = obj([
        ("a", Json::Arr(vec![Json::Int(1), Json::Bool(false)])),
        ("b", Json::Str("x".to_string())),
    ]);
    let spaced = " {\n\t\"a\" : [ 1 ,\r false ] , \"b\" : \"x\" } \n";
    assert_eq!(Json::parse(spaced).unwrap(), compact);
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "}",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{a:1}",
        "\"unterminated",
        "\"bad \\x escape\"",
        "01x",
        "-",
        "1 2",
        "[1] trailing",
        "nul",
        "tru",
    ] {
        assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
    }
}
