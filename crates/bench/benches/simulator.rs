//! Criterion benchmarks of the simulator's hot paths: these measure the
//! *host* cost of simulation (how fast the reproduction runs), not the
//! simulated machine. Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx100_common::LineAddr;
use dx100_core::functional::FunctionalDx100;
use dx100_core::isa::{Instruction, RegId, TileId};
use dx100_core::{Dx100Config, MemoryImage};
use dx100_dram::{DramConfig, DramSystem, MemRequest};
use dx100_sim::SystemConfig;
use dx100_workloads::micro::allhit::{run_allhit, MicroKind};
use dx100_workloads::micro::allmiss::{build_indices, Scenario};

/// FR-FCFS scheduling throughput: stream 4K random-line reads through the
/// two-channel controller.
fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_frfcfs_4k_requests", |b| {
        b.iter(|| {
            let mut dram = DramSystem::new(DramConfig::ddr4_3200_2ch());
            let mut sent = 0u64;
            let mut got = 0;
            let mut now = 0;
            while got < 4096 {
                while sent < 4096
                    && dram.try_enqueue(
                        MemRequest::read(sent, LineAddr(sent.wrapping_mul(2654435761) % (1 << 20))),
                        now,
                    )
                {
                    sent += 1;
                }
                dram.tick(now);
                while dram.pop_response().is_some() {
                    got += 1;
                }
                now += 1;
            }
            got
        })
    });
}

/// Functional accelerator throughput: a full 16K-element gather.
fn bench_functional_gather(c: &mut Criterion) {
    c.bench_function("functional_gather_16k", |b| {
        let mut mem = MemoryImage::new();
        let a = mem.alloc("A", dx100_common::DType::U32, 1 << 20);
        let idx = mem.alloc("B", dx100_common::DType::U32, 16 * 1024);
        for i in 0..16 * 1024u64 {
            mem.write_elem(idx, i, (i * 2654435761) % (1 << 20));
        }
        b.iter(|| {
            let mut dx = FunctionalDx100::new(Dx100Config::paper());
            dx.write_reg(RegId::new(0), 0);
            dx.write_reg(RegId::new(1), 1);
            dx.write_reg(RegId::new(2), 16 * 1024);
            dx.run(
                &[
                    Instruction::sld(
                        dx100_common::DType::U32,
                        idx.base(),
                        TileId::new(0),
                        RegId::new(0),
                        RegId::new(1),
                        RegId::new(2),
                    ),
                    Instruction::ild(
                        dx100_common::DType::U32,
                        a.base(),
                        TileId::new(1),
                        TileId::new(0),
                    ),
                ],
                &mut mem,
            )
            .unwrap();
            dx.tile(TileId::new(1)).get(0)
        })
    });
}

/// Index-pattern construction for the all-miss sweep (address-mapping
/// inverse heavy).
fn bench_allmiss_pattern(c: &mut Criterion) {
    let dram = DramConfig::ddr4_3200_2ch();
    for (name, s) in [
        (
            "rbh0",
            Scenario {
                rbh: 0.0,
                chi: true,
                bgi: true,
            },
        ),
        (
            "rbh100",
            Scenario {
                rbh: 1.0,
                chi: true,
                bgi: true,
            },
        ),
    ] {
        c.bench_with_input(BenchmarkId::new("allmiss_pattern", name), &s, |b, s| {
            b.iter(|| build_indices(*s, LineAddr(4096), &dram))
        });
    }
}

/// Whole-machine simulation rate: the smallest all-hit microbenchmark, end
/// to end (cores + caches + DRAM + DX100).
fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system_allhit");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| {
            run_allhit(
                MicroKind::GatherFull,
                false,
                &SystemConfig::paper_baseline(),
                1,
            )
            .cycles
        })
    });
    g.bench_function("dx100", |b| {
        b.iter(|| run_allhit(MicroKind::GatherFull, true, &SystemConfig::paper_dx100(), 1).cycles)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dram,
    bench_functional_gather,
    bench_allmiss_pattern,
    bench_full_system
);
criterion_main!(benches);
