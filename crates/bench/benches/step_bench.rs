//! Microbenchmarks of the core simulation loop with event-driven cycle
//! skipping on and off. Two workload shapes bracket the design space:
//!
//! * **idle-heavy** — a single core chasing dependent cache-missing loads,
//!   so almost every cycle is a quiescent DRAM wait. Skipping should win
//!   big here (the acceptance target is ≥2×).
//! * **traffic-heavy** — the all-hit gather microbenchmark with the DX100
//!   engine streaming at full tilt, where quiescent spans are rare. The
//!   `try_skip` probe runs (and usually fails) every cycle, so this
//!   measures the optimisation's overhead ceiling (target: ≤5% slower).
//!
//! Each shape also runs with the cycle-attribution profiler on and off
//! (`profile_on`/`profile_off`), measuring the per-tick cost of the
//! attribution counters (target: ≤5% on traffic-heavy).
//!
//! Run with `cargo bench -p dx100-bench --features bench-harness --bench
//! step_bench`. Results are recorded in DESIGN.md ("Simulation
//! performance").

use criterion::{criterion_group, criterion_main, Criterion};
use dx100_common::DType;
use dx100_core::MemoryImage;
use dx100_cpu::CoreOp;
use dx100_sim::driver::NullDriver;
use dx100_sim::{System, SystemConfig};
use dx100_workloads::micro::allhit::{run_allhit, MicroKind};

/// A serial pointer-chase: each load depends on the previous one and
/// misses every cache, so the machine idles for a full DRAM round trip
/// between instructions.
fn sparse_chase(loads: u64) -> (MemoryImage, Vec<CoreOp>) {
    let mut image = MemoryImage::new();
    let a = image.alloc("A", DType::U32, 1 << 20); // 4 MB
    let mut ops = Vec::new();
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..loads {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = (x >> 33) % (1 << 20);
        let load = CoreOp::load(a.addr_of(idx), 1);
        ops.push(if i == 0 { load } else { load.with_dep(1) });
    }
    (image, ops)
}

fn run_chase(skip: bool, profile: bool, loads: u64) -> u64 {
    let (image, ops) = sparse_chase(loads);
    let mut cfg = SystemConfig::paper_baseline();
    cfg.cycle_skip = skip;
    cfg.obs.profile = profile;
    let mut sys = System::new(cfg, image);
    sys.push_ops(0, ops);
    sys.run(&mut NullDriver).cycles
}

fn bench_idle_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_idle_heavy");
    g.sample_size(10);
    for (name, skip) in [("skip_on", true), ("skip_off", false)] {
        g.bench_function(name, |b| b.iter(|| run_chase(skip, false, 256)));
    }
    for (name, profile) in [("profile_on", true), ("profile_off", false)] {
        g.bench_function(name, |b| b.iter(|| run_chase(true, profile, 256)));
    }
    g.finish();
}

fn bench_traffic_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_traffic_heavy");
    g.sample_size(10);
    for (name, skip) in [("skip_on", true), ("skip_off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::paper_dx100();
                cfg.cycle_skip = skip;
                run_allhit(MicroKind::GatherFull, true, &cfg, 1).cycles
            })
        });
    }
    for (name, profile) in [("profile_on", true), ("profile_off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::paper_dx100();
                cfg.obs.profile = profile;
                run_allhit(MicroKind::GatherFull, true, &cfg, 1).cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_idle_heavy, bench_traffic_heavy);
criterion_main!(benches);
