//! Differential tests for the parallel full-fidelity sweep executor.
//!
//! The executor's contract is that `--threads` is *invisible* in every
//! measured artifact: tables, `--json` reports (including epoch
//! time-series), and Chrome traces must be byte-identical whether the
//! (kernel × machine) matrix ran on one worker or many. These tests run
//! the fig09 smoke configuration (all 12 kernels, baseline + dx100, full
//! observability) serially and on four workers and compare the serialized
//! artifacts byte for byte, then repeat the row comparison with DMP
//! included (the fig12 matrix shape).

use dx100_bench::{report_json, run_all_threaded, trace_json, BenchArgs, KernelRow};
use dx100_sim::report::run_stats_json;
use dx100_sim::ObservabilityConfig;

/// Minimum dataset sizes: every kernel runs, nothing takes long in debug.
const SMOKE_SCALE: f64 = 1e-9;
const SEED: u64 = 1;

/// Full observability, so the comparison covers trace event streams and
/// epoch series, not just end-of-run counters.
fn obs() -> ObservabilityConfig {
    ObservabilityConfig {
        trace: true,
        epoch_cycles: Some(5000),
        ..ObservabilityConfig::default()
    }
}

fn row_fingerprint(r: &KernelRow) -> String {
    let dmp = match &r.dmp {
        Some(d) => run_stats_json(&d.stats).to_string(),
        None => "null".into(),
    };
    format!(
        "{}|{}|{}|{}|{}|{}",
        r.name,
        r.baseline.checksum,
        r.dx100.checksum,
        run_stats_json(&r.baseline.stats),
        run_stats_json(&r.dx100.stats),
        dmp,
    )
}

#[test]
fn full_sweep_is_bit_identical_for_any_thread_count() {
    let serial = run_all_threaded(SMOKE_SCALE, false, SEED, &obs(), 1);
    let parallel = run_all_threaded(SMOKE_SCALE, false, SEED, &obs(), 4);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(row_fingerprint(s), row_fingerprint(p), "{}", s.name);
    }
    // The machine-readable report (rows, speedups, run stats, epoch
    // series) and the Chrome trace must serialize to identical bytes.
    assert_eq!(
        report_json("fig09", SMOKE_SCALE, &serial).to_string(),
        report_json("fig09", SMOKE_SCALE, &parallel).to_string(),
    );
    let st = trace_json(&serial);
    assert_eq!(st, trace_json(&parallel));
    assert!(st.contains("traceEvents"));
}

#[test]
fn dmp_sweep_rows_are_thread_count_invariant() {
    // The fig12 shape: three machines per kernel, so job order inside a
    // kernel (baseline, dx100, dmp) is exercised too.
    let serial = run_all_threaded(SMOKE_SCALE, true, SEED, &obs(), 1);
    let parallel = run_all_threaded(SMOKE_SCALE, true, SEED, &obs(), 3);
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(s.dmp.is_some(), "{}: dmp machine missing", s.name);
        assert_eq!(row_fingerprint(s), row_fingerprint(p), "{}", s.name);
    }
}

#[test]
fn figure_run_walltime_is_per_job_and_ordered() {
    let args = BenchArgs {
        scale: SMOKE_SCALE,
        threads: 4,
        ..BenchArgs::default()
    };
    let fig = dx100_bench::run_figure(&args, false);
    // One walltime entry per (kernel × machine) job, in job order:
    // kernel-major, baseline before dx100.
    assert_eq!(fig.walltime.len(), fig.rows.len() * 2);
    for (row, pair) in fig.rows.iter().zip(fig.walltime.chunks(2)) {
        assert_eq!(pair[0].kernel, row.name);
        assert_eq!(pair[0].config, "baseline");
        assert_eq!(pair[1].kernel, row.name);
        assert_eq!(pair[1].config, "dx100");
        // Per-job spans measure the job itself, not elapsed-since-start:
        // no job can exceed the whole sweep's wall clock.
        assert!(pair[0].seconds >= 0.0 && pair[0].seconds <= fig.total_seconds);
        assert!(pair[1].seconds >= 0.0 && pair[1].seconds <= fig.total_seconds);
    }
    assert_eq!(fig.mode, "full");
    assert_eq!(fig.threads, 4);
    let wt = fig.walltime_json("fig09").to_string();
    let parsed = dx100_common::json::Json::parse(&wt).unwrap();
    assert_eq!(
        parsed
            .get("threads")
            .and_then(dx100_common::json::Json::as_f64),
        Some(4.0)
    );
    assert_eq!(
        parsed
            .get("jobs")
            .and_then(dx100_common::json::Json::as_f64),
        Some(fig.walltime.len() as f64)
    );
}
