//! Determinism of the sampled sweep's report.
//!
//! The `--sample` pipeline estimates per-metric sampling errors by
//! accumulating floats across clusters; the accumulation order is part of
//! the report contract. Running the same sampled sweep twice — and at
//! different thread counts — must serialize to byte-identical `--json`
//! reports, the `sampling.runs[*].errors` block included.

use dx100_bench::BenchArgs;
use dx100_common::json::Json;

/// Minimum dataset sizes: every kernel runs, nothing takes long in debug.
const SMOKE_SCALE: f64 = 1e-9;

fn sampled_args(threads: usize) -> BenchArgs {
    BenchArgs {
        scale: SMOKE_SCALE,
        sample: true,
        threads,
        seed: 1,
        ..BenchArgs::default()
    }
}

/// Blanks the `sampling.threads` metadata field, the one spot where the
/// worker count legitimately appears in the report.
fn normalize_threads(report: Json) -> Json {
    match report {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| {
                    let v = match (k.as_str(), v) {
                        ("sampling", Json::Obj(s)) => Json::Obj(
                            s.into_iter()
                                .map(|(sk, sv)| {
                                    if sk == "threads" {
                                        (sk, Json::Int(0))
                                    } else {
                                        (sk, sv)
                                    }
                                })
                                .collect(),
                        ),
                        (_, v) => v,
                    };
                    (k, v)
                })
                .collect(),
        ),
        other => other,
    }
}

#[test]
fn sampled_report_is_byte_identical_across_repeats_and_threads() {
    let first = dx100_bench::run_figure(&sampled_args(2), false).report_json("fig09");
    let again = dx100_bench::run_figure(&sampled_args(2), false).report_json("fig09");
    let serial = dx100_bench::run_figure(&sampled_args(1), false).report_json("fig09");

    let first = first.to_string();
    let again = again.to_string();
    assert_eq!(
        first, again,
        "same sweep, same threads: report must not drift"
    );
    // Aside from the recorded worker count, the serial report matches too.
    assert_eq!(
        normalize_threads(Json::parse(&first).unwrap()).to_string(),
        normalize_threads(serial).to_string(),
        "thread count must be invisible in the measured report"
    );

    // The errors block is present and well-formed for every sampled run.
    let parsed = Json::parse(&first).unwrap();
    let runs = parsed
        .get("sampling")
        .and_then(|s| s.get("runs"))
        .and_then(Json::as_arr)
        .expect("sampled report carries a sampling.runs array");
    assert!(
        !runs.is_empty(),
        "at least one kernel samples at smoke scale"
    );
    for run in runs {
        let errors = run.get("errors").expect("each run reports its errors");
        for metric in ["cycles", "row_buffer_hit_rate", "llc_mpki"] {
            let v = errors.get(metric).and_then(Json::as_f64).unwrap();
            assert!(v.is_finite() && v >= 0.0, "{metric} error malformed: {v}");
        }
        // The lower-bound flag is always present, so report consumers can
        // tell "no spread observed" from "error genuinely zero".
        assert!(
            matches!(errors.get("lower_bound"), Some(Json::Bool(_))),
            "errors.lower_bound must be a boolean"
        );
    }
}
