//! End-to-end observability checks: a traced, epoch-sampled simulation
//! must produce a loadable Chrome trace, a schema-stable JSON report, and
//! a non-trivial epoch time-series.

use dx100_common::json::Json;
use dx100_common::trace::chrome_trace_json;
use dx100_sim::report::run_stats_json;
use dx100_sim::{ObservabilityConfig, RunStats, SystemConfig};
use dx100_workloads::micro::allhit::{run_allhit, MicroKind};

fn traced_run(dx100: bool) -> RunStats {
    let mut cfg = if dx100 {
        SystemConfig::paper_dx100()
    } else {
        SystemConfig::paper_baseline()
    };
    cfg.obs = ObservabilityConfig {
        trace: true,
        epoch_cycles: Some(2000),
        ..ObservabilityConfig::default()
    };
    run_allhit(MicroKind::GatherFull, dx100, &cfg, 1)
}

#[test]
fn traced_run_produces_valid_chrome_trace() {
    for dx100 in [false, true] {
        let stats = traced_run(dx100);
        let buf = stats.trace.as_ref().expect("tracing was enabled");
        assert!(!buf.events().is_empty(), "traced run recorded no events");

        let text = chrome_trace_json(&[("run".to_string(), buf)]);
        let parsed = Json::parse(&text).expect("trace must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        // Data events (everything after the "M" metadata prefix) must be
        // sorted by timestamp so viewers never see time run backwards.
        let mut last_ts = f64::NEG_INFINITY;
        let mut data_events = 0;
        let mut cats = std::collections::HashSet::new();
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            if ph == "M" {
                continue;
            }
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(
                ts >= last_ts,
                "trace timestamps must be non-decreasing ({ts} after {last_ts})"
            );
            last_ts = ts;
            data_events += 1;
            if let Some(cat) = e.get("cat").and_then(Json::as_str) {
                cats.insert(cat.to_string());
            }
            if ph == "X" {
                let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(dur >= 1.0, "complete spans need a visible duration");
            }
        }
        assert!(data_events > 0);
        // A memory-bound gather must exercise DRAM commands and MSHRs; the
        // accelerated run must additionally show DX100 tile phases.
        assert!(cats.contains("dram"), "missing dram events: {cats:?}");
        assert!(cats.contains("mshr"), "missing mshr events: {cats:?}");
        if dx100 {
            assert!(cats.contains("dx100"), "missing dx100 events: {cats:?}");
        }
    }
}

#[test]
fn epoch_series_covers_the_run() {
    let stats = traced_run(true);
    assert!(
        stats.epochs.len() > 1,
        "a multi-thousand-cycle run at --epoch 2000 must yield several samples, got {}",
        stats.epochs.len()
    );
    // The first epoch starts where the region of interest began (the
    // sampler rebases on `roi_begin`), and later epochs tile contiguously.
    let mut prev_end = stats.epochs[0].start_cycle;
    for e in &stats.epochs {
        assert_eq!(e.start_cycle, prev_end, "epochs must tile the run");
        assert!(e.end_cycle > e.start_cycle);
        assert!(e.end_cycle - e.start_cycle <= 2000);
        assert!((0.0..=1.0).contains(&e.row_buffer_hit_rate));
        assert!((0.0..=1.0).contains(&e.bandwidth_utilization));
        prev_end = e.end_cycle;
    }
    // The interval counters must add up to at least the ROI totals (the
    // series also covers the post-ROI drain, so it may slightly exceed the
    // snapshot taken at `roi_end`).
    let total: u64 = stats.epochs.iter().map(|e| e.instructions).sum();
    assert!(
        total >= stats.instructions,
        "{total} < {}",
        stats.instructions
    );
    let reads: u64 = stats.epochs.iter().map(|e| e.dram_reads).sum();
    assert!(reads >= stats.dram.reads, "{reads} < {}", stats.dram.reads);
}

#[test]
fn report_includes_observability_fields() {
    let stats = traced_run(true);
    let parsed = Json::parse(&run_stats_json(&stats).to_string()).unwrap();
    let epochs = parsed.get("epochs").and_then(Json::as_arr).unwrap();
    assert_eq!(epochs.len(), stats.epochs.len());
    assert!(parsed.get("trace_events").and_then(Json::as_f64).unwrap() > 0.0);
}

#[test]
fn observability_off_records_nothing() {
    let cfg = SystemConfig::paper_baseline();
    let stats = run_allhit(MicroKind::GatherFull, false, &cfg, 1);
    assert!(stats.trace.is_none());
    assert!(stats.epochs.is_empty());
}
