//! The figure/table harness: runs the paper's workloads on the simulated
//! machines and prints each figure's rows.
//!
//! Every binary in `src/bin/` regenerates one figure or table:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig08a` | All-hit microbenchmark speedups |
//! | `fig08bc` | All-miss gather speedup + bandwidth vs index order |
//! | `fig09` | Speedup across the 12 workloads |
//! | `fig10` | Bandwidth utilization, row-buffer hit rate, occupancy |
//! | `fig11` | Instruction and MPKI reduction |
//! | `fig12` | DX100 vs the DMP indirect prefetcher |
//! | `fig13` | Tile-size sensitivity |
//! | `fig14` | Core/instance scaling |
//! | `table4` | Area and power model |
//! | `ablation` | Reorder/coalesce/interleave/LLC-injection ablations |
//!
//! Use `--scale <f>` to trade fidelity for runtime (default 1.0 ≈ seconds
//! per run; the paper's full sizes would take hours, like the original gem5
//! artifact's 84).
//!
//! Observability flags (shared by all figure binaries):
//!
//! * `--json <path>` — write a machine-readable run report.
//! * `--trace <path>` — write a Chrome trace (load in Perfetto / `about:tracing`).
//! * `--epoch <cycles>` — sample epoch time-series metrics every N cycles
//!   (included in the `--json` report).
//! * `--profile` — cycle-attribution profiling: every timed component
//!   classifies each of its cycles (stall taxonomy, utilization,
//!   occupancy histograms), the per-run JSON gains a versioned `profile`
//!   section, and a per-kernel bottleneck summary prints after the table.
//!   Never changes simulated results: `RunStats` are bit-identical with
//!   the flag on or off.
//!
//! Sweep-execution flags (row-based figure binaries):
//!
//! * `--threads <n>` — worker threads for the kernel × machine sweep
//!   (default: available cores). Governs *both* modes: full-fidelity
//!   sweeps run each (kernel, machine) job on the shared pool, and sampled
//!   sweeps run each replay window there. Every output — tables, `--json`
//!   reports, epoch series, `--trace` files — is bit-identical at any
//!   thread count; only wall-clock time and stderr progress order change.
//! * `--sample` — run the checkpointed, sampled pipeline (`dx100-sampling`)
//!   instead of full cycle-by-cycle simulation: kernels with interval
//!   decompositions simulate only representative windows; the rest run in
//!   full, but all of it in parallel across `--threads` workers. The report
//!   records per-metric sampling-error estimates.
//! * `--seed <n>` — dataset + sampling RNG seed (default 1); runs are
//!   bit-reproducible for a given seed regardless of thread count.

pub mod jobspec;
pub mod progress;
pub mod sampled;

pub use jobspec::{machine_config, JobCli, JobSpec};
pub use progress::Progress;
pub use sampled::{run_figure, FigureRun, WalltimeEntry};

use std::path::{Path, PathBuf};

use dx100_common::json::{obj, Json};
use dx100_common::trace::chrome_trace_json;
use dx100_sim::report::{run_stats_json, SCHEMA_VERSION};
use dx100_sim::{ObservabilityConfig, RunStats, SystemConfig};
use dx100_workloads::{all_kernels, KernelRun, Mode, Scale, WorkloadResult};

/// Measurements for one kernel across the machines of interest.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Baseline run.
    pub baseline: WorkloadResult,
    /// DX100 run.
    pub dx100: WorkloadResult,
    /// DMP run (only when requested).
    pub dmp: Option<WorkloadResult>,
}

impl KernelRow {
    /// DX100 speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.dx100.stats.speedup_over(&self.baseline.stats)
    }

    /// DX100 speedup over DMP.
    pub fn speedup_vs_dmp(&self) -> Option<f64> {
        self.dmp
            .as_ref()
            .map(|d| self.dx100.stats.speedup_over(&d.stats))
    }
}

/// Runs one kernel in the given modes (None = skip DMP).
pub fn run_kernel_row(kernel: &dyn KernelRun, with_dmp: bool, seed: u64) -> KernelRow {
    run_kernel_row_with(kernel, with_dmp, seed, &ObservabilityConfig::default())
}

/// [`run_kernel_row`] with observability (tracing / epoch sampling) applied
/// to every machine.
pub fn run_kernel_row_with(
    kernel: &dyn KernelRun,
    with_dmp: bool,
    seed: u64,
    obs: &ObservabilityConfig,
) -> KernelRow {
    run_kernel_row_timed(kernel, with_dmp, seed, obs).0
}

/// [`run_kernel_row_with`] plus per-machine wall-clock seconds
/// `[baseline, dx100, dmp]` (dmp is 0 when skipped) for walltime reports.
pub fn run_kernel_row_timed(
    kernel: &dyn KernelRun,
    with_dmp: bool,
    seed: u64,
    obs: &ObservabilityConfig,
) -> (KernelRow, [f64; 3]) {
    let with_obs = |mut cfg: SystemConfig| {
        cfg.obs = obs.clone();
        cfg
    };
    let timed = |mode: Mode, cfg: SystemConfig| {
        let t = std::time::Instant::now();
        let r = kernel.run(mode, &cfg, seed);
        (r, t.elapsed().as_secs_f64())
    };
    // Machine construction is shared with the job/serve path
    // (`jobspec::machine_config`), so CLI sweeps and served jobs measure
    // provably identical configurations.
    let (baseline, tb) = timed(Mode::Baseline, with_obs(machine_config(Mode::Baseline)));
    let (dx100, tx) = timed(Mode::Dx100, with_obs(machine_config(Mode::Dx100)));
    let (dmp, td) = match with_dmp.then(|| timed(Mode::Dmp, with_obs(machine_config(Mode::Dmp)))) {
        Some((r, t)) => (Some(r), t),
        None => (None, 0.0),
    };
    (
        KernelRow {
            name: kernel.name(),
            baseline,
            dx100,
            dmp,
        },
        [tb, tx, td],
    )
}

/// Runs all kernels at `scale`, optionally including DMP.
pub fn run_all(scale: f64, with_dmp: bool, seed: u64) -> Vec<KernelRow> {
    run_all_with(scale, with_dmp, seed, &ObservabilityConfig::default())
}

/// [`run_all`] with observability applied to every run. Executes the
/// (kernel × machine) matrix on the machine's available cores; see
/// [`run_all_threaded`] for the determinism contract.
pub fn run_all_with(
    scale: f64,
    with_dmp: bool,
    seed: u64,
    obs: &ObservabilityConfig,
) -> Vec<KernelRow> {
    run_all_threaded(scale, with_dmp, seed, obs, default_threads())
}

/// [`run_all_with`] with an explicit worker-thread count.
///
/// Every (kernel, machine) simulation is an independent job on the shared
/// deterministic pool ([`dx100_common::pool`]); results are collected in
/// job order, so rows — and everything derived from them: tables, JSON
/// reports, epoch series, Chrome traces — are bit-identical for any
/// `threads` value.
pub fn run_all_threaded(
    scale: f64,
    with_dmp: bool,
    seed: u64,
    obs: &ObservabilityConfig,
    threads: usize,
) -> Vec<KernelRow> {
    let kernels = all_kernels(Scale(scale));
    sampled::run_matrix(&kernels, with_dmp, seed, obs, threads, "full sweep").0
}

/// Command-line arguments shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Problem-size scale factor (`--scale`, default 1.0).
    pub scale: f64,
    /// Write a machine-readable run report here (`--json`).
    pub json: Option<PathBuf>,
    /// Write a Chrome trace here (`--trace`).
    pub trace: Option<PathBuf>,
    /// Sample epoch metrics every N cycles (`--epoch`).
    pub epoch: Option<u64>,
    /// Cycle-attribution profiling (`--profile`): stall taxonomy +
    /// utilization counters per component, a `profile` section per run in
    /// the `--json` report, and a printed bottleneck summary.
    pub profile: bool,
    /// Run the sampled-simulation pipeline (`--sample`).
    pub sample: bool,
    /// Worker threads for the kernel × machine sweep (`--threads`):
    /// full-fidelity jobs and sampled replay windows both execute on this
    /// many workers, with bit-identical output at any value.
    pub threads: usize,
    /// Dataset + sampling RNG seed (`--seed`).
    pub seed: u64,
}

/// Default worker-thread count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1.0,
            json: None,
            trace: None,
            epoch: None,
            profile: false,
            sample: false,
            threads: default_threads(),
            seed: 1,
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments; prints the problem and exits non-zero
    /// on anything malformed (a typo'd `--scale` silently running the
    /// full-size workload for hours is worse than an error).
    pub fn parse() -> BenchArgs {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--scale <factor>] [--json <path>] [--trace <path>] [--epoch <cycles>] \
                     [--profile] [--sample] [--threads <n>] [--seed <n>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Fallible parser over an explicit argument list (testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<BenchArgs, String> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
            match arg.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale = v
                        .parse::<f64>()
                        .ok()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or_else(|| format!("invalid --scale value `{v}`"))?;
                }
                "--json" => out.json = Some(PathBuf::from(value("--json")?)),
                "--trace" => out.trace = Some(PathBuf::from(value("--trace")?)),
                "--profile" => out.profile = true,
                "--sample" => out.sample = true,
                "--threads" => {
                    let v = value("--threads")?;
                    out.threads = v
                        .parse::<usize>()
                        .ok()
                        .filter(|t| *t > 0)
                        .ok_or_else(|| format!("invalid --threads value `{v}`"))?;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --seed value `{v}`"))?;
                }
                "--epoch" => {
                    let v = value("--epoch")?;
                    out.epoch = Some(
                        v.parse::<u64>()
                            .ok()
                            .filter(|e| *e > 0)
                            .ok_or_else(|| format!("invalid --epoch value `{v}`"))?,
                    );
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// The simulator observability configuration these flags request.
    pub fn observability(&self) -> ObservabilityConfig {
        ObservabilityConfig {
            trace: self.trace.is_some(),
            epoch_cycles: self.epoch,
            profile: self.profile,
            ..ObservabilityConfig::default()
        }
    }

    /// Prints each kernel's bottleneck summary (no-op without `--profile`).
    /// Call after the figure's table so the report reads top-down.
    pub fn print_profile(&self, rows: &[KernelRow]) {
        if !self.profile {
            return;
        }
        print_bottlenecks(rows);
    }

    /// Prints one run's bottleneck summary under `label` — for figure
    /// binaries whose sweeps do not produce [`KernelRow`]s. No-op without
    /// `--profile` or when the run carries no attribution.
    pub fn print_run_profile(&self, label: &str, w: &WorkloadResult) {
        if !self.profile {
            return;
        }
        if let Some(p) = w.telemetry.profile.as_ref() {
            println!("-- {label}");
            print!("{}", p.bottleneck_summary());
        }
    }

    /// Warns when artifact flags were passed to a binary whose output has
    /// no per-kernel run shape to report. `supports_json` suppresses the
    /// warning for `--json` (the binary writes its own report);
    /// `supports_profile` suppresses it for `--profile` (the binary prints
    /// per-run bottleneck summaries itself).
    pub fn warn_unsupported(&self, generator: &str, supports_json: bool, supports_profile: bool) {
        if self.json.is_some() && !supports_json {
            eprintln!("note: {generator} does not emit --json reports; flag ignored");
        }
        if self.trace.is_some() {
            eprintln!("note: {generator} does not emit --trace files; flag ignored");
        }
        if self.epoch.is_some() {
            eprintln!("note: {generator} does not report --epoch samples; flag ignored");
        }
        if self.profile && !supports_profile {
            eprintln!("note: {generator} does not profile its runs; flag ignored");
        }
    }

    /// Writes a JSON report produced by the binary itself (for figures
    /// whose rows are not kernel × machine runs).
    pub fn emit_custom_report(&self, report: &Json) {
        if let Some(path) = &self.json {
            write_or_die(path, &(report.to_string() + "\n"));
            eprintln!("wrote report to {}", path.display());
        }
    }

    /// Writes the report / trace files requested on the command line.
    /// Call once after the figure's rows are measured.
    pub fn emit_artifacts(&self, generator: &str, rows: &[KernelRow]) {
        if let Some(path) = &self.json {
            write_or_die(
                path,
                &(report_json(generator, self.scale, rows).to_string() + "\n"),
            );
            eprintln!("wrote report to {}", path.display());
        }
        if let Some(path) = &self.trace {
            write_or_die(path, &trace_json(rows));
            eprintln!("wrote trace to {} (open in Perfetto)", path.display());
        }
    }
}

fn write_or_die(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Parses `--scale <f>` from the command line (default 1.0); exits
/// non-zero on malformed arguments.
pub fn scale_from_args() -> f64 {
    BenchArgs::parse().scale
}

/// The machine-readable report for a set of kernel rows: per-kernel
/// speedups plus the full [`run_stats_json`] of every run (including epoch
/// time-series when sampling was on).
pub fn report_json(generator: &str, scale: f64, rows: &[KernelRow]) -> Json {
    let speeds: Vec<f64> = rows.iter().map(KernelRow::speedup).collect();
    obj([
        ("schema_version", SCHEMA_VERSION.into()),
        ("generator", generator.into()),
        ("scale", scale.into()),
        (
            "geomean_speedup",
            dx100_common::stats::geomean(&speeds).into(),
        ),
        ("rows", Json::Arr(rows.iter().map(row_json).collect())),
    ])
}

/// One run's JSON: [`run_stats_json`] plus the run's telemetry (skip
/// counters always; the versioned `profile` section when `--profile`
/// was on, `null` otherwise).
fn run_json(w: &WorkloadResult) -> Json {
    let mut j = run_stats_json(&w.stats);
    if let Json::Obj(fields) = &mut j {
        fields.push(("telemetry".to_string(), w.telemetry.to_json()));
    }
    j
}

/// Prints the per-run bottleneck summaries for every profiled run.
pub fn print_bottlenecks(rows: &[KernelRow]) {
    for r in rows {
        for (mode, w) in [
            ("baseline", Some(&r.baseline)),
            ("dx100", Some(&r.dx100)),
            ("dmp", r.dmp.as_ref()),
        ] {
            if let Some(p) = w.and_then(|w| w.telemetry.profile.as_ref()) {
                println!("-- {}/{mode}", r.name);
                print!("{}", p.bottleneck_summary());
            }
        }
    }
}

fn row_json(r: &KernelRow) -> Json {
    obj([
        ("name", r.name.into()),
        ("speedup", r.speedup().into()),
        (
            "speedup_vs_dmp",
            match r.speedup_vs_dmp() {
                Some(s) => s.into(),
                None => Json::Null,
            },
        ),
        (
            "checksums_match",
            (r.baseline.checksum == r.dx100.checksum).into(),
        ),
        (
            "runs",
            obj([
                ("baseline", run_json(&r.baseline)),
                ("dx100", run_json(&r.dx100)),
                (
                    "dmp",
                    match &r.dmp {
                        Some(d) => run_json(d),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
    ])
}

/// Chrome-trace JSON for every traced run in `rows` (one trace "process"
/// per kernel × machine).
pub fn trace_json(rows: &[KernelRow]) -> String {
    let mut runs = Vec::new();
    for r in rows {
        for (mode, result) in [
            ("baseline", Some(&r.baseline)),
            ("dx100", Some(&r.dx100)),
            ("dmp", r.dmp.as_ref()),
        ] {
            if let Some(buf) = result.and_then(|w| w.stats.trace.as_ref()) {
                runs.push((format!("{}/{mode}", r.name), buf));
            }
            // Profile counter curves live outside `RunStats.trace` (so the
            // trace stays byte-identical with `--profile` on or off); merge
            // them into the viewer file as their own process.
            if let Some(buf) = result.and_then(|w| w.telemetry.counters.as_ref()) {
                if !buf.is_empty() {
                    runs.push((format!("{}/{mode}/profile", r.name), buf));
                }
            }
        }
    }
    chrome_trace_json(&runs)
}

/// Prints a measurement table row-per-kernel; the name column is sized to
/// the longest kernel name.
pub fn print_table(header: &[&str], rows: &[(String, Vec<f64>)]) {
    let width = rows
        .iter()
        .map(|(name, _)| name.len())
        .chain(["kernel".len()])
        .max()
        .unwrap_or(6);
    print!("{:<width$}", "kernel");
    for h in header {
        print!(" {h:>12}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:<width$}");
        for v in vals {
            print!(" {v:>12.3}");
        }
        println!();
    }
}

/// Geometric-mean summary line.
pub fn print_geomean(label: &str, values: &[f64]) {
    println!(
        "{label}: geomean {:.2}x over {} kernels",
        dx100_common::stats::geomean(values),
        values.len()
    );
}

/// Formats the headline stats of one run (debug helper).
pub fn summarize(name: &str, s: &RunStats) -> String {
    format!(
        "{name}: {} cycles, {} instrs, bw {:.1}% ({:.1} GB/s), rbh {:.1}%, occ {:.2}, llc-mpki {:.2}",
        s.cycles,
        s.instructions,
        s.bandwidth_utilization() * 100.0,
        s.bandwidth_gbps(),
        s.row_buffer_hit_rate() * 100.0,
        s.request_buffer_occupancy(),
        s.llc_mpki()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let args = parse(&[
            "--scale",
            "0.05",
            "--json",
            "r.json",
            "--trace",
            "t.json",
            "--epoch",
            "5000",
            "--profile",
            "--sample",
            "--threads",
            "4",
            "--seed",
            "7",
        ])
        .unwrap();
        assert_eq!(args.scale, 0.05);
        assert_eq!(args.json.as_deref(), Some(Path::new("r.json")));
        assert_eq!(args.trace.as_deref(), Some(Path::new("t.json")));
        assert_eq!(args.epoch, Some(5000));
        assert!(args.profile);
        assert!(args.sample);
        assert_eq!(args.threads, 4);
        assert_eq!(args.seed, 7);
        let obs = args.observability();
        assert!(obs.trace);
        assert_eq!(obs.epoch_cycles, Some(5000));
        assert!(obs.profile);
    }

    #[test]
    fn defaults_without_flags() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, BenchArgs::default());
        assert!(!args.observability().trace);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["--scale", "fast"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--epoch", "0"]).is_err());
        assert!(parse(&["--epoch", "soon"]).is_err());
        assert!(parse(&["--json"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
        assert!(parse(&["--seed", "-3"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn report_has_stable_shape() {
        let report = report_json("figXX", 0.1, &[]);
        let parsed = Json::parse(&report.to_string()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            parsed.get("generator").and_then(Json::as_str),
            Some("figXX")
        );
        assert!(parsed.get("rows").and_then(Json::as_arr).is_some());
    }
}
