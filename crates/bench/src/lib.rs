//! The figure/table harness: runs the paper's workloads on the simulated
//! machines and prints each figure's rows.
//!
//! Every binary in `src/bin/` regenerates one figure or table:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig08a` | All-hit microbenchmark speedups |
//! | `fig08bc` | All-miss gather speedup + bandwidth vs index order |
//! | `fig09` | Speedup across the 12 workloads |
//! | `fig10` | Bandwidth utilization, row-buffer hit rate, occupancy |
//! | `fig11` | Instruction and MPKI reduction |
//! | `fig12` | DX100 vs the DMP indirect prefetcher |
//! | `fig13` | Tile-size sensitivity |
//! | `fig14` | Core/instance scaling |
//! | `table4` | Area and power model |
//! | `ablation` | Reorder/coalesce/interleave/LLC-injection ablations |
//!
//! Use `--scale <f>` to trade fidelity for runtime (default 1.0 ≈ seconds
//! per run; the paper's full sizes would take hours, like the original gem5
//! artifact's 84).

use dx100_sim::{RunStats, SystemConfig};
use dx100_workloads::{all_kernels, KernelRun, Mode, Scale, WorkloadResult};

/// Measurements for one kernel across the machines of interest.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Baseline run.
    pub baseline: WorkloadResult,
    /// DX100 run.
    pub dx100: WorkloadResult,
    /// DMP run (only when requested).
    pub dmp: Option<WorkloadResult>,
}

impl KernelRow {
    /// DX100 speedup over the baseline.
    pub fn speedup(&self) -> f64 {
        self.dx100.stats.speedup_over(&self.baseline.stats)
    }

    /// DX100 speedup over DMP.
    pub fn speedup_vs_dmp(&self) -> Option<f64> {
        self.dmp
            .as_ref()
            .map(|d| self.dx100.stats.speedup_over(&d.stats))
    }
}

/// Runs one kernel in the given modes (None = skip DMP).
pub fn run_kernel_row(kernel: &dyn KernelRun, with_dmp: bool, seed: u64) -> KernelRow {
    let baseline = kernel.run(Mode::Baseline, &SystemConfig::paper_baseline(), seed);
    let dx100 = kernel.run(Mode::Dx100, &SystemConfig::paper_dx100(), seed);
    let dmp = with_dmp.then(|| kernel.run(Mode::Dmp, &SystemConfig::paper_dmp(), seed));
    KernelRow {
        name: kernel_name(kernel),
        baseline,
        dx100,
        dmp,
    }
}

fn kernel_name(kernel: &dyn KernelRun) -> &'static str {
    kernel.name()
}

/// Runs all kernels at `scale`, optionally including DMP.
pub fn run_all(scale: f64, with_dmp: bool, seed: u64) -> Vec<KernelRow> {
    all_kernels(Scale(scale))
        .iter()
        .map(|k| {
            eprintln!("running {} ...", k.name());
            run_kernel_row(k.as_ref(), with_dmp, seed)
        })
        .collect()
}

/// Parses `--scale <f>` from the command line (default 1.0).
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Prints a measurement table row-per-kernel.
pub fn print_table(header: &[&str], rows: &[(String, Vec<f64>)]) {
    print!("{:<10}", "kernel");
    for h in header {
        print!(" {h:>12}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:<10}");
        for v in vals {
            print!(" {v:>12.3}");
        }
        println!();
    }
}

/// Geometric-mean summary line.
pub fn print_geomean(label: &str, values: &[f64]) {
    println!(
        "{label}: geomean {:.2}x over {} kernels",
        dx100_common::stats::geomean(values),
        values.len()
    );
}

/// Formats the headline stats of one run (debug helper).
pub fn summarize(name: &str, s: &RunStats) -> String {
    format!(
        "{name}: {} cycles, {} instrs, bw {:.1}% ({:.1} GB/s), rbh {:.1}%, occ {:.2}, llc-mpki {:.2}",
        s.cycles,
        s.instructions,
        s.bandwidth_utilization() * 100.0,
        s.bandwidth_gbps(),
        s.row_buffer_hit_rate() * 100.0,
        s.request_buffer_occupancy(),
        s.llc_mpki()
    )
}
