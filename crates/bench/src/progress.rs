//! Serialized sweep-progress reporting.
//!
//! Concurrent sweep workers used to `eprintln!` independently, which
//! interleaves garbled fragments once jobs overlap. This reporter owns the
//! counters *and* the formatting under one lock, so every start/finish
//! line is whole, numbered, and labelled with its kernel × machine job —
//! at any `--threads` value. Progress goes to stderr and is the only
//! sweep output that may vary with thread count (in *order* only); every
//! measured artifact stays bit-identical.

use std::sync::Mutex;

/// A sweep-wide progress reporter shared by worker threads.
pub struct Progress {
    total: usize,
    state: Mutex<Counters>,
}

#[derive(Default)]
struct Counters {
    started: usize,
    finished: usize,
}

impl Progress {
    /// A reporter for a sweep of `total` jobs.
    pub fn new(total: usize) -> Self {
        Progress {
            total,
            state: Mutex::new(Counters::default()),
        }
    }

    /// Announces a sweep with its job and worker counts (one header line).
    pub fn header(&self, what: &str, threads: usize) {
        eprintln!("{what}: {} jobs, {threads} thread(s)", self.total);
    }

    /// Records and prints a job start: `[ 3/36] start  is/baseline`.
    pub fn start(&self, label: &str) {
        let mut s = self.state.lock().unwrap();
        s.started += 1;
        let n = s.started;
        // Printed while holding the lock so lines never interleave.
        eprintln!("[{n:>2}/{}] start  {label}", self.total);
    }

    /// Records and prints a job finish: `[ 3/36] done   is/baseline  1.24s`.
    pub fn finish(&self, label: &str, seconds: f64) {
        let mut s = self.state.lock().unwrap();
        s.finished += 1;
        let n = s.finished;
        eprintln!("[{n:>2}/{}] done   {label}  {seconds:.2}s", self.total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_are_monotonic_under_concurrency() {
        let p = Arc::new(Progress::new(64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    for _ in 0..8 {
                        p.start("k/mode");
                        p.finish("k/mode", 0.0);
                    }
                });
            }
        });
        let s = p.state.lock().unwrap();
        assert_eq!(s.started, 64);
        assert_eq!(s.finished, 64);
    }
}
