//! Table 4: DX100 area and power (28 nm synthesis numbers, 14 nm scaling,
//! and the processor-overhead percentage).

use dx100_bench::BenchArgs;
use dx100_common::json::{obj, Json};
use dx100_core::area::{AreaModel, COMPONENTS};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unsupported("table4", true, false);
    println!("Table 4 — DX100 area and power at 28 nm\n");
    println!("{:<18} {:>10} {:>10}", "module", "area mm^2", "power mW");
    for c in COMPONENTS {
        println!("{:<18} {:>10.3} {:>10.2}", c.name, c.area_mm2, c.power_mw);
    }
    let m = AreaModel::paper();
    println!(
        "{:<18} {:>10.3} {:>10.2}",
        "Total",
        m.total_area_28nm_mm2(),
        m.total_power_28nm_mw()
    );
    println!();
    println!(
        "scaled to 14 nm: {:.2} mm^2 (paper: ~1.5)",
        m.total_area_14nm_mm2()
    );
    println!(
        "processor overhead: {:.1}% of a 4-core Skylake (paper: 3.7%)",
        m.processor_overhead_fraction() * 100.0
    );
    println!("dominant component: {}", m.dominant_component().name);
    args.emit_custom_report(&obj([
        ("schema_version", dx100_sim::report::SCHEMA_VERSION.into()),
        ("generator", "table4".into()),
        (
            "components",
            Json::Arr(
                COMPONENTS
                    .iter()
                    .map(|c| {
                        obj([
                            ("name", c.name.into()),
                            ("area_mm2", c.area_mm2.into()),
                            ("power_mw", c.power_mw.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_area_28nm_mm2", m.total_area_28nm_mm2().into()),
        ("total_power_28nm_mw", m.total_power_28nm_mw().into()),
        ("total_area_14nm_mm2", m.total_area_14nm_mm2().into()),
        (
            "processor_overhead_fraction",
            m.processor_overhead_fraction().into(),
        ),
        ("dominant_component", m.dominant_component().name.into()),
    ]));
}
