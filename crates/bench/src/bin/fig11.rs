//! Figure 11: (a) dynamic instruction reduction, (b) cache MPKI reduction.

use dx100_bench::{print_geomean, run_figure, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let fig = run_figure(&args, false);
    let rows = &fig.rows;
    println!("\nFigure 11 — core-side effects (paper: 3.6x instruction cut, 6.1x MPKI cut)");
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8}",
        "kernel", "instr-b", "instr-dx", "i-cut", "mpki-b", "mpki-dx", "m-cut"
    );
    let (mut icut, mut mcut) = (vec![], vec![]);
    for r in rows {
        let (b, d) = (&r.baseline.stats, &r.dx100.stats);
        let ic = b.instructions as f64 / d.instructions.max(1) as f64;
        let (mb, md) = (b.total_mpki(), d.total_mpki());
        let mc = if md > 0.0 { mb / md } else { f64::NAN };
        println!(
            "{:<8} {:>12} {:>12} {:>7.2}x {:>10.2} {:>10.2} {:>7.2}x",
            r.name, b.instructions, d.instructions, ic, mb, md, mc
        );
        icut.push(ic);
        if mc.is_finite() && mc > 0.0 {
            mcut.push(mc);
        }
    }
    print_geomean("fig11a instruction reduction", &icut);
    print_geomean("fig11b MPKI reduction", &mcut);
    fig.emit(&args, "fig11");
}
