//! Figure 13: performance sensitivity to the DX100 tile size (1K â 32K).
//!
//! The paper attributes the gain to coalescing (1.4Ã fewer memory accesses
//! at 32K vs 1K) and +27% row-buffer hits, so each row also reports the
//! geomean indirect-access count (normalized to the 1K row) and the mean
//! DX100-machine row-buffer hit rate.

use dx100_bench::BenchArgs;
use dx100_common::stats::geomean;
use dx100_sim::SystemConfig;
use dx100_workloads::{all_kernels, Mode, Scale};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unsupported("fig13", false, true);
    let scale = args.scale;
    let kernels = all_kernels(Scale(scale));
    println!("Figure 13 â tile-size sweep (paper: 1.7x @1K â 2.9x @32K,");
    println!("            1.4x fewer accesses and +27% RBH at 32K vs 1K)\n");
    // Baselines once per kernel.
    let mut base_cfg = SystemConfig::paper_baseline();
    base_cfg.obs.profile = args.profile;
    let baselines: Vec<_> = kernels
        .iter()
        .map(|k| {
            eprintln!("baseline {}", k.name());
            let r = k.run(Mode::Baseline, &base_cfg, args.seed);
            args.print_run_profile(&format!("baseline {}", k.name()), &r);
            r
        })
        .collect();
    let mut access_ref: Vec<f64> = Vec::new();
    for tile in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        let mut cfg = SystemConfig::paper_dx100().with_tile_elems(tile);
        cfg.obs.profile = args.profile;
        let mut speeds = Vec::new();
        let mut accesses = Vec::new();
        let mut rbh = Vec::new();
        for (k, base) in kernels.iter().zip(&baselines) {
            eprintln!("tile {tile} {}", k.name());
            let dx = k.run(Mode::Dx100, &cfg, args.seed);
            args.print_run_profile(&format!("tile {tile} {}", k.name()), &dx);
            speeds.push(dx.stats.speedup_over(&base.stats));
            if let Some(d) = &dx.stats.dx100 {
                accesses.push(
                    (d.indirect_line_reads + d.indirect_line_writes + d.stream_line_requests).max(1)
                        as f64,
                );
            }
            rbh.push(dx.stats.row_buffer_hit_rate());
        }
        if access_ref.is_empty() {
            access_ref = accesses.clone();
        }
        let rel: Vec<f64> = accesses
            .iter()
            .zip(&access_ref)
            .map(|(a, r)| a / r)
            .collect();
        println!(
            "tile {tile:>5}: speedup {:>5.2}x   accesses vs 1K {:>5.2}x   dx100 RBH {:>5.1}%",
            geomean(&speeds),
            geomean(&rel),
            100.0 * rbh.iter().sum::<f64>() / rbh.len().max(1) as f64,
        );
    }
}
