//! Figure 8a: all-hit microbenchmark speedups (instruction offload, atomic
//! elimination, scatter parallelization).

use dx100_bench::BenchArgs;
use dx100_common::json::{obj, Json};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unsupported("fig08a", true, false);
    println!("Figure 8a — all-hit microbenchmarks (paper: Gather-SPD 1.2x,");
    println!("Gather-Full 3.2x, RMW-Atomic 17.8x, RMW-NoAtom 3.7x, Scatter 6.6x)\n");
    let rows = dx100_workloads::micro::allhit::fig08a(1);
    for (label, speedup) in &rows {
        println!("{label:<14} {speedup:>8.2}x");
    }
    args.emit_custom_report(&obj([
        ("schema_version", dx100_sim::report::SCHEMA_VERSION.into()),
        ("generator", "fig08a".into()),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|(label, speedup)| {
                        obj([
                            ("name", label.to_string().into()),
                            ("speedup", (*speedup).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
}
