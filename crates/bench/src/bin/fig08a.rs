//! Figure 8a: all-hit microbenchmark speedups (instruction offload, atomic
//! elimination, scatter parallelization).

fn main() {
    println!("Figure 8a — all-hit microbenchmarks (paper: Gather-SPD 1.2x,");
    println!("Gather-Full 3.2x, RMW-Atomic 17.8x, RMW-NoAtom 3.7x, Scatter 6.6x)\n");
    for (label, speedup) in dx100_workloads::micro::allhit::fig08a(1) {
        println!("{label:<14} {speedup:>8.2}x");
    }
}
