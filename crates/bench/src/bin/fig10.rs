//! Figure 10: (a) DRAM bandwidth utilization, (b) row-buffer hit rate,
//! (c) request-buffer occupancy — baseline vs DX100 per workload.

use dx100_bench::{print_geomean, run_figure, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let fig = run_figure(&args, false);
    let rows = &fig.rows;
    println!("\nFigure 10 — memory-system metrics (paper: 3.9x BW, 2.7x RBH, 12.1x occupancy)");
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "bw-b%", "bw-dx%", "rbh-b%", "rbh-dx%", "occ-b", "occ-dx"
    );
    let (mut bwg, mut rbhg, mut occg) = (vec![], vec![], vec![]);
    for r in rows {
        let (b, d) = (&r.baseline.stats, &r.dx100.stats);
        println!(
            "{:<8} {:>9.1} {:>9.1} {:>8.1} {:>8.1} {:>8.3} {:>8.3}",
            r.name,
            b.bandwidth_utilization() * 100.0,
            d.bandwidth_utilization() * 100.0,
            b.row_buffer_hit_rate() * 100.0,
            d.row_buffer_hit_rate() * 100.0,
            b.request_buffer_occupancy(),
            d.request_buffer_occupancy(),
        );
        if b.bandwidth_utilization() > 0.0 {
            bwg.push(d.bandwidth_utilization() / b.bandwidth_utilization());
        }
        if b.row_buffer_hit_rate() > 0.0 {
            rbhg.push(d.row_buffer_hit_rate() / b.row_buffer_hit_rate());
        }
        if b.request_buffer_occupancy() > 0.0 {
            occg.push(d.request_buffer_occupancy() / b.request_buffer_occupancy());
        }
    }
    print_geomean("fig10a bandwidth gain", &bwg);
    print_geomean("fig10b row-buffer-hit gain", &rbhg);
    print_geomean("fig10c occupancy gain", &occg);
    fig.emit(&args, "fig10");
}
