//! Diagnostic probe for the all-miss scenarios (not a paper figure).
use dx100_sim::SystemConfig;
use dx100_workloads::micro::allmiss::{run_allmiss, Scenario};

fn main() {
    for (name, s) in [
        (
            "worst",
            Scenario {
                rbh: 0.0,
                chi: false,
                bgi: false,
            },
        ),
        (
            "rbh100-nobgi",
            Scenario {
                rbh: 1.0,
                chi: true,
                bgi: false,
            },
        ),
        (
            "best",
            Scenario {
                rbh: 1.0,
                chi: true,
                bgi: true,
            },
        ),
    ] {
        let mut cfg = SystemConfig::paper_dx100();
        if std::env::var("ONE_TILE").is_ok() {
            cfg = cfg.with_tile_elems(64 * 1024);
        }
        let r = run_allmiss(s, true, &cfg);
        let d = r.dx100.unwrap();
        println!(
            "{name}: cycles={} bw={:.1}% rbh={:.1}% occ={:.2} reads={} coalesced={} reqbuf_stall={} rowtable_stall={} spdreads={}",
            r.cycles,
            r.bandwidth_utilization() * 100.0,
            r.row_buffer_hit_rate() * 100.0,
            r.request_buffer_occupancy(),
            d.indirect_line_reads,
            d.words_coalesced,
            d.reqbuf_stall_cycles,
            d.rowtable_stall_cycles,
            d.stream_line_requests,
        );
    }
}
