//! Figure 14: scaling cores, memory channels, and DX100 instances
//! (4c/1x vs 8c/1x vs 8c/2x, each normalized to the same-core baseline).

use dx100_bench::{print_geomean, BenchArgs};
use dx100_sim::SystemConfig;
use dx100_workloads::{all_kernels, Mode, Scale};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unsupported("fig14", false, true);
    let scale = args.scale;
    println!("Figure 14 — scalability (paper: 2.6x @4c/1x, 2.5x @8c/1x, 2.7x @8c/2x)\n");
    for (label, cores, instances, data_mult) in [
        ("4 cores, 1 instance", 4usize, 1usize, 1.0),
        ("8 cores, 1 instance", 8, 1, 2.0),
        ("8 cores, 2 instances", 8, 2, 2.0),
    ] {
        // The paper doubles the dataset with the core count.
        let kernels = all_kernels(Scale(scale * data_mult));
        let mut base_cfg = SystemConfig::scaled(cores, 0);
        let mut dx_cfg = SystemConfig::scaled(cores, instances);
        base_cfg.obs.profile = args.profile;
        dx_cfg.obs.profile = args.profile;
        let mut speeds = Vec::new();
        for k in &kernels {
            eprintln!("{label}: {}", k.name());
            let b = k.run(Mode::Baseline, &base_cfg, args.seed);
            let d = k.run(Mode::Dx100, &dx_cfg, args.seed);
            args.print_run_profile(&format!("{label}: {} baseline", k.name()), &b);
            args.print_run_profile(&format!("{label}: {} dx100", k.name()), &d);
            speeds.push(d.stats.speedup_over(&b.stats));
        }
        print_geomean(label, &speeds);
    }
}
