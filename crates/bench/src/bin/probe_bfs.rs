//! Debug probe: BFS on the 8-core / 2-instance machine at tiny scale.

use dx100_sim::SystemConfig;
use dx100_workloads::{all_kernels, Mode, Scale};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03125);
    let kernels = all_kernels(Scale(scale * 2.0));
    let k = kernels.iter().find(|k| k.name() == "bfs").unwrap();
    let cfg = SystemConfig::scaled(8, 2);
    let r = k.run(Mode::Dx100, &cfg, 1);
    println!("bfs 8c/2x ok: {} cycles", r.stats.cycles);
}
