//! Debug probe: BFS on the 8-core / 2-instance machine at tiny scale.
//!
//! Shares the strict figure-binary flag table: `--scale` replaces the old
//! positional scale argument (a `--scale` of 1.0 reproduces the old
//! default probe size), and `--profile` prints the run's cycle attribution.

use dx100_bench::BenchArgs;
use dx100_sim::SystemConfig;
use dx100_workloads::{all_kernels, Mode, Scale};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unsupported("probe_bfs", false, true);
    let kernels = all_kernels(Scale(args.scale * 0.0625));
    let k = kernels.iter().find(|k| k.name() == "bfs").unwrap();
    let mut cfg = SystemConfig::scaled(8, 2);
    cfg.obs.profile = args.profile;
    let r = k.run(Mode::Dx100, &cfg, args.seed);
    println!(
        "bfs 8c/2x ok: {} cycles ({} skipped in {} spans)",
        r.stats.cycles, r.telemetry.skipped_cycles, r.telemetry.skip_events
    );
    args.print_run_profile("bfs 8c/2x", &r);
}
