//! Runs one simulation job from the command line and prints its report —
//! the CLI twin of a `dx100-serve` `POST /v1/jobs` submission.
//!
//! Both paths resolve the same [`JobSpec`](dx100_bench::JobSpec) through
//! the same code, so for any job the report here is byte-identical to the
//! `report` field the server returns (and caches). The spec's cache key
//! is printed on stderr so a served deployment's cache entries can be
//! cross-checked against local runs.

use dx100_bench::JobCli;

fn main() {
    let cli = match JobCli::try_parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", JobCli::USAGE);
            std::process::exit(2);
        }
    };
    eprintln!(
        "job {}/{} scale {} seed {} -> cache key {}",
        cli.spec.kernel,
        cli.spec.machine.label(),
        cli.spec.scale,
        cli.spec.seed,
        cli.spec.cache_key()
    );
    let report = match cli.spec.run(cli.threads) {
        Ok(r) => r.to_string() + "\n",
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    match &cli.json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote report to {}", path.display());
        }
        None => print!("{report}"),
    }
}
