//! Figures 8b/8c: all-miss Gather-Full speedup and bandwidth utilization
//! as a function of the baseline index ordering (row-buffer hit rate,
//! channel interleaving, bank-group interleaving).

use dx100_bench::BenchArgs;
use dx100_common::json::{obj, Json};
use dx100_sim::SystemConfig;
use dx100_workloads::micro::allmiss::{run_allmiss, Scenario};

fn main() {
    let args = BenchArgs::parse();
    args.warn_unsupported("fig08bc", true, false);
    println!("Figures 8b/8c — all-miss gather vs index order");
    println!("(paper: max 9.9x at worst order; DX100 holds 82-85% BW everywhere)\n");
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "scenario", "speedup", "base-bw%", "dx100-bw%", "base-rbh%", "dx-rbh%"
    );
    let mut rows = Vec::new();
    for (name, s) in Scenario::sweep() {
        let base = run_allmiss(s, false, &SystemConfig::paper_baseline());
        let dx = run_allmiss(s, true, &SystemConfig::paper_dx100());
        let speedup = base.cycles as f64 / dx.cycles.max(1) as f64;
        println!(
            "{:<18} {:>8.2}x {:>9.1} {:>10.1} {:>9.1} {:>9.1}",
            name,
            speedup,
            base.bandwidth_utilization() * 100.0,
            dx.bandwidth_utilization() * 100.0,
            base.row_buffer_hit_rate() * 100.0,
            dx.row_buffer_hit_rate() * 100.0,
        );
        rows.push(obj([
            ("name", name.into()),
            ("speedup", speedup.into()),
            ("baseline_bandwidth", base.bandwidth_utilization().into()),
            ("dx100_bandwidth", dx.bandwidth_utilization().into()),
            ("baseline_rbh", base.row_buffer_hit_rate().into()),
            ("dx100_rbh", dx.row_buffer_hit_rate().into()),
        ]));
    }
    args.emit_custom_report(&obj([
        ("schema_version", dx100_sim::report::SCHEMA_VERSION.into()),
        ("generator", "fig08bc".into()),
        ("rows", Json::Arr(rows)),
    ]));
}
