//! Figure 12: DX100 vs the DMP indirect prefetcher — speedup and bandwidth.

use dx100_bench::{print_geomean, run_figure, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let fig = run_figure(&args, true);
    let rows = &fig.rows;
    println!("\nFigure 12 — DX100 vs DMP (paper: 2.0x speedup, 3.3x bandwidth)");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10}",
        "kernel", "dx-vs-dmp", "dmp-bw%", "dx-bw%", "dmp-vs-base"
    );
    let (mut sp, mut bw) = (vec![], vec![]);
    for r in rows {
        let dmp = r.dmp.as_ref().expect("fig12 runs DMP");
        let s = r.speedup_vs_dmp().unwrap();
        println!(
            "{:<8} {:>11.2}x {:>10.1} {:>10.1} {:>9.2}x",
            r.name,
            s,
            dmp.stats.bandwidth_utilization() * 100.0,
            r.dx100.stats.bandwidth_utilization() * 100.0,
            r.baseline.stats.cycles as f64 / dmp.stats.cycles.max(1) as f64,
        );
        sp.push(s);
        if dmp.stats.bandwidth_utilization() > 0.0 {
            bw.push(r.dx100.stats.bandwidth_utilization() / dmp.stats.bandwidth_utilization());
        }
    }
    print_geomean("fig12a speedup vs DMP", &sp);
    print_geomean("fig12b bandwidth vs DMP", &bw);
    fig.emit(&args, "fig12");
}
