//! Ablation study: switch off each of DX100's three bandwidth techniques
//! (reordering, coalescing, interleaving) and the direct-DRAM path, and
//! measure the all-miss gather plus two representative kernels.

use dx100_sim::SystemConfig;
use dx100_workloads::kernels::is::IntegerSort;
use dx100_workloads::kernels::ume::Ume;
use dx100_workloads::micro::allmiss::{run_allmiss, Scenario};
use dx100_workloads::{KernelRun, Mode, Scale};

fn variant(name: &str, f: impl Fn(&mut dx100_core::Dx100Config)) -> (String, SystemConfig) {
    let mut cfg = SystemConfig::paper_dx100();
    f(cfg.dx100.as_mut().unwrap());
    (name.to_string(), cfg)
}

fn main() {
    let args = dx100_bench::BenchArgs::parse();
    args.warn_unsupported("ablation", false, true);
    let scale = args.scale;
    let variants = vec![
        variant("full", |_| {}),
        variant("no-reorder", |d| d.reorder = false),
        variant("no-coalesce", |d| d.coalesce = false),
        variant("no-interleave", |d| d.interleave = false),
        variant("llc-inject", |d| d.direct_dram = false),
    ];
    let worst = Scenario {
        rbh: 0.0,
        chi: false,
        bgi: false,
    };
    let kernels: Vec<Box<dyn KernelRun>> = vec![
        Box::new(IntegerSort::new(Scale(scale * 0.5))),
        Box::new(Ume::zone(Scale(scale * 0.5), false)),
    ];
    println!("Ablations — DX100 cycles (lower is better) and BW utilization\n");
    println!(
        "{:<14} {:>12} {:>8} {:>12} {:>12}",
        "variant", "allmiss-cyc", "bw%", "is-cyc", "gzz-cyc"
    );
    for (name, mut cfg) in variants {
        cfg.obs.profile = args.profile;
        let am = run_allmiss(worst, true, &cfg);
        let mut cols = vec![
            format!("{:>12}", am.cycles),
            format!("{:>8.1}", am.bandwidth_utilization() * 100.0),
        ];
        for k in &kernels {
            eprintln!("{name}: {}", k.name());
            let r = k.run(Mode::Dx100, &cfg, args.seed);
            args.print_run_profile(&format!("{name}: {}", k.name()), &r);
            cols.push(format!("{:>12}", r.stats.cycles));
        }
        println!("{:<14} {}", name, cols.join(" "));
    }
}
