//! CI gate for sampled simulation accuracy.
//!
//! Runs the Figure 9 sweep twice at the given `--scale` — once in full
//! detail and once in `--sample` mode — and exits non-zero if any kernel's
//! DX100-over-baseline speedup, or the geomean across kernels, deviates
//! from the full run by more than [`TOLERANCE`] (relative).

use dx100_bench::{run_figure, BenchArgs};
use dx100_common::stats::geomean;

/// Maximum relative deviation of a sampled speedup from the full-run value.
const TOLERANCE: f64 = 0.25;

fn rel_dev(sampled: f64, full: f64) -> f64 {
    (sampled - full).abs() / full.abs().max(1e-12)
}

fn main() {
    let mut args = BenchArgs::parse();

    args.sample = false;
    let full = run_figure(&args, false);
    args.sample = true;
    let sampled = run_figure(&args, false);

    assert_eq!(full.rows.len(), sampled.rows.len());
    let mut failures = 0;
    let mut full_speeds = Vec::new();
    let mut sampled_speeds = Vec::new();
    println!(
        "\nsample_check: per-kernel speedup, full vs sampled (tolerance {:.0}%)",
        TOLERANCE * 100.0
    );
    for (f, s) in full.rows.iter().zip(&sampled.rows) {
        assert_eq!(f.name, s.name, "row order must match between sweeps");
        let (sf, ss) = (f.speedup(), s.speedup());
        full_speeds.push(sf);
        sampled_speeds.push(ss);
        let dev = rel_dev(ss, sf);
        let ok = dev <= TOLERANCE;
        println!(
            "  {:10} full {sf:6.2}x  sampled {ss:6.2}x  dev {:5.1}%  {}",
            f.name,
            dev * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    let (gf, gs) = (geomean(&full_speeds), geomean(&sampled_speeds));
    let gdev = rel_dev(gs, gf);
    let gok = gdev <= TOLERANCE;
    println!(
        "  {:10} full {gf:6.2}x  sampled {gs:6.2}x  dev {:5.1}%  {}",
        "geomean",
        gdev * 100.0,
        if gok { "ok" } else { "FAIL" }
    );
    if !gok {
        failures += 1;
    }
    println!(
        "sample_check: full sweep {:.1}s, sampled sweep {:.1}s ({} threads)",
        full.total_seconds, sampled.total_seconds, sampled.threads
    );
    if failures > 0 {
        eprintln!("sample_check: {failures} metric(s) outside the {TOLERANCE:.2} tolerance");
        std::process::exit(1);
    }
    println!("sample_check: all speedups within tolerance");
}
