//! Figures 9, 10, and 11 from a single set of runs (each kernel is
//! simulated once per machine; the three figures are different views of
//! the same measurements).

use dx100_bench::{print_geomean, run_figure, summarize, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let fig = run_figure(&args, false);
    let rows = &fig.rows;

    println!("\n=== Figure 9 — speedup over baseline (paper: geomean 2.6x) ===");
    let mut speeds = Vec::new();
    for r in rows {
        println!("{:<8} {:>8.2}x", r.name, r.speedup());
        speeds.push(r.speedup());
    }
    print_geomean("fig09", &speeds);

    println!("\n=== Figure 10 — memory system (paper: 3.9x BW, 2.7x RBH, 12.1x occupancy) ===");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "bw-b%", "bw-dx%", "rbh-b%", "rbh-dx%", "occ-b", "occ-dx"
    );
    let (mut bwg, mut rbhg, mut occg) = (vec![], vec![], vec![]);
    for r in rows {
        let (b, d) = (&r.baseline.stats, &r.dx100.stats);
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.3} {:>8.3}",
            r.name,
            b.bandwidth_utilization() * 100.0,
            d.bandwidth_utilization() * 100.0,
            b.row_buffer_hit_rate() * 100.0,
            d.row_buffer_hit_rate() * 100.0,
            b.request_buffer_occupancy(),
            d.request_buffer_occupancy(),
        );
        if b.bandwidth_utilization() > 0.0 {
            bwg.push(d.bandwidth_utilization() / b.bandwidth_utilization());
        }
        if b.row_buffer_hit_rate() > 0.0 {
            rbhg.push(d.row_buffer_hit_rate() / b.row_buffer_hit_rate());
        }
        if b.request_buffer_occupancy() > 0.0 {
            occg.push(d.request_buffer_occupancy() / b.request_buffer_occupancy());
        }
    }
    print_geomean("fig10a bandwidth gain", &bwg);
    print_geomean("fig10b row-buffer-hit gain", &rbhg);
    print_geomean("fig10c occupancy gain", &occg);

    println!("\n=== Figure 11 — instruction & MPKI reduction (paper: 3.6x, 6.1x) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>9} {:>9} {:>8}",
        "kernel", "instr-b", "instr-dx", "i-cut", "mpki-b", "mpki-dx", "m-cut"
    );
    let (mut icut, mut mcut) = (vec![], vec![]);
    for r in rows {
        let (b, d) = (&r.baseline.stats, &r.dx100.stats);
        let ic = b.instructions as f64 / d.instructions.max(1) as f64;
        let (mb, md) = (b.total_mpki(), d.total_mpki());
        let mc = if md > 0.0 { mb / md } else { f64::NAN };
        println!(
            "{:<8} {:>12} {:>12} {:>7.2}x {:>9.2} {:>9.2} {:>7.2}x",
            r.name, b.instructions, d.instructions, ic, mb, md, mc
        );
        icut.push(ic);
        if mc.is_finite() && mc > 0.0 {
            mcut.push(mc);
        }
    }
    print_geomean("fig11a instruction reduction", &icut);
    print_geomean("fig11b MPKI reduction", &mcut);

    println!("\n=== raw rows ===");
    for r in rows {
        println!(
            "{}",
            summarize(&format!("{} base ", r.name), &r.baseline.stats)
        );
        println!(
            "{}",
            summarize(&format!("{} dx100", r.name), &r.dx100.stats)
        );
    }
    fig.emit(&args, "main_results");
}
