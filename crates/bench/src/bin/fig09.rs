//! Figure 9: DX100 speedup over the multicore baseline for each workload.

use dx100_bench::{print_geomean, print_table, run_figure, summarize, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let fig = run_figure(&args, false);
    let rows = &fig.rows;
    let mut speeds = Vec::new();
    let table: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|r| {
            eprintln!("  {}", summarize("base ", &r.baseline.stats));
            eprintln!("  {}", summarize("dx100", &r.dx100.stats));
            speeds.push(r.speedup());
            (r.name.to_string(), vec![r.speedup()])
        })
        .collect();
    println!("\nFigure 9 — DX100 speedup over baseline (paper: geomean 2.6x)");
    print_table(&["speedup"], &table);
    print_geomean("fig09", &speeds);
    fig.emit(&args, "fig09");
}
