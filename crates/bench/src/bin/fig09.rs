//! Figure 9: DX100 speedup over the multicore baseline for each workload.

use dx100_bench::{print_geomean, print_table, run_all_with, summarize, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let rows = run_all_with(args.scale, false, 1, &args.observability());
    let mut speeds = Vec::new();
    let table: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|r| {
            eprintln!("  {}", summarize("base ", &r.baseline.stats));
            eprintln!("  {}", summarize("dx100", &r.dx100.stats));
            speeds.push(r.speedup());
            (r.name.to_string(), vec![r.speedup()])
        })
        .collect();
    println!("\nFigure 9 — DX100 speedup over baseline (paper: geomean 2.6x)");
    print_table(&["speedup"], &table);
    print_geomean("fig09", &speeds);
    args.emit_artifacts("fig09", &rows);
}
