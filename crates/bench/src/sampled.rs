//! The sampled figure sweep: one entry point that row-based figure
//! binaries call in place of [`run_all_with`](crate::run_all_with).
//!
//! Under `--sample`, every kernel × machine becomes a set of independent
//! tasks — one per representative window for kernels exposing an interval
//! decomposition ([`KernelRun::prepare_sampled`]), one full run otherwise —
//! executed across `--threads` workers by
//! [`run_parallel`](dx100_sampling::run_parallel). Window results are
//! weighted back into full-run estimates, and the per-metric sampling
//! errors land in the `--json` report's `sampling` block. Without
//! `--sample` the sweep is the usual serial full-fidelity one, but still
//! timed per run so both modes emit a `<generator>_sim_walltime.json`.

use std::time::Instant;

use dx100_common::json::{obj, Json};
use dx100_common::pool::run_parallel;
use dx100_sampling::{self as sampling, SamplePlan, SampledRun, SamplingErrors, WarmCache};
use dx100_sim::report::SCHEMA_VERSION;
use dx100_sim::{ObservabilityConfig, RunStats, SystemConfig};
use dx100_workloads::{all_kernels, KernelRun, Mode, Scale, WorkloadResult};

use crate::{report_json, trace_json, BenchArgs, KernelRow, Progress};

/// Wall-clock seconds spent simulating one kernel × machine.
#[derive(Debug, Clone)]
pub struct WalltimeEntry {
    /// Kernel name.
    pub kernel: &'static str,
    /// Machine configuration label (`baseline` / `dx100` / `dmp`).
    pub config: &'static str,
    /// Simulation seconds (summed across this run's windows when sampled).
    pub seconds: f64,
    /// Windows simulated, when this run used interval sampling.
    pub windows: Option<usize>,
    /// Cycles elided by event-driven skipping (0 for windowed sampled
    /// runs, whose stats are extrapolated rather than simulated end-to-end).
    pub skipped_cycles: u64,
    /// Quiescent spans entered by the skip layer.
    pub skip_events: u64,
}

/// Per kernel × machine sampling metadata for the report.
#[derive(Debug, Clone)]
struct SampleInfo {
    kernel: &'static str,
    config: &'static str,
    windows: usize,
    total_intervals: usize,
    errors: SamplingErrors,
}

/// A figure sweep's measurements: rows for the figure, timing for the
/// walltime report, and sampling metadata when `--sample` was on.
pub struct FigureRun {
    /// One row per kernel, same shape the full-fidelity sweep produces.
    pub rows: Vec<KernelRow>,
    /// Per kernel × machine simulation seconds.
    pub walltime: Vec<WalltimeEntry>,
    /// End-to-end sweep seconds (includes profiling/cluster/reassembly).
    pub total_seconds: f64,
    /// `"full"` or `"sampled"`.
    pub mode: &'static str,
    /// Worker threads used (1 for the serial full sweep).
    pub threads: usize,
    /// Sampling metadata (`None` for the full sweep).
    sampling: Option<Vec<SampleInfo>>,
    scale: f64,
    seed: u64,
}

/// Runs the figure's kernel × machine sweep per `args`: serial
/// full-fidelity by default, the parallel sampled pipeline under
/// `--sample`.
pub fn run_figure(args: &BenchArgs, with_dmp: bool) -> FigureRun {
    if args.sample {
        if args.trace.is_some() || args.epoch.is_some() {
            eprintln!("note: --trace/--epoch are ignored under --sample");
        }
        if args.profile {
            eprintln!(
                "note: --profile only covers full-fidelity runs; windowed sampled \
                 runs extrapolate stats and carry no attribution"
            );
        }
        run_sampled(args.scale, with_dmp, args.seed, args.threads)
    } else {
        run_full(
            args.scale,
            with_dmp,
            args.seed,
            &args.observability(),
            args.threads,
        )
    }
}

/// Executes the full-fidelity (kernel × machine) job matrix on `threads`
/// workers, returning the figure rows plus one per-job walltime entry.
///
/// Jobs are enumerated up front, kernel-major with machines in baseline /
/// dx100 / dmp order, and the shared pool collects results in that job
/// order — so rows, and everything derived from them, are bit-identical at
/// any thread count. Each job constructs its entire driver state (dataset
/// walk, `System`, observability sinks) on its worker thread and is timed
/// with its own [`Instant`] span, so per-job seconds stay accurate under
/// concurrency.
pub(crate) fn run_matrix(
    kernels: &[Box<dyn KernelRun + Send + Sync>],
    with_dmp: bool,
    seed: u64,
    obs: &ObservabilityConfig,
    threads: usize,
    what: &str,
) -> (Vec<KernelRow>, Vec<WalltimeEntry>) {
    let modes: Vec<(Mode, SystemConfig)> = sweep_modes(with_dmp)
        .into_iter()
        .map(|(m, mut cfg)| {
            cfg.obs = obs.clone();
            (m, cfg)
        })
        .collect();
    let jobs = kernels.len() * modes.len();
    let threads = threads.clamp(1, jobs.max(1));
    let progress = Progress::new(jobs);
    progress.header(what, threads);
    let mut tasks: Vec<Box<dyn FnOnce() -> (WorkloadResult, f64) + Send + '_>> = Vec::new();
    for kernel in kernels {
        for (mode, cfg) in &modes {
            let progress = &progress;
            tasks.push(Box::new(move || {
                let label = format!("{}/{}", kernel.name(), mode.label());
                progress.start(&label);
                let t = Instant::now();
                let r = kernel.run(*mode, cfg, seed);
                let secs = t.elapsed().as_secs_f64();
                progress.finish(&label, secs);
                (r, secs)
            }));
        }
    }
    let mut results = run_parallel(tasks, threads).into_iter();
    let mut rows = Vec::with_capacity(kernels.len());
    let mut walltime = Vec::with_capacity(jobs);
    for kernel in kernels {
        let mut take = |mode: Mode| {
            let (r, secs) = results.next().expect("one result per enumerated job");
            walltime.push(WalltimeEntry {
                kernel: kernel.name(),
                config: mode.label(),
                seconds: secs,
                windows: None,
                skipped_cycles: r.telemetry.skipped_cycles,
                skip_events: r.telemetry.skip_events,
            });
            r
        };
        rows.push(KernelRow {
            name: kernel.name(),
            baseline: take(Mode::Baseline),
            dx100: take(Mode::Dx100),
            dmp: with_dmp.then(|| take(Mode::Dmp)),
        });
    }
    (rows, walltime)
}

/// The timed parallel full-fidelity sweep.
fn run_full(
    scale: f64,
    with_dmp: bool,
    seed: u64,
    obs: &ObservabilityConfig,
    threads: usize,
) -> FigureRun {
    let start = Instant::now();
    let kernels = all_kernels(Scale(scale));
    let jobs = kernels.len() * if with_dmp { 3 } else { 2 };
    let threads = threads.clamp(1, jobs.max(1));
    let (rows, walltime) = run_matrix(&kernels, with_dmp, seed, obs, threads, "full sweep");
    FigureRun {
        rows,
        walltime,
        total_seconds: start.elapsed().as_secs_f64(),
        mode: "full",
        threads,
        sampling: None,
        scale,
        seed,
    }
}

/// The modes a sweep runs, with their machine configurations — built by
/// [`crate::jobspec::machine_config`], the same constructor the job/serve
/// path resolves specs through.
fn sweep_modes(with_dmp: bool) -> Vec<(Mode, SystemConfig)> {
    let mut m = vec![
        (Mode::Baseline, crate::machine_config(Mode::Baseline)),
        (Mode::Dx100, crate::machine_config(Mode::Dx100)),
    ];
    if with_dmp {
        m.push((Mode::Dmp, crate::machine_config(Mode::Dmp)));
    }
    m
}

/// One kernel × machine of the sampled sweep, after planning.
struct Prep {
    kernel: usize,
    mode: Mode,
    /// `Some` when the kernel exposes an interval decomposition. The
    /// [`WarmCache`] shares warmed checkpoints across this run's windows.
    windowed: Option<(SampledRun, SamplePlan, WarmCache)>,
}

/// One task's output: a window's ROI stats or a full run, plus seconds.
enum Out {
    // Boxed: both payloads are hundreds of bytes and travel through the
    // worker pool's result slots; keep the enum pointer-sized.
    Window(Box<RunStats>, f64),
    Full(Box<WorkloadResult>, f64),
}

/// The parallel sampled sweep.
fn run_sampled(scale: f64, with_dmp: bool, seed: u64, threads: usize) -> FigureRun {
    let start = Instant::now();
    let kernels = all_kernels(Scale(scale));
    let modes = sweep_modes(with_dmp);

    // Profile + cluster + select (cheap, serial, deterministic in seed).
    let mut preps = Vec::new();
    for (ki, k) in kernels.iter().enumerate() {
        for (mode, cfg) in &modes {
            let windowed = k.prepare_sampled(*mode, cfg, seed).map(|run| {
                let plan = sampling::plan(&run, seed, &format!("{}/{}", k.name(), mode.label()));
                (run, plan, WarmCache::default())
            });
            preps.push(Prep {
                kernel: ki,
                mode: *mode,
                windowed,
            });
        }
    }
    let windowed_runs = preps.iter().filter(|p| p.windowed.is_some()).count();
    eprintln!(
        "sampled sweep: {} kernel-machine runs ({} windowed), {} threads",
        preps.len(),
        windowed_runs,
        threads
    );

    // One task per window (windowed) or per run (fallback); results come
    // back in task order, so the reassembly below is thread-count
    // independent.
    let mut keys: Vec<usize> = Vec::new();
    let mut tasks: Vec<Box<dyn FnOnce() -> Out + Send + '_>> = Vec::new();
    for (pi, p) in preps.iter().enumerate() {
        match &p.windowed {
            Some((run, plan, warm)) => {
                for w in &plan.windows {
                    let w = *w;
                    keys.push(pi);
                    tasks.push(Box::new(move || {
                        let t = Instant::now();
                        let stats = sampling::replay_window(run, w, warm);
                        Out::Window(Box::new(stats), t.elapsed().as_secs_f64())
                    }));
                }
            }
            None => {
                let kernel = &kernels[p.kernel];
                let (mode, cfg) = (p.mode, &modes.iter().find(|(m, _)| *m == p.mode).unwrap().1);
                keys.push(pi);
                tasks.push(Box::new(move || {
                    let t = Instant::now();
                    let r = kernel.run(mode, cfg, seed);
                    Out::Full(Box::new(r), t.elapsed().as_secs_f64())
                }));
            }
        }
    }
    let results = sampling::run_parallel(tasks, threads);

    // Reassemble per kernel × machine.
    let mut outs: Vec<Vec<Out>> = preps.iter().map(|_| Vec::new()).collect();
    for (key, out) in keys.into_iter().zip(results) {
        outs[key].push(out);
    }
    let mut walltime = Vec::new();
    let mut infos = Vec::new();
    let mut by_kernel: Vec<Vec<(Mode, WorkloadResult)>> =
        kernels.iter().map(|_| Vec::new()).collect();
    for (p, outs) in preps.iter().zip(outs) {
        let name = kernels[p.kernel].name();
        let result = match &p.windowed {
            Some((run, plan, _)) => {
                let mut stats = Vec::with_capacity(outs.len());
                let mut secs = 0.0;
                for o in outs {
                    match o {
                        Out::Window(s, t) => {
                            stats.push(*s);
                            secs += t;
                        }
                        Out::Full(..) => unreachable!("windowed prep got a full-run result"),
                    }
                }
                let rec = sampling::reconstitute(plan, &stats);
                walltime.push(WalltimeEntry {
                    kernel: name,
                    config: p.mode.label(),
                    seconds: secs,
                    windows: Some(rec.windows),
                    skipped_cycles: 0,
                    skip_events: 0,
                });
                infos.push(SampleInfo {
                    kernel: name,
                    config: p.mode.label(),
                    windows: rec.windows,
                    total_intervals: rec.total_intervals,
                    errors: rec.errors,
                });
                WorkloadResult {
                    stats: rec.stats,
                    checksum: run.checksum,
                    telemetry: Default::default(),
                }
            }
            None => {
                let mut it = outs.into_iter();
                let (r, secs) = match it.next() {
                    Some(Out::Full(r, t)) => (*r, t),
                    _ => unreachable!("fallback prep must produce exactly one full run"),
                };
                walltime.push(WalltimeEntry {
                    kernel: name,
                    config: p.mode.label(),
                    seconds: secs,
                    windows: None,
                    skipped_cycles: r.telemetry.skipped_cycles,
                    skip_events: r.telemetry.skip_events,
                });
                r
            }
        };
        by_kernel[p.kernel].push((p.mode, result));
    }

    let rows = kernels
        .iter()
        .zip(by_kernel)
        .map(|(k, mut results)| {
            let mut take = |mode: Mode| {
                let i = results.iter().position(|(m, _)| *m == mode);
                i.map(|i| results.swap_remove(i).1)
            };
            KernelRow {
                name: k.name(),
                baseline: take(Mode::Baseline).expect("baseline always runs"),
                dx100: take(Mode::Dx100).expect("dx100 always runs"),
                dmp: take(Mode::Dmp),
            }
        })
        .collect();

    FigureRun {
        rows,
        walltime,
        total_seconds: start.elapsed().as_secs_f64(),
        mode: "sampled",
        threads,
        sampling: Some(infos),
        scale,
        seed,
    }
}

impl FigureRun {
    /// The `sampling` block of the `--json` report (`Json::Null` for full
    /// sweeps).
    pub fn sampling_json(&self) -> Json {
        match &self.sampling {
            None => Json::Null,
            Some(infos) => obj([
                ("threads", self.threads.into()),
                ("seed", self.seed.into()),
                (
                    "runs",
                    Json::Arr(
                        infos
                            .iter()
                            .map(|i| {
                                obj([
                                    ("kernel", i.kernel.into()),
                                    ("config", i.config.into()),
                                    ("windows", i.windows.into()),
                                    ("total_intervals", i.total_intervals.into()),
                                    (
                                        "errors",
                                        obj([
                                            ("cycles", i.errors.cycles.into()),
                                            (
                                                "row_buffer_hit_rate",
                                                i.errors.row_buffer_hit_rate.into(),
                                            ),
                                            ("llc_mpki", i.errors.llc_mpki.into()),
                                            ("lower_bound", i.errors.lower_bound.into()),
                                        ]),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// The walltime report (`<generator>_sim_walltime.json` contents):
    /// the worker-thread count used, per-job seconds (one entry per
    /// kernel × machine, each timed on its own worker), and the end-to-end
    /// sweep total.
    pub fn walltime_json(&self, generator: &str) -> Json {
        obj([
            ("schema_version", SCHEMA_VERSION.into()),
            ("generator", generator.into()),
            ("mode", self.mode.into()),
            ("scale", self.scale.into()),
            ("threads", self.threads.into()),
            ("jobs", self.walltime.len().into()),
            (
                "entries",
                Json::Arr(
                    self.walltime
                        .iter()
                        .map(|e| {
                            obj([
                                ("kernel", e.kernel.into()),
                                ("config", e.config.into()),
                                ("seconds", e.seconds.into()),
                                (
                                    "windows",
                                    match e.windows {
                                        Some(w) => w.into(),
                                        None => Json::Null,
                                    },
                                ),
                                ("skipped_cycles", e.skipped_cycles.into()),
                                ("skip_events", e.skip_events.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_seconds", self.total_seconds.into()),
        ])
    }

    /// The full `--json` report: [`report_json`] plus `mode` and
    /// `sampling` fields.
    pub fn report_json(&self, generator: &str) -> Json {
        let base = report_json(generator, self.scale, &self.rows);
        match base {
            Json::Obj(mut fields) => {
                fields.push(("mode".into(), self.mode.into()));
                fields.push(("sampling".into(), self.sampling_json()));
                Json::Obj(fields)
            }
            other => other,
        }
    }

    /// Writes the figure's artifacts: the `--json` report and `--trace`
    /// file when requested, and `<generator>_sim_walltime.json` always.
    /// Under `--profile`, first prints the per-run bottleneck summaries.
    pub fn emit(&self, args: &BenchArgs, generator: &str) {
        args.print_profile(&self.rows);
        if let Some(path) = &args.json {
            crate::write_or_die(path, &(self.report_json(generator).to_string() + "\n"));
            eprintln!("wrote report to {}", path.display());
        }
        if let Some(path) = &args.trace {
            crate::write_or_die(path, &trace_json(&self.rows));
            eprintln!("wrote trace to {} (open in Perfetto)", path.display());
        }
        let wt = std::path::PathBuf::from(format!("{generator}_sim_walltime.json"));
        crate::write_or_die(&wt, &(self.walltime_json(generator).to_string() + "\n"));
        eprintln!(
            "wrote walltime report to {} ({:.1}s total, {} mode)",
            wt.display(),
            self.total_seconds,
            self.mode
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(scale: f64, sample: bool) -> BenchArgs {
        BenchArgs {
            scale,
            sample,
            threads: 2,
            ..BenchArgs::default()
        }
    }

    #[test]
    fn sampled_sweep_matches_full_sweep_shape() {
        // Smoke scale: every kernel at minimum size.
        let full = run_figure(&args(1e-9, false), false);
        let sampled = run_figure(&args(1e-9, true), false);
        assert_eq!(full.rows.len(), sampled.rows.len());
        for (f, s) in full.rows.iter().zip(&sampled.rows) {
            assert_eq!(f.name, s.name);
            assert!(s.baseline.stats.cycles > 0, "{}", s.name);
            assert!(s.dx100.stats.cycles > 0, "{}", s.name);
            assert_eq!(f.baseline.checksum, s.baseline.checksum, "{}", s.name);
        }
        assert_eq!(full.mode, "full");
        assert_eq!(sampled.mode, "sampled");
        assert!(sampled.sampling.is_some());
        // is + pr expose windowed decompositions in every machine config.
        let infos = sampled.sampling.as_ref().unwrap();
        assert!(infos.iter().any(|i| i.kernel == "is"));
        assert!(infos.iter().any(|i| i.kernel == "pr"));
        assert_eq!(full.walltime.len(), sampled.walltime.len());
    }

    #[test]
    fn sampled_sweep_is_thread_count_independent() {
        let mut a1 = args(1e-9, true);
        a1.threads = 1;
        let mut a4 = args(1e-9, true);
        a4.threads = 4;
        let r1 = run_figure(&a1, false);
        let r4 = run_figure(&a4, false);
        for (x, y) in r1.rows.iter().zip(&r4.rows) {
            assert_eq!(
                x.baseline.stats.cycles, y.baseline.stats.cycles,
                "{}",
                x.name
            );
            assert_eq!(x.dx100.stats.cycles, y.dx100.stats.cycles, "{}", x.name);
        }
    }

    #[test]
    fn walltime_and_sampling_reports_have_stable_shape() {
        let fig = run_figure(&args(1e-9, true), false);
        let wt = Json::parse(&fig.walltime_json("fig09").to_string()).unwrap();
        assert_eq!(wt.get("mode").and_then(Json::as_str), Some("sampled"));
        assert!(wt.get("entries").and_then(Json::as_arr).is_some());
        assert!(wt.get("total_seconds").and_then(Json::as_f64).is_some());
        let rep = Json::parse(&fig.report_json("fig09").to_string()).unwrap();
        assert_eq!(rep.get("mode").and_then(Json::as_str), Some("sampled"));
        let sampling = rep.get("sampling").unwrap();
        assert!(sampling.get("runs").and_then(Json::as_arr).is_some());
    }
}
