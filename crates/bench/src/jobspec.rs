//! The shared job specification: one (kernel × machine × scale × mode
//! flags) description that the CLI (`job` binary, figure sweeps) and the
//! `dx100-serve` daemon both resolve into *the same* `SystemConfig` and
//! driver — the guarantee that a served result is byte-identical to the
//! local run of the same job.
//!
//! A [`JobSpec`] holds exactly the knobs that determine the report bytes:
//! kernel, machine, scale, seed, and the mode flags (`sample`,
//! `cycle_skip`, `profile`, `epoch`). Execution-only knobs — worker
//! threads for sampled replay, whether the HTTP client waits — are *not*
//! part of the spec: the simulator's determinism contract makes them
//! invisible in the output, so including them would only fragment the
//! result cache. [`JobSpec::cache_key`] hashes the canonical JSON form
//! ([`JobSpec::to_json`], fixed field order) with FNV-1a 64
//! (`dx100_common::hash`), and [`JobSpec::run`] produces the versioned
//! report the cache stores verbatim.

use std::path::PathBuf;

use dx100_common::hash::{fnv1a_64, hex16};
use dx100_common::json::{obj, Json};
use dx100_sampling::{self as sampling, WarmCache};
use dx100_sim::report::{run_stats_json, SCHEMA_VERSION};
use dx100_sim::{ObservabilityConfig, SystemConfig};
use dx100_workloads::{all_kernels, KernelRun, Mode, Scale};

/// Builds the machine configuration for `mode` — the single place the
/// paper's three machines are constructed for measurement, shared by the
/// figure sweeps, the `job` CLI, and the serve daemon.
pub fn machine_config(mode: Mode) -> SystemConfig {
    match mode {
        Mode::Baseline => SystemConfig::paper_baseline(),
        Mode::Dx100 => SystemConfig::paper_dx100(),
        Mode::Dmp => SystemConfig::paper_dmp(),
    }
}

/// Parses a machine label (`baseline` / `dmp` / `dx100`).
pub fn machine_from_label(label: &str) -> Result<Mode, String> {
    Mode::ALL
        .into_iter()
        .find(|m| m.label() == label)
        .ok_or_else(|| format!("unknown machine `{label}` (want baseline, dmp, or dx100)"))
}

/// The 12 kernel names, in sweep order.
pub fn kernel_names() -> Vec<&'static str> {
    // Constructors only record sizes; building the set to list names is
    // cheap (datasets are generated inside `run`).
    all_kernels(Scale(1.0)).iter().map(|k| k.name()).collect()
}

/// Instantiates the named kernel at `scale`.
pub fn find_kernel(name: &str, scale: Scale) -> Result<Box<dyn KernelRun + Send + Sync>, String> {
    all_kernels(scale)
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown kernel `{name}` (want one of {})",
                kernel_names().join(", ")
            )
        })
}

/// A fully resolved simulation job. See the module docs for what is (and
/// deliberately is not) part of the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Kernel name (one of [`kernel_names`]).
    pub kernel: String,
    /// Machine to run it on.
    pub machine: Mode,
    /// Dataset scale factor (> 0; 1.0 is the repo's default size).
    pub scale: f64,
    /// Dataset + sampling RNG seed.
    pub seed: u64,
    /// Sampled pipeline instead of full cycle-by-cycle simulation
    /// (kernels without an interval decomposition fall back to full).
    pub sample: bool,
    /// Event-driven cycle skipping (bit-identical stats either way, but
    /// the skip telemetry differs, so it is part of the spec).
    pub cycle_skip: bool,
    /// Cycle-attribution profiling (adds the `profile` report section).
    pub profile: bool,
    /// Epoch time-series sampling every N cycles.
    pub epoch: Option<u64>,
}

impl JobSpec {
    /// A job with the default mode flags (full fidelity, cycle skip on).
    pub fn new(kernel: impl Into<String>, machine: Mode) -> Self {
        JobSpec {
            kernel: kernel.into(),
            machine,
            scale: 1.0,
            seed: 1,
            sample: false,
            cycle_skip: true,
            profile: false,
            epoch: None,
        }
    }

    /// Validates the resolvable parts of the spec (kernel name, scale,
    /// epoch) without running anything.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("invalid scale {}", self.scale));
        }
        if self.epoch == Some(0) {
            return Err("epoch must be positive".to_string());
        }
        if !kernel_names().contains(&self.kernel.as_str()) {
            return Err(format!(
                "unknown kernel `{}` (want one of {})",
                self.kernel,
                kernel_names().join(", ")
            ));
        }
        Ok(())
    }

    /// The canonical JSON form: fixed field order, every field present.
    /// This is the content-hash input *and* the `spec` block of the
    /// report, so its serialization is part of the cache format.
    pub fn to_json(&self) -> Json {
        obj([
            ("kernel", self.kernel.as_str().into()),
            ("machine", self.machine.label().into()),
            ("scale", self.scale.into()),
            ("seed", self.seed.into()),
            ("sample", self.sample.into()),
            ("cycle_skip", self.cycle_skip.into()),
            ("profile", self.profile.into()),
            ("epoch", self.epoch.into()),
        ])
    }

    /// Parses a spec from JSON. Strict: `kernel` and `machine` are
    /// required, every other field is optional with the [`JobSpec::new`]
    /// defaults, and unknown fields are errors (a typo'd flag silently
    /// meaning "default" would poison the cache key space).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let fields = match v {
            Json::Obj(fields) => fields,
            _ => return Err("job spec must be a JSON object".to_string()),
        };
        const KNOWN: [&str; 8] = [
            "kernel",
            "machine",
            "scale",
            "seed",
            "sample",
            "cycle_skip",
            "profile",
            "epoch",
        ];
        for (k, _) in fields {
            if !KNOWN.contains(&k.as_str()) {
                return Err(format!("unknown job spec field `{k}`"));
            }
        }
        let str_field = |key: &str| -> Result<&str, String> {
            v.get(key)
                .ok_or_else(|| format!("job spec missing `{key}`"))?
                .as_str()
                .ok_or_else(|| format!("`{key}` must be a string"))
        };
        let bool_field = |key: &str, default: bool| -> Result<bool, String> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(default),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("`{key}` must be a boolean")),
            }
        };
        let mut spec = JobSpec::new(
            str_field("kernel")?,
            machine_from_label(str_field("machine")?)?,
        );
        if let Some(s) = v.get("scale") {
            spec.scale = s.as_f64().ok_or("`scale` must be a number")?;
        }
        if let Some(s) = v.get("seed") {
            match s {
                Json::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => spec.seed = *i as u64,
                _ => return Err("`seed` must be a non-negative integer".to_string()),
            }
        }
        spec.sample = bool_field("sample", spec.sample)?;
        spec.cycle_skip = bool_field("cycle_skip", spec.cycle_skip)?;
        spec.profile = bool_field("profile", spec.profile)?;
        spec.epoch = match v.get("epoch") {
            None | Some(Json::Null) => None,
            Some(Json::Int(i)) if *i > 0 => Some(*i as u64),
            Some(_) => return Err("`epoch` must be a positive integer or null".to_string()),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// FNV-1a 64 over the canonical serialization.
    pub fn content_hash(&self) -> u64 {
        fnv1a_64(self.to_json().to_string().as_bytes())
    }

    /// The content hash as the fixed-width hex cache key.
    pub fn cache_key(&self) -> String {
        hex16(self.content_hash())
    }

    /// The `SystemConfig` this spec resolves to: the machine for
    /// [`Self::machine`] with the spec's mode flags applied. Traces are
    /// never recorded for jobs (a trace buffer in a cached report would
    /// dwarf the stats it annotates); `--trace` stays a figure-binary
    /// affair.
    pub fn resolved_config(&self) -> SystemConfig {
        let mut cfg = machine_config(self.machine);
        cfg.cycle_skip = self.cycle_skip;
        cfg.obs = ObservabilityConfig {
            epoch_cycles: self.epoch,
            profile: self.profile,
            ..ObservabilityConfig::default()
        };
        cfg
    }

    /// Runs the job and produces its versioned report — the exact bytes
    /// (after serialization) the serve cache stores and replays.
    /// `threads` only parallelizes sampled window replay; it is invisible
    /// in the report (the pool collects results in task order).
    pub fn run(&self, threads: usize) -> Result<Json, String> {
        self.validate()?;
        let kernel = find_kernel(&self.kernel, Scale(self.scale))?;
        let cfg = self.resolved_config();
        let label = format!("{}/{}", self.kernel, self.machine.label());

        let (mode, run_block, checksum, sampling_block) = if self.sample {
            match kernel.prepare_sampled(self.machine, &cfg, self.seed) {
                Some(run) => {
                    let plan = sampling::plan(&run, self.seed, &label);
                    let warm = WarmCache::default();
                    let tasks: Vec<Box<dyn FnOnce() -> dx100_sim::RunStats + Send + '_>> = plan
                        .windows
                        .iter()
                        .map(|w| {
                            let w = *w;
                            let (run, warm) = (&run, &warm);
                            Box::new(move || sampling::replay_window(run, w, warm))
                                as Box<dyn FnOnce() -> dx100_sim::RunStats + Send + '_>
                        })
                        .collect();
                    let stats = sampling::run_parallel(tasks, threads.max(1));
                    let rec = sampling::reconstitute(&plan, &stats);
                    let mut block = run_stats_json(&rec.stats);
                    if let Json::Obj(fields) = &mut block {
                        fields.push((
                            "telemetry".to_string(),
                            dx100_sim::RunTelemetry::default().to_json(),
                        ));
                    }
                    let sampling_json = obj([
                        ("windows", rec.windows.into()),
                        ("total_intervals", rec.total_intervals.into()),
                        (
                            "errors",
                            obj([
                                ("cycles", rec.errors.cycles.into()),
                                ("row_buffer_hit_rate", rec.errors.row_buffer_hit_rate.into()),
                                ("llc_mpki", rec.errors.llc_mpki.into()),
                                ("lower_bound", rec.errors.lower_bound.into()),
                            ]),
                        ),
                    ]);
                    ("sampled", block, run.checksum, sampling_json)
                }
                // No interval decomposition: fall back to a full run,
                // reported as such (the spec still hashes with
                // `sample: true` — the fallback is part of the result).
                None => self.full_run(&*kernel, &cfg)?,
            }
        } else {
            self.full_run(&*kernel, &cfg)?
        };

        Ok(obj([
            ("schema_version", SCHEMA_VERSION.into()),
            ("kind", "job".into()),
            ("spec", self.to_json()),
            ("mode", mode.into()),
            ("checksum", checksum.into()),
            ("run", run_block),
            ("sampling", sampling_block),
        ]))
    }

    /// One full-fidelity run → (`"full"`, run block, checksum, null).
    fn full_run(
        &self,
        kernel: &(dyn KernelRun + Send + Sync),
        cfg: &SystemConfig,
    ) -> Result<(&'static str, Json, u64, Json), String> {
        let w = kernel.run(self.machine, cfg, self.seed);
        let mut block = run_stats_json(&w.stats);
        if let Json::Obj(fields) = &mut block {
            fields.push(("telemetry".to_string(), w.telemetry.to_json()));
        }
        Ok(("full", block, w.checksum, Json::Null))
    }
}

/// Parsed `job` binary command line: the spec plus execution-only knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCli {
    /// The job to run.
    pub spec: JobSpec,
    /// Worker threads for sampled window replay.
    pub threads: usize,
    /// Report destination (`-`/absent = stdout).
    pub json: Option<PathBuf>,
}

impl JobCli {
    /// Usage string for the `job` binary's error paths.
    pub const USAGE: &'static str = "usage: job --kernel <name> --machine <baseline|dmp|dx100> \
         [--scale <f>] [--seed <n>] [--sample] [--no-cycle-skip] [--profile] \
         [--epoch <cycles>] [--threads <n>] [--json <path>]";

    /// Fallible parser over an explicit argument list (testable). Same
    /// strictness as the spec's JSON parser: unknown or duplicate flags
    /// and missing/invalid values are errors.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<JobCli, String> {
        let mut kernel: Option<String> = None;
        let mut machine: Option<Mode> = None;
        let mut out = JobCli {
            spec: JobSpec::new("", Mode::Baseline),
            threads: crate::default_threads(),
            json: None,
        };
        let mut seen: Vec<&'static str> = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let flag: &'static str = match arg.as_str() {
                "--kernel" => "--kernel",
                "--machine" => "--machine",
                "--scale" => "--scale",
                "--seed" => "--seed",
                "--sample" => "--sample",
                "--no-cycle-skip" => "--no-cycle-skip",
                "--profile" => "--profile",
                "--epoch" => "--epoch",
                "--threads" => "--threads",
                "--json" => "--json",
                other => return Err(format!("unknown argument `{other}`")),
            };
            if seen.contains(&flag) {
                return Err(format!("duplicate flag {flag}"));
            }
            seen.push(flag);
            let mut value = || it.next().ok_or_else(|| format!("{flag} requires a value"));
            match flag {
                "--kernel" => kernel = Some(value()?),
                "--machine" => machine = Some(machine_from_label(&value()?)?),
                "--scale" => {
                    let v = value()?;
                    out.spec.scale = v
                        .parse::<f64>()
                        .ok()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or_else(|| format!("invalid --scale value `{v}`"))?;
                }
                "--seed" => {
                    let v = value()?;
                    out.spec.seed = v
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --seed value `{v}`"))?;
                }
                "--sample" => out.spec.sample = true,
                "--no-cycle-skip" => out.spec.cycle_skip = false,
                "--profile" => out.spec.profile = true,
                "--epoch" => {
                    let v = value()?;
                    out.spec.epoch = Some(
                        v.parse::<u64>()
                            .ok()
                            .filter(|e| *e > 0)
                            .ok_or_else(|| format!("invalid --epoch value `{v}`"))?,
                    );
                }
                "--threads" => {
                    let v = value()?;
                    out.threads = v
                        .parse::<usize>()
                        .ok()
                        .filter(|t| *t > 0)
                        .ok_or_else(|| format!("invalid --threads value `{v}`"))?;
                }
                "--json" => {
                    let v = value()?;
                    if v != "-" {
                        out.json = Some(PathBuf::from(v));
                    }
                }
                _ => unreachable!(),
            }
        }
        out.spec.kernel = kernel.ok_or("--kernel is required")?;
        out.spec.machine = machine.ok_or("--machine is required")?;
        out.spec.validate()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kernel: &str, machine: Mode) -> JobSpec {
        JobSpec {
            scale: 1e-9,
            ..JobSpec::new(kernel, machine)
        }
    }

    #[test]
    fn canonical_json_round_trips_and_hash_is_stable() {
        let s = JobSpec {
            sample: true,
            profile: true,
            epoch: Some(5000),
            seed: 7,
            ..spec("is", Mode::Dx100)
        };
        let j = s.to_json();
        assert_eq!(JobSpec::from_json(&j).unwrap(), s);
        // The canonical string (and so the key) is insensitive to how the
        // spec JSON was spelled: defaults made explicit, fields reordered.
        let reordered = Json::parse(
            r#"{"seed":7,"machine":"dx100","epoch":5000,"profile":true,
                "sample":true,"kernel":"is","scale":0.000000001}"#,
        )
        .unwrap();
        let s2 = JobSpec::from_json(&reordered).unwrap();
        assert_eq!(s2.cache_key(), s.cache_key());
        assert_eq!(s2.to_json().to_string(), s.to_json().to_string());
    }

    #[test]
    fn defaults_are_applied_and_hash_distinguishes_flags() {
        let minimal =
            JobSpec::from_json(&Json::parse(r#"{"kernel":"pr","machine":"baseline"}"#).unwrap())
                .unwrap();
        assert_eq!(minimal.scale, 1.0);
        assert_eq!(minimal.seed, 1);
        assert!(minimal.cycle_skip);
        assert!(!minimal.sample && !minimal.profile);
        let mut other = minimal.clone();
        other.profile = true;
        assert_ne!(minimal.cache_key(), other.cache_key());
        let mut skipless = minimal.clone();
        skipless.cycle_skip = false;
        assert_ne!(minimal.cache_key(), skipless.cache_key());
    }

    #[test]
    fn from_json_rejects_bad_specs() {
        for (doc, want) in [
            (r#"{"machine":"dx100"}"#, "missing `kernel`"),
            (r#"{"kernel":"is"}"#, "missing `machine`"),
            (r#"{"kernel":"nope","machine":"dx100"}"#, "unknown kernel"),
            (r#"{"kernel":"is","machine":"gpu"}"#, "unknown machine"),
            (r#"{"kernel":"is","machine":"dx100","scale":0}"#, "scale"),
            (r#"{"kernel":"is","machine":"dx100","epoch":0}"#, "epoch"),
            (r#"{"kernel":"is","machine":"dx100","seed":-1}"#, "seed"),
            (
                r#"{"kernel":"is","machine":"dx100","threads":4}"#,
                "unknown job spec field",
            ),
            (
                r#"{"kernel":"is","machine":"dx100","wait":true}"#,
                "unknown job spec field",
            ),
            (r#"[1,2]"#, "object"),
        ] {
            let err = JobSpec::from_json(&Json::parse(doc).unwrap()).unwrap_err();
            assert!(err.contains(want), "{doc}: {err}");
        }
    }

    #[test]
    fn machine_config_matches_paper_machines() {
        // The extraction point: everything measuring the paper machines
        // must agree with these shapes.
        assert!(machine_config(Mode::Baseline).dx100.is_none());
        assert_eq!(
            machine_config(Mode::Dx100).hierarchy.llc.size_bytes,
            8 * 1024 * 1024
        );
        assert!(machine_config(Mode::Dmp).dmp.is_some());
        assert_eq!(kernel_names().len(), 12);
        assert!(find_kernel("is", Scale(1e-9)).is_ok());
        assert!(find_kernel("bogus", Scale(1e-9)).is_err());
    }

    #[test]
    fn cli_and_json_paths_build_identical_specs() {
        let cli = JobCli::try_parse(
            [
                "--kernel",
                "is",
                "--machine",
                "dx100",
                "--scale",
                "0.000000001",
                "--seed",
                "3",
                "--profile",
                "--epoch",
                "5000",
                "--threads",
                "2",
            ]
            .map(String::from),
        )
        .unwrap();
        let json = JobSpec::from_json(
            &Json::parse(
                r#"{"kernel":"is","machine":"dx100","scale":1e-9,"seed":3,
                    "profile":true,"epoch":5000}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(cli.spec, json);
        assert_eq!(cli.spec.cache_key(), json.cache_key());
        assert_eq!(cli.threads, 2);
    }

    #[test]
    fn cli_rejects_malformed_input() {
        let parse = |args: &[&str]| JobCli::try_parse(args.iter().map(|s| s.to_string()));
        assert!(parse(&[]).unwrap_err().contains("--kernel"));
        assert!(parse(&["--kernel", "is"])
            .unwrap_err()
            .contains("--machine"));
        assert!(
            parse(&["--kernel", "is", "--machine", "dx100", "--kernel", "is"])
                .unwrap_err()
                .contains("duplicate")
        );
        assert!(parse(&["--kernel", "is", "--machine", "dx100", "--scale", "0"]).is_err());
        assert!(parse(&["--kernel", "is", "--machine", "dx100", "--frob"]).is_err());
    }

    #[test]
    fn job_reports_are_deterministic_and_thread_invariant() {
        let s = spec("is", Mode::Dx100);
        let a = s.run(1).unwrap().to_string();
        let b = s.run(1).unwrap().to_string();
        assert_eq!(a, b, "repeat runs must be byte-identical");
        let sampled = JobSpec {
            sample: true,
            ..spec("is", Mode::Dx100)
        };
        let t1 = sampled.run(1).unwrap().to_string();
        let t4 = sampled.run(4).unwrap().to_string();
        assert_eq!(t1, t4, "replay threads must be invisible in the report");
        let parsed = Json::parse(&t1).unwrap();
        assert_eq!(parsed.get("mode").and_then(Json::as_str), Some("sampled"));
        assert!(parsed.get("sampling").unwrap().get("windows").is_some());
    }

    #[test]
    fn full_job_report_has_the_run_schema() {
        let report = spec("pr", Mode::Baseline).run(1).unwrap();
        let parsed = Json::parse(&report.to_string()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("job"));
        assert_eq!(parsed.get("mode").and_then(Json::as_str), Some("full"));
        let run = parsed.get("run").unwrap();
        for key in ["cycles", "instructions", "dram", "caches", "telemetry"] {
            assert!(run.get(key).is_some(), "run missing {key}");
        }
        assert_eq!(parsed.get("sampling"), Some(&Json::Null));
        let spec_block = parsed.get("spec").unwrap();
        assert_eq!(spec_block.get("kernel").and_then(Json::as_str), Some("pr"));
    }
}
