//! The HTTP surface: routing, response envelopes, graceful shutdown.
//!
//! | Route | Does |
//! |---|---|
//! | `GET /v1/health` | liveness + job/cache counters |
//! | `GET /v1/kernels` | the runnable kernel and machine names |
//! | `POST /v1/jobs` | submit a job spec; `"wait": false` for async |
//! | `GET /v1/jobs/<id>` | poll a submitted job |
//! | `POST /v1/shutdown` | graceful drain + exit |
//!
//! A job response envelope is `{serve_version, job_id, cache_key, cached,
//! status, report}` — `report` embeds the versioned job report verbatim
//! (the cache stores its serialization, and `dx100_common::json` is a
//! canonical fixpoint, so re-serializing the envelope's `report` field
//! reproduces the cached bytes exactly; the integration tests assert it).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dx100_bench::{jobspec, JobSpec};
use dx100_common::flags::ServeOpts;
use dx100_common::json::{obj, Json};
use dx100_workloads::Mode;

use crate::cache::ResultCache;
use crate::http::{read_request, write_json, HttpError, Request};
use crate::scheduler::{JobStatus, JobView, Scheduler};

/// Version of the serving protocol (envelopes and routes).
pub const SERVE_VERSION: u64 = 1;

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    scheduler: Scheduler,
    draining: Arc<AtomicBool>,
    addr: SocketAddr,
}

/// Handle to a server running on a background thread (tests, CI).
pub struct ServerHandle {
    /// The resolved listen address (useful with port 0).
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Waits for the server to finish draining and exit.
    pub fn join(self) {
        self.thread.join().expect("server thread panicked");
    }
}

impl Server {
    /// Binds the listener and opens the cache per `opts`.
    pub fn bind(opts: &ServeOpts) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let cache = ResultCache::open(&opts.cache_dir, opts.cache_cap_bytes())?;
        Ok(Server {
            listener,
            scheduler: Scheduler::new(cache, opts.max_jobs),
            draining: Arc::new(AtomicBool::new(false)),
            addr,
        })
    }

    /// The resolved listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the server on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let thread = std::thread::Builder::new()
            .name("dx100-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn server thread");
        ServerHandle { addr, thread }
    }

    /// Serves until a shutdown request arrives, then drains in-flight
    /// jobs and returns. Each connection is handled on its own thread
    /// (jobs themselves run on the scheduler's worker pool, so slow
    /// simulations never block the accept loop).
    pub fn run(self) {
        let Server {
            listener,
            scheduler,
            draining,
            addr,
        } = self;
        let scheduler = Arc::new(scheduler);
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if draining.load(Ordering::SeqCst) {
                break; // the wake-up connection; close it unanswered
            }
            let mut stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    continue;
                }
            };
            let scheduler = Arc::clone(&scheduler);
            let draining = Arc::clone(&draining);
            handlers.retain(|h| !h.is_finished());
            handlers.push(
                std::thread::Builder::new()
                    .name("dx100-serve-conn".into())
                    .spawn(move || {
                        let response = match read_request(&mut stream) {
                            Ok(req) => route(&scheduler, &draining, addr, &req),
                            Err(e) => error_response(e),
                        };
                        let (status, headers, body) = response;
                        let headers: Vec<(&str, &str)> =
                            headers.iter().map(|(n, v)| (*n, v.as_str())).collect();
                        if let Err(e) = write_json(&mut stream, status, &headers, &body) {
                            eprintln!("serve: response write failed: {e}");
                        }
                    })
                    .expect("spawn connection handler"),
            );
        }
        // Drain: running and queued jobs finish (and land in the cache),
        // then waiting handlers flush their responses.
        match Arc::try_unwrap(scheduler) {
            Ok(s) => s.shutdown(),
            Err(shared) => {
                // Handlers still hold clones; wait for them first.
                for h in handlers.drain(..) {
                    let _ = h.join();
                }
                match Arc::try_unwrap(shared) {
                    Ok(s) => s.shutdown(),
                    Err(_) => unreachable!("all scheduler handles joined"),
                }
            }
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

type ResponseParts = (u16, Vec<(&'static str, String)>, String);

fn error_response(e: HttpError) -> ResponseParts {
    let body = obj([
        ("serve_version", SERVE_VERSION.into()),
        ("error", e.message.as_str().into()),
    ]);
    (e.status, Vec::new(), body.to_string() + "\n")
}

fn route(
    scheduler: &Scheduler,
    draining: &AtomicBool,
    addr: SocketAddr,
    req: &Request,
) -> ResponseParts {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/health") => health(scheduler),
        ("GET", "/v1/kernels") => kernels(),
        ("POST", "/v1/jobs") => submit_job(scheduler, draining, &req.body),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            poll_job(scheduler, &path["/v1/jobs/".len()..])
        }
        ("POST", "/v1/shutdown") => shutdown(scheduler, draining, addr),
        (_, "/v1/health" | "/v1/kernels" | "/v1/jobs" | "/v1/shutdown") => error_response(
            HttpError::new(405, format!("method {} not allowed", req.method)),
        ),
        _ => error_response(HttpError::new(404, format!("no route for {}", req.path))),
    }
}

fn health(scheduler: &Scheduler) -> ResponseParts {
    let (hits, misses) = scheduler.cache().counters();
    let (entries, bytes) = scheduler.cache().usage().unwrap_or((0, 0));
    let body = obj([
        ("ok", true.into()),
        ("serve_version", SERVE_VERSION.into()),
        ("jobs_simulated", scheduler.simulated().into()),
        ("jobs_in_flight", scheduler.in_flight().into()),
        (
            "cache",
            obj([
                ("hits", hits.into()),
                ("misses", misses.into()),
                ("entries", entries.into()),
                ("bytes", bytes.into()),
            ]),
        ),
    ]);
    (200, Vec::new(), body.to_string() + "\n")
}

fn kernels() -> ResponseParts {
    let body = obj([
        ("serve_version", SERVE_VERSION.into()),
        (
            "kernels",
            Json::Arr(
                jobspec::kernel_names()
                    .iter()
                    .map(|n| (*n).into())
                    .collect(),
            ),
        ),
        (
            "machines",
            Json::Arr(Mode::ALL.iter().map(|m| m.label().into()).collect()),
        ),
    ]);
    (200, Vec::new(), body.to_string() + "\n")
}

fn submit_job(scheduler: &Scheduler, draining: &AtomicBool, body: &str) -> ResponseParts {
    if draining.load(Ordering::SeqCst) {
        return error_response(HttpError::new(503, "server is draining"));
    }
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return error_response(HttpError::new(400, format!("invalid JSON body: {e}"))),
    };
    // `wait` is transport, not spec: strip it before strict spec parsing.
    let (spec_json, wait) = match &parsed {
        Json::Obj(fields) => {
            let wait = match parsed.get("wait") {
                None | Some(Json::Null) => true,
                Some(Json::Bool(b)) => *b,
                Some(_) => return error_response(HttpError::new(400, "`wait` must be a boolean")),
            };
            let rest: Vec<(String, Json)> = fields
                .iter()
                .filter(|(k, _)| k != "wait")
                .cloned()
                .collect();
            (Json::Obj(rest), wait)
        }
        other => (other.clone(), true),
    };
    let spec = match JobSpec::from_json(&spec_json) {
        Ok(s) => s,
        Err(e) => return error_response(HttpError::new(400, e)),
    };
    let submitted = scheduler.submit(spec);
    if wait {
        match scheduler.wait(submitted.view.id) {
            Some(view) => job_response(&view),
            None => error_response(HttpError::new(500, "job vanished while waiting")),
        }
    } else {
        job_response(&submitted.view)
    }
}

fn poll_job(scheduler: &Scheduler, id_text: &str) -> ResponseParts {
    let id: u64 = match id_text.parse() {
        Ok(id) => id,
        Err(_) => return error_response(HttpError::new(400, format!("bad job id `{id_text}`"))),
    };
    match scheduler.get(id) {
        Some(view) => job_response(&view),
        None => error_response(HttpError::new(404, format!("no job {id}"))),
    }
}

/// Renders a job view. Done jobs embed the report (re-parsed from the
/// cached bytes; serialization is a fixpoint, so the bytes are preserved);
/// failed jobs are 500s; queued/running answer 202 for polling.
fn job_response(view: &JobView) -> ResponseParts {
    let cached = matches!(view.status, JobStatus::Done { cached: true });
    let mut fields = vec![
        ("serve_version", SERVE_VERSION.into()),
        ("job_id", view.id.into()),
        ("cache_key", view.key.as_str().into()),
        ("status", view.status.label().into()),
        ("cached", cached.into()),
    ];
    let status = match &view.status {
        JobStatus::Done { .. } => {
            let body = view.report.as_deref().unwrap_or("null");
            let report = Json::parse(body.trim_end()).unwrap_or(Json::Null);
            fields.push(("report", report));
            200
        }
        JobStatus::Failed => {
            fields.push((
                "error",
                view.error.as_deref().unwrap_or("unknown failure").into(),
            ));
            500
        }
        JobStatus::Queued | JobStatus::Running => 202,
    };
    let headers = vec![(
        "x-dx100-cache",
        if cached { "hit" } else { "miss" }.to_string(),
    )];
    (
        status,
        headers,
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
        .to_string()
            + "\n",
    )
}

fn shutdown(scheduler: &Scheduler, draining: &AtomicBool, addr: SocketAddr) -> ResponseParts {
    draining.store(true, Ordering::SeqCst);
    // Wake the accept loop so it observes the flag (the connection is
    // closed unanswered by the loop).
    let _ = TcpStream::connect(addr);
    let body = obj([
        ("serve_version", SERVE_VERSION.into()),
        ("ok", true.into()),
        ("draining_jobs", scheduler.in_flight().into()),
    ]);
    (200, Vec::new(), body.to_string() + "\n")
}
