//! The dx100 simulation daemon.
//!
//! ```text
//! serve --addr 127.0.0.1:8100 --cache-dir dx100-cache --max-jobs 4
//! ```
//!
//! Serves the `/v1/*` job API until a `POST /v1/shutdown`, then drains
//! in-flight jobs and exits 0.

use dx100_common::flags::ServeOpts;
use dx100_serve::Server;

fn main() {
    let opts = ServeOpts::parse();
    let server = match Server::bind(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start on {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    eprintln!(
        "serve: listening on {} (cache {} cap {} MiB, {} workers)",
        server.local_addr(),
        opts.cache_dir.display(),
        opts.cache_cap_mb,
        opts.max_jobs,
    );
    server.run();
    eprintln!("serve: drained, bye");
}
