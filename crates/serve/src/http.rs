//! A minimal HTTP/1.1 layer over `std::net`: just enough protocol for the
//! job API — request parsing with bounded header/body sizes, JSON
//! responses, `Connection: close` semantics — and a tiny blocking client
//! for tests and smoke gates. No async runtime: the workspace builds
//! offline and dependency-free, and a simulation job takes seconds to
//! minutes, so thread-per-connection is the right amount of machinery.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on request header bytes (request line + headers).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Upper bound on request body bytes (a job spec is < 1 KB; this leaves
/// headroom for future batch submissions without letting a client OOM
/// the daemon).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Per-connection socket read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Decoded body (empty when none was sent).
    pub body: String,
}

/// A protocol-level rejection: HTTP status plus a human-readable reason,
/// serialized into the standard error JSON body.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Response status code.
    pub status: u16,
    /// One-line explanation returned to the client.
    pub message: String,
}

impl HttpError {
    /// Convenience constructor.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reads and parses one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| HttpError::new(500, format!("set_read_timeout: {e}")))?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    let mut header_bytes = reader
        .read_line(&mut line)
        .map_err(|e| HttpError::new(400, format!("cannot read request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line has no HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(
            505,
            format!("unsupported version {version}"),
        ));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| HttpError::new(400, format!("cannot read header: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-headers"));
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(431, "request headers too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::new(400, format!("body shorter than Content-Length: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| HttpError::new(400, "body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes a JSON response (closing the connection afterwards is the
/// caller's business; every response advertises `Connection: close`).
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A response as seen by the blocking test/smoke client.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Lower-cased header (name, value) pairs.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl Response {
    /// First value of a (case-insensitive) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot HTTP client: connects, sends, reads to EOF. Used by
/// the integration tests and the CI smoke gate; not exposed to job code.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(Response {
        status,
        headers,
        body: payload.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Spawns a one-request server, runs `client` against it, and returns
    /// what the server parsed.
    fn round_trip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            // Keep the socket open until the server has parsed.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let parsed = read_request(&mut conn);
        drop(conn);
        client.join().unwrap();
        parsed
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            "POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body_and_lowercase_method() {
        let req = round_trip("get /v1/health HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert_eq!(round_trip("\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(round_trip("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(round_trip("GET / SMTP/3\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn rejects_oversized_payloads() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(round_trip(&huge).unwrap_err().status, 413);
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "x-pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n".repeat(600)
        );
        assert_eq!(round_trip(&many_headers).unwrap_err().status, 431);
    }

    #[test]
    fn client_and_write_json_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.method, "POST");
            write_json(
                &mut conn,
                202,
                &[("x-dx100-cache", "miss")],
                "{\"ok\":true}",
            )
            .unwrap();
        });
        let resp = request(&addr, "POST", "/v1/jobs", Some("{}")).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert_eq!(resp.header("x-dx100-cache"), Some("miss"));
        assert_eq!(resp.header("content-type"), Some("application/json"));
    }
}
