//! The job scheduler: accepted specs become numbered jobs, simulated on a
//! shared [`WorkerPool`](dx100_common::pool::WorkerPool) (`--max-jobs`
//! workers), with results memoized through the [`ResultCache`].
//!
//! Three ways a submission resolves:
//!
//! 1. **Cache hit** — the spec's key is on disk: the job is born `done`
//!    with `cached: true` and the stored bytes; nothing is scheduled.
//! 2. **Coalesced** — an identical spec is already queued or running: the
//!    caller is handed *that* job's id rather than a second simulation of
//!    the same config (the common thundering-herd shape under repeated
//!    traffic).
//! 3. **Scheduled** — a worker runs [`JobSpec::run`], the report is
//!    written to the cache, and every waiter wakes.
//!
//! [`Scheduler::shutdown`] drains: queued and in-flight jobs finish (and
//! land in the cache) before it returns.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use dx100_bench::JobSpec;
use dx100_common::pool::WorkerPool;

use crate::cache::ResultCache;

/// Where a job is in its life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// Simulating.
    Running,
    /// Report available (`cached`: served from disk without simulating).
    Done {
        /// True when no simulation ran for *this* submission.
        cached: bool,
    },
    /// The spec failed to run.
    Failed,
}

impl JobStatus {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// A point-in-time view of one job, cheap to clone into a response.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id (monotonic per daemon).
    pub id: u64,
    /// Content-hash cache key of the spec.
    pub key: String,
    /// Current status.
    pub status: JobStatus,
    /// The report bytes, when `Done`.
    pub report: Option<String>,
    /// The failure message, when `Failed`.
    pub error: Option<String>,
}

struct JobRecord {
    key: String,
    status: JobStatus,
    report: Option<String>,
    error: Option<String>,
}

struct SchedState {
    jobs: BTreeMap<u64, JobRecord>,
    /// cache-key → job id for queued/running jobs (coalescing index).
    inflight: HashMap<String, u64>,
    next_id: u64,
    simulated: u64,
}

struct SchedInner {
    state: Mutex<SchedState>,
    /// Signaled whenever any job reaches a terminal status.
    done: Condvar,
    cache: ResultCache,
    /// Sampled-replay threads per job (1: workers are the parallelism).
    replay_threads: usize,
}

/// See module docs.
pub struct Scheduler {
    inner: Arc<SchedInner>,
    pool: WorkerPool,
}

/// What a submission resolved to.
pub struct Submitted {
    /// The job's view at submission time (possibly already `Done`).
    pub view: JobView,
    /// True when this submission attached to an existing in-flight job.
    pub coalesced: bool,
}

impl Scheduler {
    /// Builds a scheduler over `cache` with `max_jobs` simulation workers.
    pub fn new(cache: ResultCache, max_jobs: usize) -> Self {
        Scheduler {
            inner: Arc::new(SchedInner {
                state: Mutex::new(SchedState {
                    jobs: BTreeMap::new(),
                    inflight: HashMap::new(),
                    next_id: 1,
                    simulated: 0,
                }),
                done: Condvar::new(),
                cache,
                replay_threads: 1,
            }),
            pool: WorkerPool::new(max_jobs),
        }
    }

    /// The result cache (for stats endpoints).
    pub fn cache(&self) -> &ResultCache {
        &self.inner.cache
    }

    /// Simulations actually run (excludes cache hits and coalesced
    /// attachments).
    pub fn simulated(&self) -> u64 {
        self.inner.state.lock().unwrap().simulated
    }

    /// Jobs queued or running.
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().unwrap().inflight.len()
    }

    /// Submits `spec`: cache lookup, then coalesce, then schedule.
    pub fn submit(&self, spec: JobSpec) -> Submitted {
        let key = spec.cache_key();

        // 1. Cache hit: the job is born done.
        if let Some(body) = self.inner.cache.get(&key) {
            let mut st = self.inner.state.lock().unwrap();
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                JobRecord {
                    key: key.clone(),
                    status: JobStatus::Done { cached: true },
                    report: Some(body.clone()),
                    error: None,
                },
            );
            return Submitted {
                view: JobView {
                    id,
                    key,
                    status: JobStatus::Done { cached: true },
                    report: Some(body),
                    error: None,
                },
                coalesced: false,
            };
        }

        let (id, coalesced) = {
            let mut st = self.inner.state.lock().unwrap();
            // 2. Coalesce with an identical in-flight job.
            if let Some(&existing) = st.inflight.get(&key) {
                let view = view_of(existing, &st.jobs[&existing]);
                return Submitted {
                    view,
                    coalesced: true,
                };
            }
            // 3. Schedule.
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                JobRecord {
                    key: key.clone(),
                    status: JobStatus::Queued,
                    report: None,
                    error: None,
                },
            );
            st.inflight.insert(key.clone(), id);
            (id, false)
        };

        let inner = Arc::clone(&self.inner);
        let task_key = key.clone();
        self.pool.submit(Box::new(move || {
            {
                let mut st = inner.state.lock().unwrap();
                if let Some(rec) = st.jobs.get_mut(&id) {
                    rec.status = JobStatus::Running;
                }
            }
            let outcome = spec.run(inner.replay_threads);
            let mut st = inner.state.lock().unwrap();
            match outcome {
                Ok(report) => {
                    let body = report.to_string() + "\n";
                    // A cache write failure degrades to a miss next time;
                    // the in-memory result still reaches every waiter.
                    if let Err(e) = inner.cache.put(&task_key, &body) {
                        eprintln!("serve: cache write for {task_key} failed: {e}");
                    }
                    st.simulated += 1;
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.status = JobStatus::Done { cached: false };
                        rec.report = Some(body);
                    }
                }
                Err(msg) => {
                    if let Some(rec) = st.jobs.get_mut(&id) {
                        rec.status = JobStatus::Failed;
                        rec.error = Some(msg);
                    }
                }
            }
            st.inflight.remove(&task_key);
            drop(st);
            inner.done.notify_all();
        }));

        Submitted {
            view: JobView {
                id,
                key,
                status: JobStatus::Queued,
                report: None,
                error: None,
            },
            coalesced,
        }
    }

    /// A job's current view.
    pub fn get(&self, id: u64) -> Option<JobView> {
        let st = self.inner.state.lock().unwrap();
        st.jobs.get(&id).map(|rec| view_of(id, rec))
    }

    /// Blocks until job `id` reaches a terminal status; `None` for an
    /// unknown id.
    pub fn wait(&self, id: u64) -> Option<JobView> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(rec) if matches!(rec.status, JobStatus::Done { .. } | JobStatus::Failed) => {
                    return Some(view_of(id, rec))
                }
                Some(_) => st = self.inner.done.wait(st).unwrap(),
            }
        }
    }

    /// Graceful drain: every queued and running job completes (reports
    /// cached) before this returns.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

fn view_of(id: u64, rec: &JobRecord) -> JobView {
    JobView {
        id,
        key: rec.key.clone(),
        status: rec.status.clone(),
        report: rec.report.clone(),
        error: rec.error.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_workloads::Mode;

    fn scheduler(tag: &str, workers: usize) -> Scheduler {
        let dir =
            std::env::temp_dir().join(format!("dx100-sched-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scheduler::new(ResultCache::open(dir, 1 << 20).unwrap(), workers)
    }

    fn tiny(kernel: &str) -> JobSpec {
        JobSpec {
            scale: 1e-9,
            ..JobSpec::new(kernel, Mode::Baseline)
        }
    }

    #[test]
    fn submit_wait_then_cache_hit() {
        let sched = scheduler("hit", 2);
        let first = sched.submit(tiny("is"));
        assert_eq!(first.view.status, JobStatus::Queued);
        let done = sched.wait(first.view.id).unwrap();
        assert_eq!(done.status, JobStatus::Done { cached: false });
        let body = done.report.unwrap();
        assert!(body.ends_with('\n'));

        let second = sched.submit(tiny("is"));
        assert_eq!(second.view.status, JobStatus::Done { cached: true });
        assert_eq!(second.view.report.as_deref(), Some(body.as_str()));
        assert_eq!(sched.simulated(), 1);
        sched.shutdown();
    }

    #[test]
    fn identical_inflight_jobs_coalesce() {
        // One worker: the first job occupies it, so an identical second
        // submission must attach, not queue a duplicate simulation.
        let sched = scheduler("coalesce", 1);
        let a = sched.submit(tiny("pr"));
        let b = sched.submit(tiny("pr"));
        assert!(b.coalesced);
        assert_eq!(a.view.id, b.view.id);
        let done = sched.wait(a.view.id).unwrap();
        assert_eq!(done.status, JobStatus::Done { cached: false });
        assert_eq!(sched.simulated(), 1);
        sched.shutdown();
    }

    #[test]
    fn failed_specs_report_failure() {
        let sched = scheduler("fail", 1);
        // Valid at parse time, invalid at run time is hard to construct —
        // validate() runs in both places — so check unknown-id handling
        // and that a failing spec never poisons the cache dir.
        assert!(sched.get(999).is_none());
        assert!(sched.wait(999).is_none());
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_into_the_cache() {
        let sched = scheduler("drain", 1);
        let a = sched.submit(tiny("is"));
        let b = sched.submit(tiny("pr"));
        let (a_id, b_id) = (a.view.id, b.view.id);
        let cache_dir = sched.cache().dir().to_path_buf();
        let (a_key, b_key) = (tiny("is").cache_key(), tiny("pr").cache_key());
        sched.shutdown();
        let _ = (a_id, b_id);
        for key in [a_key, b_key] {
            assert!(
                cache_dir.join(format!("{key}.json")).exists(),
                "{key} not drained to cache"
            );
        }
    }
}
