//! The content-addressed on-disk result cache.
//!
//! One file per distinct job config, named by the config's FNV-1a 64 hash
//! (`<cache-dir>/<16-hex>.json`) and holding the exact report bytes the
//! first run produced. `SystemCheckpoint` determinism makes those bytes
//! *the* answer for that config — not an approximation — so a hit is an
//! O(1) file read serving a byte-identical body, however long ago and on
//! however many threads the original simulation ran.
//!
//! Eviction is size-capped LRU by file mtime: a hit touches the file's
//! mtime, and when the cache grows past its cap after a write, the
//! oldest-mtime entries are removed until it fits. Eviction only ever
//! costs a future re-simulation; it can never produce a wrong answer.

use std::fs::{self, File, FileTimes};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// A content-addressed, size-capped result cache rooted at one directory.
pub struct ResultCache {
    dir: PathBuf,
    cap_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Serializes put + evict so concurrent writers can't race the size
    /// accounting. Reads (`get`) stay lock-free.
    write_lock: Mutex<()>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `dir` with a size cap.
    pub fn open(dir: impl Into<PathBuf>, cap_bytes: u64) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            cap_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            write_lock: Mutex::new(()),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key lives at. Keys are validated to be exactly the
    /// fixed-width hex form so a hostile key can't traverse paths.
    fn path_for(&self, key: &str) -> io::Result<PathBuf> {
        if key.len() != 16
            || !key
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("malformed cache key `{key}`"),
            ));
        }
        Ok(self.dir.join(format!("{key}.json")))
    }

    /// Looks `key` up: the O(1) hit path. Touches the entry's mtime so
    /// LRU eviction sees the use.
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.path_for(key).ok()?;
        match fs::read_to_string(&path) {
            Ok(body) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Best-effort touch; a failed touch only ages the entry.
                if let Ok(f) = File::options().write(true).open(&path) {
                    let _ = f.set_times(FileTimes::new().set_modified(SystemTime::now()));
                }
                Some(body)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `key` (atomically: temp file + rename, so a
    /// concurrent `get` sees either nothing or the whole body), then
    /// evicts oldest entries if the cache outgrew its cap.
    pub fn put(&self, key: &str, body: &str) -> io::Result<()> {
        let path = self.path_for(key)?;
        let _guard = self.write_lock.lock().unwrap();
        let tmp = self.dir.join(format!(".{key}.tmp"));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, &path)?;
        self.evict_past_cap(&path)?;
        Ok(())
    }

    /// Removes oldest-mtime entries until total size fits the cap.
    /// `just_written` is never evicted — a cache that cannot hold its
    /// newest entry would turn every request into a miss.
    fn evict_past_cap(&self, just_written: &Path) -> io::Result<()> {
        let mut entries: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        let mut total: u64 = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let meta = entry.metadata()?;
            total += meta.len();
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((mtime, meta.len(), path));
        }
        if total <= self.cap_bytes {
            return Ok(());
        }
        entries.sort(); // oldest mtime first (PathBuf tie-break keeps it total)
        for (_, len, path) in entries {
            if total <= self.cap_bytes {
                break;
            }
            if path == just_written {
                continue;
            }
            fs::remove_file(&path)?;
            total -= len;
        }
        Ok(())
    }

    /// Entry count and total bytes currently on disk (scans the dir).
    pub fn usage(&self) -> io::Result<(usize, u64)> {
        let mut count = 0;
        let mut bytes = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().and_then(|e| e.to_str()) == Some("json") {
                count += 1;
                bytes += entry.metadata()?.len();
            }
        }
        Ok((count, bytes))
    }

    /// Lifetime (hit, miss) counters for this process.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_common::hash::hex16;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dx100-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = ResultCache::open(tmpdir("roundtrip"), 1 << 20).unwrap();
        let key = hex16(0xabc);
        assert_eq!(cache.get(&key), None);
        cache.put(&key, "{\"report\":1}\n").unwrap();
        assert_eq!(cache.get(&key).as_deref(), Some("{\"report\":1}\n"));
        assert_eq!(cache.counters(), (1, 1));
        // Byte-identity across a second open (a daemon restart).
        let reopened = ResultCache::open(cache.dir(), 1 << 20).unwrap();
        assert_eq!(reopened.get(&key).as_deref(), Some("{\"report\":1}\n"));
    }

    #[test]
    fn rejects_malformed_keys() {
        let cache = ResultCache::open(tmpdir("badkey"), 1 << 20).unwrap();
        for bad in [
            "",
            "short",
            "../../../../etc/passwd",
            "ABCDEF0123456789",
            "zzzzzzzzzzzzzzzz",
        ] {
            assert!(cache.put(bad, "x").is_err(), "{bad}");
            assert_eq!(cache.get(bad), None, "{bad}");
        }
    }

    #[test]
    fn evicts_least_recently_used_past_the_cap() {
        // Cap fits two ~40-byte entries, not three.
        let cache = ResultCache::open(tmpdir("lru"), 100).unwrap();
        let body = "x".repeat(40);
        let (k1, k2, k3) = (hex16(1), hex16(2), hex16(3));
        cache.put(&k1, &body).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.put(&k2, &body).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Touch k1 so k2 becomes the LRU entry.
        assert!(cache.get(&k1).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.put(&k3, &body).unwrap();
        assert!(cache.get(&k1).is_some(), "recently used entry survived");
        assert!(cache.get(&k3).is_some(), "newest entry survived");
        assert_eq!(cache.get(&k2), None, "LRU entry was evicted");
        let (count, bytes) = cache.usage().unwrap();
        assert_eq!(count, 2);
        assert!(bytes <= 100);
    }

    #[test]
    fn newest_entry_survives_even_when_larger_than_cap() {
        let cache = ResultCache::open(tmpdir("bigentry"), 10).unwrap();
        let key = hex16(9);
        cache.put(&key, &"y".repeat(64)).unwrap();
        assert!(cache.get(&key).is_some());
    }
}
