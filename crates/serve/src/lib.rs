//! dx100-serve: simulation-as-a-service over the DX100 simulator.
//!
//! A dependency-free HTTP/1.1 JSON daemon (`std::net` only — no async
//! runtime, builds offline) that accepts simulation jobs, schedules them
//! on a worker pool, and memoizes every report in a content-addressed
//! on-disk cache. Because the simulator is bit-deterministic for a fully
//! resolved job config (kernel, machine, scale, seed, mode flags), the
//! cache key is simply the FNV-1a 64 hash of the config's canonical JSON
//! — a repeat submission is an O(1) file read returning a byte-identical
//! report with `"cached": true`.
//!
//! Layering, bottom-up:
//!
//! - [`http`] — bounded request parsing, JSON responses, a blocking
//!   client for tests and smoke gates.
//! - [`cache`] — the content-addressed result store (atomic writes,
//!   size-capped LRU eviction by mtime).
//! - [`scheduler`] — specs → jobs: cache lookup, in-flight coalescing,
//!   worker-pool execution, graceful drain.
//! - [`server`] — routing and the accept loop.
//!
//! Start one with the `serve` binary; the same job specs also run
//! locally via the `job` binary in dx100-bench (the two paths share
//! [`dx100_bench::JobSpec`], so their reports are byte-identical).

pub mod cache;
pub mod http;
pub mod scheduler;
pub mod server;

pub use cache::ResultCache;
pub use scheduler::{JobStatus, JobView, Scheduler, Submitted};
pub use server::{Server, ServerHandle, SERVE_VERSION};
