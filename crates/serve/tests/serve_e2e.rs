//! End-to-end tests over a real socket: the acceptance criteria for the
//! serving layer.
//!
//! 1. Two identical submissions → the second is served from the on-disk
//!    cache (`"cached": true`) with a byte-identical report.
//! 2. Two concurrent distinct jobs → reports byte-identical to serial
//!    CLI-path runs of the same specs ([`JobSpec::run`]).
//! 3. Async submission (`"wait": false`) + status polling.
//! 4. Protocol errors answer with the right statuses and JSON bodies.
//! 5. The cache outlives the daemon: a restart on the same cache dir
//!    serves the old reports as hits.

use std::path::PathBuf;

use dx100_bench::JobSpec;
use dx100_common::flags::ServeOpts;
use dx100_common::json::Json;
use dx100_serve::http::request;
use dx100_serve::{Server, ServerHandle, SERVE_VERSION};
use dx100_workloads::Mode;

/// Scale small enough that a job simulates in well under a second.
const TINY: f64 = 1e-9;

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dx100-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, max_jobs: usize) -> (String, ServerHandle, PathBuf) {
    let cache_dir = tmp_cache(tag);
    start_at(cache_dir, max_jobs)
}

fn start_at(cache_dir: PathBuf, max_jobs: usize) -> (String, ServerHandle, PathBuf) {
    let opts = ServeOpts {
        addr: "127.0.0.1:0".into(),
        cache_dir: cache_dir.clone(),
        max_jobs,
        cache_cap_mb: 64,
    };
    let handle = Server::bind(&opts).expect("bind").spawn();
    (handle.addr.to_string(), handle, cache_dir)
}

fn stop(addr: &str, handle: ServerHandle) {
    let resp = request(addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    handle.join();
}

fn tiny_body(kernel: &str, machine: &str) -> String {
    format!("{{\"kernel\":\"{kernel}\",\"machine\":\"{machine}\",\"scale\":1e-9}}")
}

/// Parses a job envelope and returns (envelope, canonical report bytes).
fn envelope(body: &str) -> (Json, String) {
    let env = Json::parse(body.trim_end()).expect("envelope parses");
    let report = env.get("report").expect("has report").to_string();
    (env, report)
}

fn field<'a>(env: &'a Json, name: &str) -> &'a Json {
    env.get(name)
        .unwrap_or_else(|| panic!("envelope missing `{name}`"))
}

#[test]
fn identical_submissions_hit_the_cache_byte_identically() {
    let (addr, handle, cache_dir) = start("twice", 2);
    let body = tiny_body("is", "baseline");

    let first = request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-dx100-cache"), Some("miss"));
    let (env1, report1) = envelope(&first.body);
    assert_eq!(field(&env1, "cached"), &Json::Bool(false));
    assert_eq!(field(&env1, "status"), &Json::Str("done".into()));
    assert_eq!(
        field(&env1, "serve_version"),
        &Json::Int(SERVE_VERSION as i128)
    );

    let second = request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(second.header("x-dx100-cache"), Some("hit"));
    let (env2, report2) = envelope(&second.body);
    assert_eq!(field(&env2, "cached"), &Json::Bool(true));
    assert_eq!(report2, report1, "cached report must be byte-identical");

    // The cache file on disk holds exactly the report bytes.
    let key = match field(&env1, "cache_key") {
        Json::Str(s) => s.clone(),
        other => panic!("cache_key not a string: {other:?}"),
    };
    let on_disk = std::fs::read_to_string(cache_dir.join(format!("{key}.json"))).unwrap();
    assert_eq!(on_disk.trim_end(), report1);

    // Health agrees: one simulation, one hit.
    let health = request(&addr, "GET", "/v1/health", None).unwrap();
    let h = Json::parse(health.body.trim_end()).unwrap();
    assert_eq!(field(&h, "jobs_simulated"), &Json::Int(1));
    assert_eq!(field(field(&h, "cache"), "hits"), &Json::Int(1));

    stop(&addr, handle);
}

#[test]
fn concurrent_distinct_jobs_match_serial_cli_runs() {
    let (addr, handle, _cache) = start("concurrent", 2);

    // Serial reference runs through the exact CLI path (JobSpec::run).
    let mut spec_is = JobSpec::new("is", Mode::Baseline);
    spec_is.scale = TINY;
    let mut spec_pr = JobSpec::new("pr", Mode::Dx100);
    spec_pr.scale = TINY;
    let want_is = spec_is.run(1).unwrap().to_string();
    let want_pr = spec_pr.run(1).unwrap().to_string();

    // Submit both concurrently against a 2-worker daemon.
    let addr2 = addr.clone();
    let t_is = std::thread::spawn(move || {
        request(
            &addr2,
            "POST",
            "/v1/jobs",
            Some(&tiny_body("is", "baseline")),
        )
        .unwrap()
    });
    let addr3 = addr.clone();
    let t_pr = std::thread::spawn(move || {
        request(&addr3, "POST", "/v1/jobs", Some(&tiny_body("pr", "dx100"))).unwrap()
    });
    let resp_is = t_is.join().unwrap();
    let resp_pr = t_pr.join().unwrap();
    assert_eq!(resp_is.status, 200, "{}", resp_is.body);
    assert_eq!(resp_pr.status, 200, "{}", resp_pr.body);

    let (_, got_is) = envelope(&resp_is.body);
    let (_, got_pr) = envelope(&resp_pr.body);
    assert_eq!(got_is, want_is, "served `is` report != serial CLI run");
    assert_eq!(got_pr, want_pr, "served `pr` report != serial CLI run");

    stop(&addr, handle);
}

#[test]
fn async_submission_polls_to_done() {
    let (addr, handle, _cache) = start("poll", 1);
    let body = "{\"kernel\":\"cg\",\"machine\":\"dmp\",\"scale\":1e-9,\"wait\":false}";
    let accepted = request(&addr, "POST", "/v1/jobs", Some(body)).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let env = Json::parse(accepted.body.trim_end()).unwrap();
    let id = match field(&env, "job_id") {
        Json::Int(i) => *i,
        other => panic!("job_id not an int: {other:?}"),
    };
    assert!(env.get("report").is_none());

    let path = format!("/v1/jobs/{id}");
    let mut last = None;
    for _ in 0..600 {
        let resp = request(&addr, "GET", &path, None).unwrap();
        if resp.status == 200 {
            last = Some(resp);
            break;
        }
        assert_eq!(resp.status, 202, "{}", resp.body);
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let done = last.expect("job finished within 30s");
    let (env, report) = envelope(&done.body);
    assert_eq!(field(&env, "status"), &Json::Str("done".into()));
    assert!(report.starts_with('{'));
    stop(&addr, handle);
}

#[test]
fn protocol_errors_answer_with_json_and_right_statuses() {
    let (addr, handle, _cache) = start("errors", 1);
    let cases: [(&str, &str, Option<&str>, u16); 7] = [
        ("POST", "/v1/jobs", Some("not json"), 400),
        (
            "POST",
            "/v1/jobs",
            Some("{\"kernel\":\"nope\",\"machine\":\"baseline\"}"),
            400,
        ),
        (
            "POST",
            "/v1/jobs",
            Some("{\"kernel\":\"is\",\"machine\":\"baseline\",\"bogus\":1}"),
            400,
        ),
        ("GET", "/v1/jobs/999", None, 404),
        ("GET", "/v1/nothing", None, 404),
        ("DELETE", "/v1/jobs", Some("{}"), 405),
        ("GET", "/v1/jobs/not-a-number", None, 400),
    ];
    for (method, path, body, want) in cases {
        let resp = request(&addr, method, path, body).unwrap();
        assert_eq!(resp.status, want, "{method} {path}: {}", resp.body);
        let env = Json::parse(resp.body.trim_end()).unwrap();
        assert!(
            env.get("error").is_some(),
            "{method} {path} body lacks error"
        );
    }

    // Kernels endpoint sanity: every advertised kernel/machine is usable.
    let resp = request(&addr, "GET", "/v1/kernels", None).unwrap();
    assert_eq!(resp.status, 200);
    let env = Json::parse(resp.body.trim_end()).unwrap();
    let kernels = match field(&env, "kernels") {
        Json::Arr(a) => a.len(),
        other => panic!("kernels not an array: {other:?}"),
    };
    assert!(
        kernels >= 5,
        "expected the paper kernel suite, got {kernels}"
    );
    stop(&addr, handle);
}

#[test]
fn cache_survives_a_daemon_restart() {
    let (addr, handle, cache_dir) = start("restart", 1);
    let body = tiny_body("bfs", "dx100");
    let first = request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let (_, report1) = envelope(&first.body);
    stop(&addr, handle);

    // Same cache dir, new process-equivalent: the report must come back
    // as a hit without any simulation.
    let (addr, handle, _) = start_at(cache_dir, 1);
    let second = request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(second.header("x-dx100-cache"), Some("hit"));
    let (env, report2) = envelope(&second.body);
    assert_eq!(field(&env, "cached"), &Json::Bool(true));
    assert_eq!(report2, report1);
    let health = request(&addr, "GET", "/v1/health", None).unwrap();
    let h = Json::parse(health.body.trim_end()).unwrap();
    assert_eq!(field(&h, "jobs_simulated"), &Json::Int(0));
    stop(&addr, handle);
}

#[test]
fn shutdown_drains_inflight_jobs_into_the_cache() {
    let (addr, handle, cache_dir) = start("drain", 1);
    // Queue two async jobs on a single worker, then immediately shut down:
    // both must still complete and land in the cache.
    for (kernel, machine) in [("bc", "baseline"), ("bc", "dx100")] {
        let body = format!(
            "{{\"kernel\":\"{kernel}\",\"machine\":\"{machine}\",\"scale\":1e-9,\"wait\":false}}"
        );
        let resp = request(&addr, "POST", "/v1/jobs", Some(&body)).unwrap();
        assert_eq!(resp.status, 202, "{}", resp.body);
    }
    stop(&addr, handle);

    let mut spec_a = JobSpec::new("bc", Mode::Baseline);
    spec_a.scale = TINY;
    let mut spec_b = JobSpec::new("bc", Mode::Dx100);
    spec_b.scale = TINY;
    for spec in [spec_a, spec_b] {
        let path = cache_dir.join(format!("{}.json", spec.cache_key()));
        assert!(path.exists(), "{} not drained to cache", path.display());
    }
}
