//! Machine-readable run reports.
//!
//! Maps a [`RunStats`] onto the stable JSON shape consumed by downstream
//! tooling (plot scripts, CI schema checks). Field names are part of the
//! report schema — additions are fine, renames and removals are breaking
//! and require bumping `SCHEMA_VERSION`.

use dx100_common::json::{obj, Json};

use crate::epoch::EpochSample;
use crate::stats::RunStats;

/// Version stamp emitted by report writers (see `dx100-bench`); bumped on
/// any breaking change to the shapes produced here.
pub const SCHEMA_VERSION: u64 = 1;

/// The full per-run report object.
pub fn run_stats_json(stats: &RunStats) -> Json {
    obj([
        ("cycles", stats.cycles.into()),
        ("instructions", stats.instructions.into()),
        ("ipc", stats.core.ipc().into()),
        ("core", core_json(stats)),
        ("dram", dram_json(stats)),
        ("caches", caches_json(stats)),
        (
            "dx100",
            match &stats.dx100 {
                Some(dx) => dx100_json(dx),
                None => Json::Null,
            },
        ),
        ("dmp_prefetches", stats.dmp_prefetches.into()),
        (
            "epochs",
            Json::Arr(stats.epochs.iter().map(epoch_json).collect()),
        ),
        (
            "trace_events",
            match &stats.trace {
                Some(t) => t.events().len().into(),
                None => Json::Null,
            },
        ),
    ])
}

/// One epoch sample (interval metrics; see [`EpochSample`]).
pub fn epoch_json(e: &EpochSample) -> Json {
    obj([
        ("start_cycle", e.start_cycle.into()),
        ("end_cycle", e.end_cycle.into()),
        ("instructions", e.instructions.into()),
        ("dram_reads", e.dram_reads.into()),
        ("dram_writes", e.dram_writes.into()),
        ("row_buffer_hit_rate", e.row_buffer_hit_rate.into()),
        ("bandwidth_utilization", e.bandwidth_utilization.into()),
        (
            "request_buffer_occupancy",
            e.request_buffer_occupancy.into(),
        ),
        ("llc_misses", e.llc_misses.into()),
        ("llc_mpki", e.llc_mpki.into()),
        ("dx100_queue_depth", e.dx100_queue_depth.into()),
    ])
}

fn core_json(stats: &RunStats) -> Json {
    let c = &stats.core;
    obj([
        ("mem_ops_issued", c.mem_ops_issued.into()),
        ("spin_instructions", c.spin_instructions.into()),
        ("wait_cycles", c.wait_cycles.into()),
        ("stall_rob_full", c.stall_rob_full.into()),
        ("stall_lq_full", c.stall_lq_full.into()),
        ("stall_sq_full", c.stall_sq_full.into()),
        ("stall_fence", c.stall_fence.into()),
        ("rob_occupancy", c.rob_occupancy.mean().into()),
        ("lq_occupancy", c.lq_occupancy.mean().into()),
    ])
}

fn dram_json(stats: &RunStats) -> Json {
    let d = &stats.dram;
    obj([
        ("channels", stats.dram_channels.into()),
        ("reads", d.reads.into()),
        ("writes", d.writes.into()),
        ("activates", d.activates.into()),
        ("precharges", d.precharges.into()),
        ("refreshes", d.refreshes.into()),
        ("row_buffer_hit_rate", stats.row_buffer_hit_rate().into()),
        (
            "bandwidth_utilization",
            stats.bandwidth_utilization().into(),
        ),
        ("bandwidth_gbps", stats.bandwidth_gbps().into()),
        (
            "request_buffer_occupancy",
            stats.request_buffer_occupancy().into(),
        ),
        ("queue_latency", d.queue_latency.mean().into()),
    ])
}

fn caches_json(stats: &RunStats) -> Json {
    let h = &stats.hierarchy;
    obj([
        ("l1", cache_json(&h.l1)),
        ("l2", cache_json(&h.l2)),
        ("llc", cache_json(&h.llc)),
        ("l2_mpki", stats.l2_mpki().into()),
        ("llc_mpki", stats.llc_mpki().into()),
        ("total_mpki", stats.total_mpki().into()),
    ])
}

fn cache_json(c: &dx100_mem::CacheStats) -> Json {
    obj([
        ("demand_hits", c.demand_hits.into()),
        ("demand_misses", c.demand_misses.into()),
        ("hit_rate", c.hit_rate().into()),
        ("mshr_coalesced", c.mshr_coalesced.into()),
        ("mshr_full_stalls", c.mshr_full_stalls.into()),
        ("prefetch_issued", c.prefetch_issued.into()),
        ("prefetch_useful", c.prefetch_useful.into()),
        ("writebacks_received", c.writebacks_received.into()),
        ("dx100_accesses", c.dx100_accesses.into()),
        ("dx100_hits", c.dx100_hits.into()),
    ])
}

fn dx100_json(dx: &dx100_core::Dx100Stats) -> Json {
    obj([
        ("instructions_retired", dx.instructions_retired.into()),
        ("elements_processed", dx.elements_processed.into()),
        ("stream_line_requests", dx.stream_line_requests.into()),
        ("indirect_line_reads", dx.indirect_line_reads.into()),
        ("indirect_line_writes", dx.indirect_line_writes.into()),
        ("condition_skips", dx.condition_skips.into()),
        ("words_coalesced", dx.words_coalesced.into()),
        ("coalescing_factor", dx.coalescing_factor().into()),
        ("snoop_hits", dx.snoop_hits.into()),
        ("snoop_misses", dx.snoop_misses.into()),
        ("reqbuf_stall_cycles", dx.reqbuf_stall_cycles.into()),
        ("rowtable_stall_cycles", dx.rowtable_stall_cycles.into()),
        ("tlb_hits", dx.tlb_hits.into()),
        ("tlb_misses", dx.tlb_misses.into()),
        ("coherency_invalidations", dx.coherency_invalidations.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden schema test: every key downstream tooling relies on must be
    /// present, and the report must round-trip through the JSON parser.
    #[test]
    fn report_schema_is_stable() {
        let mut stats = RunStats {
            cycles: 1234,
            instructions: 5678,
            dram_channels: 2,
            ..RunStats::default()
        };
        stats.dx100 = Some(dx100_core::Dx100Stats::default());
        stats.epochs.push(crate::epoch::EpochSample {
            start_cycle: 0,
            end_cycle: 1000,
            instructions: 4000,
            dram_reads: 10,
            dram_writes: 5,
            row_buffer_hit_rate: 0.5,
            bandwidth_utilization: 0.25,
            request_buffer_occupancy: 8.0,
            llc_misses: 15,
            llc_mpki: 3.75,
            dx100_queue_depth: 7,
        });
        let text = run_stats_json(&stats).to_string();
        let parsed = Json::parse(&text).expect("report must be valid JSON");

        for key in [
            "cycles",
            "instructions",
            "ipc",
            "core",
            "dram",
            "caches",
            "dx100",
            "dmp_prefetches",
            "epochs",
            "trace_events",
        ] {
            assert!(parsed.get(key).is_some(), "missing top-level key {key}");
        }
        assert_eq!(parsed.get("cycles").and_then(Json::as_f64), Some(1234.0));
        for key in [
            "channels",
            "reads",
            "writes",
            "activates",
            "precharges",
            "refreshes",
            "row_buffer_hit_rate",
            "bandwidth_utilization",
            "bandwidth_gbps",
            "request_buffer_occupancy",
            "queue_latency",
        ] {
            assert!(
                parsed.get("dram").and_then(|d| d.get(key)).is_some(),
                "missing dram key {key}"
            );
        }
        let caches = parsed.get("caches").unwrap();
        for level in ["l1", "l2", "llc"] {
            let c = caches.get(level).expect(level);
            for key in ["demand_hits", "demand_misses", "hit_rate", "mshr_coalesced"] {
                assert!(c.get(key).is_some(), "missing {level} key {key}");
            }
        }
        let epochs = parsed.get("epochs").and_then(Json::as_arr).unwrap();
        assert_eq!(epochs.len(), 1);
        for key in [
            "start_cycle",
            "end_cycle",
            "instructions",
            "dram_reads",
            "dram_writes",
            "row_buffer_hit_rate",
            "bandwidth_utilization",
            "request_buffer_occupancy",
            "llc_misses",
            "llc_mpki",
            "dx100_queue_depth",
        ] {
            assert!(epochs[0].get(key).is_some(), "missing epoch key {key}");
        }
        assert!(parsed
            .get("dx100")
            .unwrap()
            .get("coalescing_factor")
            .is_some());
        // No trace recorded → explicit null, not a missing key.
        assert_eq!(parsed.get("trace_events"), Some(&Json::Null));
    }
}
