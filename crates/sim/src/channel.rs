//! Shared op channels: the driver appends micro-ops or whole lazy streams;
//! the core drains them.
//!
//! The handle is `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` so a whole
//! [`System`](crate::System) — and therefore a full-fidelity simulation job
//! — is `Send`: the parallel sweep executor moves jobs onto worker threads.
//! Each system is still driven by exactly one thread at a time, so every
//! lock acquisition is uncontended (the fast path of `std::sync::Mutex` is
//! a single atomic exchange; `step_bench` shows the swap from `RefCell` is
//! in the noise).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use dx100_common::CheckpointError;
use dx100_cpu::{CoreOp, OpStream};

enum Segment {
    Ops(VecDeque<CoreOp>),
    Gen(Box<dyn OpStream + Send>),
}

/// Interior of one core's channel.
#[derive(Default)]
pub struct ChannelInner {
    segments: VecDeque<Segment>,
}

impl Default for Segment {
    fn default() -> Self {
        Segment::Ops(VecDeque::new())
    }
}

impl ChannelInner {
    /// Appends literal ops (merged into a trailing op segment).
    pub fn push_ops<I: IntoIterator<Item = CoreOp>>(&mut self, ops: I) {
        if let Some(Segment::Ops(q)) = self.segments.back_mut() {
            q.extend(ops);
            return;
        }
        self.segments.push_back(Segment::Ops(ops.into_iter().collect()));
    }

    /// Appends a lazy generator to run after everything queued so far.
    pub fn push_stream(&mut self, gen: Box<dyn OpStream + Send>) {
        self.segments.push_back(Segment::Gen(gen));
    }

    fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            match self.segments.front_mut() {
                None => return None,
                Some(Segment::Ops(q)) => match q.pop_front() {
                    Some(op) => return Some(op),
                    None => {
                        self.segments.pop_front();
                    }
                },
                Some(Segment::Gen(g)) => match g.next_op() {
                    Some(op) => return Some(op),
                    None => {
                        self.segments.pop_front();
                    }
                },
            }
        }
    }

    /// Whether nothing is queued (generators count as non-empty until they
    /// report exhaustion).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
            || self
                .segments
                .iter()
                .all(|s| matches!(s, Segment::Ops(q) if q.is_empty()))
    }

    /// Snapshots the queued segments for a [`System`](crate::System)
    /// checkpoint. Fails with [`CheckpointError::UnclonableStream`] if a
    /// queued generator does not support `try_clone`.
    pub fn save_segments(&self) -> Result<Vec<SegmentState>, CheckpointError> {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Ops(q) => Ok(SegmentState::Ops(q.clone())),
                Segment::Gen(g) => g
                    .try_clone()
                    .map(SegmentState::Gen)
                    .ok_or(CheckpointError::UnclonableStream),
            })
            .collect()
    }

    /// Replaces the queued segments with a previously saved snapshot.
    pub fn restore_segments(&mut self, saved: &[SegmentState]) {
        self.segments = saved
            .iter()
            .map(|s| match s {
                SegmentState::Ops(q) => Segment::Ops(q.clone()),
                SegmentState::Gen(g) => Segment::Gen(
                    g.try_clone()
                        .expect("a saved generator clone must itself be clonable"),
                ),
            })
            .collect();
    }
}

/// Saved form of one channel segment. Generators are stored as `Send`
/// clones so whole-`System` checkpoints can cross thread boundaries.
pub enum SegmentState {
    /// Literal queued micro-ops.
    Ops(VecDeque<CoreOp>),
    /// A lazy generator, captured via `OpStream::try_clone`.
    Gen(Box<dyn OpStream + Send + Sync>),
}

/// Shared handle to a core's channel: the [`System`](crate::System) holds
/// one side for the driver, the core holds the other as its op stream.
#[derive(Clone, Default)]
pub struct ChannelStream(Arc<Mutex<ChannelInner>>);

impl ChannelStream {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the channel interior (uncontended in practice: a system and
    /// its cores live on one thread).
    pub fn inner(&self) -> MutexGuard<'_, ChannelInner> {
        self.0.lock().unwrap()
    }
}

impl OpStream for ChannelStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        self.inner().next_op()
    }
}

impl std::fmt::Debug for ChannelStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelStream")
            .field("empty", &self.inner().is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx100_cpu::VecStream;

    #[test]
    fn ops_then_stream_then_ops() {
        let ch = ChannelStream::new();
        ch.inner().push_ops([CoreOp::alu()]);
        ch.inner()
            .push_stream(Box::new(VecStream::new(vec![CoreOp::load(64, 1)])));
        ch.inner().push_ops([CoreOp::store(128, 2)]);
        let mut s = ch.clone();
        assert_eq!(s.next_op(), Some(CoreOp::alu()));
        assert_eq!(s.next_op(), Some(CoreOp::load(64, 1)));
        assert_eq!(s.next_op(), Some(CoreOp::store(128, 2)));
        assert_eq!(s.next_op(), None);
        // Refill after exhaustion works (driver appends later).
        ch.inner().push_ops([CoreOp::alu()]);
        assert_eq!(s.next_op(), Some(CoreOp::alu()));
    }

    #[test]
    fn trailing_ops_merge() {
        let ch = ChannelStream::new();
        ch.inner().push_ops([CoreOp::alu()]);
        ch.inner().push_ops([CoreOp::alu()]);
        assert_eq!(ch.inner().segments.len(), 1);
    }

    #[test]
    fn channel_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ChannelStream>();
    }
}
