//! Full-system simulation glue: the paper's Table 3 machine assembled from
//! the substrate crates and clocked as one.
//!
//! A [`System`] owns the cores (`dx100-cpu`), the cache hierarchy
//! (`dx100-mem`), the DRAM back-end (`dx100-dram`), zero or more DX100
//! instances (`dx100-core`), and optionally the DMP prefetcher
//! (`dx100-prefetch`). Workloads interact with it through the [`Driver`]
//! trait — a state machine standing in for the software running on the
//! cores: it installs micro-op streams, sends DX100 instructions (as timed
//! MMIO stores), waits on scratchpad ready flags, and reads results.
//!
//! Clocking: CPU components tick at 3.2 GHz; the DRAM back-end ticks every
//! other CPU cycle (DDR4-3200, tCK = 625 ps).
//!
//! # Example
//!
//! ```
//! use dx100_sim::{RunStats, SystemConfig};
//!
//! let cfg = SystemConfig::paper_baseline();
//! assert_eq!(cfg.cores, 4);
//! assert!(cfg.dx100.is_none());
//! let dx = SystemConfig::paper_dx100();
//! assert!(dx.dx100.is_some());
//! // The DX100 system trades 2 MB of LLC for the scratchpad.
//! assert_eq!(
//!     cfg.hierarchy.llc.size_bytes - dx.hierarchy.llc.size_bytes,
//!     2 * 1024 * 1024
//! );
//! # let _: Option<RunStats> = None;
//! ```

pub mod config;
pub mod driver;
pub mod epoch;
pub mod profile;
pub mod region;
pub mod report;
pub mod stats;
pub mod system;

pub use config::{ObservabilityConfig, SystemConfig};
pub use driver::{Driver, DriverStatus};
pub use dx100_common::{Checkpoint, CheckpointError};
pub use epoch::{EpochSample, EpochSampler};
pub use profile::{RunTelemetry, SystemProfile, PROFILE_VERSION};
pub use stats::RunStats;
pub use system::{System, SystemCheckpoint};
