//! The assembled machine and its cycle loop.

use std::collections::{HashMap, HashSet, VecDeque};

use dx100_common::flags::{FlagBoard, FlagId};
use dx100_common::{Addr, CoreId, Cycle, DelayQueue, LineAddr, ReqId, TraceHandle};
use dx100_core::isa::{Instruction, RegId, TileId};
use dx100_core::{Dx100Engine, MemPorts, MemoryImage};
use dx100_cpu::{Core, CoreOp, MemKind, OpStream, OpStreamKind};
use dx100_dram::{DramSystem, MemRequest};
use dx100_mem::{Access, DramBound, MemoryHierarchy, Requester};
use dx100_prefetch::Dmp;

use crate::config::SystemConfig;
use crate::driver::{Driver, DriverStatus};
use crate::epoch::EpochSampler;
use crate::profile::{RunTelemetry, SystemProfile};
use crate::region::{RegionCoherence, RegionGrant};
use crate::stats::RunStats;

/// Where a DRAM-level request originated.
#[derive(Debug, Clone, Copy)]
enum DramOrigin {
    /// LLC demand/prefetch miss: fill the hierarchy on completion.
    HierRead,
    /// LLC write-back: fire and forget.
    HierWrite,
    /// DX100 direct injection: deliver to the engine's response inbox.
    Dx100 { engine: usize, id: ReqId },
}

/// Deferred driver-side effects executed when a core's MMIO store lands.
#[derive(Debug, Clone)]
enum MmioAction {
    PushInstr {
        engine: usize,
        instr: Instruction,
        flag: Option<FlagId>,
    },
    WriteReg {
        engine: usize,
        reg: RegId,
        value: u64,
    },
    WriteTile {
        engine: usize,
        tile: TileId,
        data: Vec<u64>,
    },
}

/// Mask separating a DX100 instance's LLC-request ids.
const ENGINE_ID_SHIFT: u32 = 56;

/// Page granularity of the directory's H-bits (4 KiB).
const PAGE_SHIFT: u32 = 12;

/// One MMIO event waiting in a per-engine delivery queue. Everything a
/// core sends to an engine — register writes, tile writes, instructions —
/// must apply in device order: an instruction stalled on region
/// acquisition snapshots its scalar registers at delivery, so a younger
/// register write overtaking it would corrupt the snapshot.
#[derive(Debug, Clone)]
enum PendingMmio {
    Instr {
        instr: Instruction,
        flag: Option<FlagId>,
        /// Earliest delivery time (region-acquisition latency).
        ready_at: Cycle,
        /// The region grant was already counted; do not re-request.
        acquired: bool,
    },
    Reg {
        reg: RegId,
        value: u64,
    },
    Tile {
        tile: TileId,
        data: Vec<u64>,
    },
}

/// The full simulated system.
pub struct System {
    cfg: SystemConfig,
    clock: Cycle,
    cores: Vec<Core>,
    hier: MemoryHierarchy,
    dram: DramSystem,
    engines: Vec<Dx100Engine>,
    core_engine: Vec<usize>,
    dmp: Option<Dmp>,
    flags: FlagBoard,
    image: MemoryImage,
    actions: Vec<Option<MmioAction>>,
    dram_pending: HashMap<ReqId, DramOrigin>,
    next_dram_id: ReqId,
    dram_retry: VecDeque<(MemRequest, DramOrigin)>,
    spd_fills: DelayQueue<LineAddr>,
    region: RegionCoherence,
    /// Pages whose data the host produced through its caches (the
    /// directory's page-level H-bits): DX100 accesses to these route via
    /// the LLC, where misses allocate, capturing any reuse.
    host_pages: HashSet<u64>,
    /// Per-engine in-order MMIO delivery queues (multi-instance only):
    /// region acquisition may delay the head, but never reorders.
    instr_delivery: Vec<VecDeque<PendingMmio>>,
    /// (engine, handle) → region base, for release on retire.
    region_pins: HashMap<(usize, u64), Addr>,
    roi_start: Cycle,
    roi_snapshot: Option<RunStats>,
    issue_scratch: Vec<(CoreId, dx100_cpu::MemIssue)>,
    to_dram_scratch: Vec<DramBound>,
    /// Write-backs evicted by DRAM/SPD fills, reused across cycles.
    wb_scratch: Vec<DramBound>,
    /// Read lines completed by DRAM this tick, reused across cycles.
    fill_scratch: Vec<LineAddr>,
    /// Telemetry: cycles elided by event-driven skipping. Deliberately not
    /// part of [`RunStats`], which must stay bit-identical with skipping
    /// off.
    skipped_cycles: u64,
    /// Telemetry: number of quiescent spans entered.
    skip_events: u64,
    /// Cached quiescence certificate: cycles before this one may be elided
    /// without re-checking the machine. Invalidated by every driver-facing
    /// mutation (see [`System::wake`]).
    skip_until: Cycle,
    /// Start of the elided-but-uncredited span `[span_start, clock)`.
    /// While a certificate is live, elided cycles only advance the clock;
    /// their stat/trace bookkeeping is credited in one batched
    /// [`System::settle`] call when the span closes (certificate expiry or
    /// [`System::wake`]). Invariant everywhere outside the skip fast path:
    /// `span_start == clock`.
    span_start: Cycle,
    /// Root trace handle when tracing is on; components hold child handles.
    trace_root: Option<TraceHandle>,
    /// Separate sink for profile counter events (`"ph":"C"`). Kept out of
    /// `trace_root` so [`RunStats::trace`] stays byte-identical with
    /// profiling on or off; consumers merge it into the Chrome trace at
    /// write time via [`RunTelemetry::counters`].
    profile_trace: Option<TraceHandle>,
    /// Epoch time-series sampler when epoch sampling is on.
    sampler: Option<EpochSampler>,
}

impl System {
    /// Builds the machine over an application memory image.
    pub fn new(cfg: SystemConfig, image: MemoryImage) -> Self {
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|c| Core::new(c, cfg.core.clone(), OpStreamKind::channel()))
            .collect();
        let mut hier = MemoryHierarchy::new(cfg.hierarchy.clone());
        let mut dram = DramSystem::new(cfg.dram.clone());
        let mut engines = Vec::new();
        if let Some(dxcfg) = &cfg.dx100 {
            for i in 0..cfg.dx100_instances {
                let mut e = Dx100Engine::new(dxcfg.clone(), &cfg.dram);
                e.set_spd_base(dx100_core::engine::SPD_REGION_BASE + ((i as u64) << 40));
                e.preload_ptes(0, image.high_water());
                engines.push(e);
            }
        }
        let instances = engines.len().max(1);
        let per = cfg.cores.div_ceil(instances);
        let core_engine = (0..cfg.cores).map(|c| c / per).collect();
        let dmp = cfg.dmp.map(|d| Dmp::new(d, cfg.cores));
        let instr_delivery = (0..engines.len()).map(|_| VecDeque::new()).collect();
        let trace_root = cfg
            .obs
            .trace
            .then(|| TraceHandle::root(cfg.obs.trace_capacity));
        if let Some(root) = &trace_root {
            dram.attach_trace(root, cfg.cpu_cycles_per_dram_tick);
            hier.attach_trace(root);
            for (c, core) in cores.iter_mut().enumerate() {
                core.set_trace(root.track(format!("core{c}")));
            }
            for (i, engine) in engines.iter_mut().enumerate() {
                engine.set_trace(root.track(format!("DX100.{i}")));
            }
        }
        let mut profile_trace = None;
        if cfg.obs.profile {
            for core in &mut cores {
                core.enable_profile();
            }
            hier.enable_profile();
            dram.enable_profile();
            for engine in &mut engines {
                engine.enable_profile();
            }
            profile_trace = Some(TraceHandle::root(cfg.obs.trace_capacity));
        }
        let sampler = cfg.obs.epoch_cycles.map(|e| EpochSampler::new(e, 0));
        System {
            clock: 0,
            cores,
            hier,
            dram,
            engines,
            core_engine,
            dmp,
            flags: FlagBoard::new(),
            image,
            actions: Vec::new(),
            dram_pending: HashMap::new(),
            next_dram_id: 0,
            dram_retry: VecDeque::new(),
            spd_fills: DelayQueue::new(),
            region: RegionCoherence::new(),
            host_pages: HashSet::new(),
            instr_delivery,
            region_pins: HashMap::new(),
            roi_start: 0,
            roi_snapshot: None,
            issue_scratch: Vec::new(),
            to_dram_scratch: Vec::new(),
            wb_scratch: Vec::new(),
            fill_scratch: Vec::new(),
            skipped_cycles: 0,
            skip_events: 0,
            skip_until: 0,
            span_start: 0,
            trace_root,
            profile_trace,
            sampler,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Driver-facing API (the "software" view of the machine)
    // ------------------------------------------------------------------

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.clock
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cfg.cores
    }

    /// Allocates a synchronization flag.
    pub fn alloc_flag(&mut self) -> FlagId {
        self.flags.alloc()
    }

    /// Reads a flag.
    pub fn flag(&self, f: FlagId) -> bool {
        self.flags.get(f)
    }

    /// Clears a flag for reuse.
    pub fn clear_flag(&mut self, f: FlagId) {
        self.wake();
        self.flags.clear(f);
    }

    /// Declares `[base, base + bytes)` as host-produced: a preceding phase
    /// of the application wrote it through the cores' caches, so the
    /// coherence directory's page-level H-bits are set and DX100 accesses
    /// to these pages route via the LLC rather than directly to DRAM.
    /// LLC misses on this path allocate, so cross-tile reuse is captured —
    /// a false-positive H-bit costs one LLC lookup, exactly the paper's
    /// stated trade-off. Kernels call this for arrays the host computes
    /// between offload phases (CG's `x`, hash-join build tables, UME mesh
    /// values); data only ever touched by DX100 keeps the direct-DRAM path.
    pub fn mark_host_resident(&mut self, base: Addr, bytes: u64) {
        self.wake();
        let first = base >> PAGE_SHIFT;
        let last = (base + bytes.max(1) - 1) >> PAGE_SHIFT;
        for p in first..=last {
            self.host_pages.insert(p);
        }
    }

    /// Appends literal micro-ops to a core's program.
    pub fn push_ops<I: IntoIterator<Item = CoreOp>>(&mut self, core: CoreId, ops: I) {
        self.wake();
        self.cores[core].channel_mut().push_ops(ops);
        self.cores[core].nudge();
    }

    /// Appends a lazy op generator to a core's program.
    pub fn push_stream(&mut self, core: CoreId, gen: impl OpStream + Send + 'static) {
        self.wake();
        self.cores[core].channel_mut().push_gen(Box::new(gen));
        self.cores[core].nudge();
    }

    /// Blocks the core on `flag` (the `wait` API; `spin` charges poll
    /// instructions, modeling OpenMP critical sections).
    pub fn push_wait(&mut self, core: CoreId, flag: FlagId, spin: bool) {
        self.push_ops(core, [CoreOp::WaitFlag { flag, spin }]);
    }

    /// Sends a DX100 instruction from `core`: three timed 64-bit MMIO
    /// stores; the instruction enters the accelerator when the last beat
    /// lands. `flag` is set when the instruction retires.
    pub fn send_instruction(&mut self, core: CoreId, instr: Instruction, flag: Option<FlagId>) {
        let engine = self.core_engine[core];
        let latency = self.mmio_latency();
        let action = self.register_action(MmioAction::PushInstr {
            engine,
            instr,
            flag,
        });
        self.push_ops(
            core,
            [
                CoreOp::Mmio {
                    latency,
                    signal: None,
                },
                CoreOp::Mmio {
                    latency,
                    signal: None,
                },
                CoreOp::Mmio {
                    latency,
                    signal: Some(action),
                },
            ],
        );
    }

    /// Writes a whole scratchpad tile from `core`. The *data* lands when the
    /// trailing MMIO beat completes; the time for producing the elements
    /// themselves should be modeled with store ops pushed beforehand (see
    /// `produce_tile_ops` in the workloads crate).
    pub fn send_tile_write(&mut self, core: CoreId, tile: TileId, data: Vec<u64>) {
        let engine = self.core_engine[core];
        let latency = self.mmio_latency();
        let action = self.register_action(MmioAction::WriteTile { engine, tile, data });
        self.push_ops(
            core,
            [CoreOp::Mmio {
                latency,
                signal: Some(action),
            }],
        );
    }

    /// Writes a DX100 scalar register from `core` (one timed MMIO store).
    pub fn send_reg_write(&mut self, core: CoreId, reg: RegId, value: u64) {
        let engine = self.core_engine[core];
        let latency = self.mmio_latency();
        let action = self.register_action(MmioAction::WriteReg { engine, reg, value });
        self.push_ops(
            core,
            [CoreOp::Mmio {
                latency,
                signal: Some(action),
            }],
        );
    }

    fn mmio_latency(&self) -> u16 {
        self.cfg
            .dx100
            .as_ref()
            .map(|d| d.mmio_latency as u16)
            .unwrap_or(40)
    }

    fn register_action(&mut self, a: MmioAction) -> u32 {
        self.actions.push(Some(a));
        (self.actions.len() - 1) as u32
    }

    /// DX100 instance serving `core`.
    pub fn engine_of_core(&self, core: CoreId) -> usize {
        self.core_engine[core]
    }

    /// Mutable access to a DX100 instance (functional setup: tiles, PTEs).
    pub fn dx100(&mut self, instance: usize) -> &mut Dx100Engine {
        self.wake();
        &mut self.engines[instance]
    }

    /// Shared access to a DX100 instance (reading result tiles).
    pub fn dx100_ref(&self, instance: usize) -> &Dx100Engine {
        &self.engines[instance]
    }

    /// Number of DX100 instances.
    pub fn num_engines(&self) -> usize {
        self.engines.len()
    }

    /// The application memory image (functional data).
    pub fn image(&mut self) -> &mut MemoryImage {
        self.wake();
        &mut self.image
    }

    /// Shared view of the memory image.
    pub fn image_ref(&self) -> &MemoryImage {
        &self.image
    }

    /// Consumes the system, returning the final memory image (result
    /// verification).
    pub fn into_image(self) -> MemoryImage {
        self.image
    }

    /// The DMP prefetcher, when configured.
    pub fn dmp_mut(&mut self) -> Option<&mut Dmp> {
        self.wake();
        self.dmp.as_mut()
    }

    /// Memory-mapped address of a scratchpad element as seen by `core`.
    pub fn spd_elem_addr(&self, core: CoreId, tile: TileId, i: usize) -> Addr {
        self.engines[self.core_engine[core]].tile_elem_addr(tile, i)
    }

    /// Whether a core has drained its program.
    pub fn core_idle(&self, core: CoreId) -> bool {
        self.cores[core].is_done()
    }

    /// Whether every core has drained.
    pub fn cores_idle(&self) -> bool {
        self.cores.iter().all(|c| c.is_done())
    }

    /// Starts the region of interest: clears all statistics.
    pub fn roi_begin(&mut self) {
        self.wake();
        self.roi_start = self.clock;
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.hier.reset_stats();
        self.dram.reset_stats();
        for e in &mut self.engines {
            e.reset_stats();
        }
        if let Some(s) = &mut self.sampler {
            s.rebase(self.clock);
        }
    }

    /// Ends the region of interest, snapshotting statistics.
    pub fn roi_end(&mut self) {
        // Any elided-but-uncredited span must be folded into the stats
        // before the snapshot (and the certificate no longer describes the
        // machine the driver is about to mutate).
        self.wake();
        self.roi_snapshot = Some(self.collect_stats());
    }

    // ------------------------------------------------------------------
    // The cycle loop
    // ------------------------------------------------------------------

    /// Runs `driver` until it reports done and the machine drains.
    ///
    /// # Panics
    /// Panics if the simulation exceeds the configured `max_cycles`
    /// (deadlocked driver) or a DX100 engine halts on a runtime error.
    pub fn run(&mut self, driver: &mut dyn Driver) -> RunStats {
        let mut done = false;
        loop {
            if !done && driver.poll(self) == DriverStatus::Done {
                done = true;
            }
            self.step();
            if done && self.is_drained() {
                break;
            }
            assert!(
                self.clock < self.cfg.max_cycles,
                "simulation exceeded {} cycles — driver deadlock?\n{}",
                self.cfg.max_cycles,
                self.debug_snapshot()
            );
        }
        self.finalize_observability()
    }

    /// Closes open trace spans, records the final (partial) epoch, and
    /// attaches both to the run's statistics.
    fn finalize_observability(&mut self) -> RunStats {
        self.settle();
        let now = self.clock;
        if self.trace_root.is_some() {
            for c in &mut self.cores {
                c.finish_trace(now);
            }
            for e in &mut self.engines {
                e.finish_trace(now);
            }
        }
        let mut stats = self
            .roi_snapshot
            .take()
            .unwrap_or_else(|| self.collect_stats());
        if self.sampler.is_some() {
            let cumulative = self.collect_stats();
            let depth = self.dx100_queue_depth();
            if let Some(s) = &mut self.sampler {
                s.finish(now, &cumulative, depth);
                stats.epochs = s.take_samples();
            }
        }
        // Final counter sample at the last cycle, sampler or not, so a
        // profiled trace always carries the counter tracks.
        self.emit_profile_counters(now, self.dx100_queue_depth());
        if let Some(root) = &self.trace_root {
            stats.trace = Some(root.snapshot());
        }
        stats
    }

    /// Row Table column entries buffered across all DX100 instances.
    fn dx100_queue_depth(&self) -> u64 {
        self.engines.iter().map(|e| e.queue_depth() as u64).sum()
    }

    fn is_drained(&self) -> bool {
        self.cores.iter().all(|c| c.is_done())
            && self.hier.is_idle()
            && self.dram.is_idle()
            && self.engines.iter().all(|e| e.is_idle())
            && self.dram_retry.is_empty()
            && self.spd_fills.is_empty()
            && self.instr_delivery.iter().all(|q| q.is_empty())
    }

    /// Accumulated `(skipped_cycles, skip_events)` cycle-skip telemetry.
    pub fn skip_stats(&self) -> (u64, u64) {
        (self.skipped_cycles, self.skip_events)
    }

    /// Rolls every component's cycle attribution into one
    /// [`SystemProfile`], or `None` when `obs.profile` is off. Checks the
    /// MECE contract on collection: each component's buckets must sum to
    /// exactly the cycles (or DRAM ticks) it was timed for.
    pub fn collect_profile(&self) -> Option<SystemProfile> {
        if !self.cfg.obs.profile {
            return None;
        }
        debug_assert_eq!(
            self.span_start, self.clock,
            "profile collected with an unsettled skip span"
        );
        let elapsed = self.clock - self.roi_start;
        let mut cores = dx100_cpu::CoreProfile::default();
        let mut live = 0u64;
        for c in &self.cores {
            let p = c.profile()?;
            debug_assert_eq!(
                p.attributed(),
                c.stats().cycles,
                "core {} attribution is not MECE",
                c.id()
            );
            live += p.attributed();
            cores.merge(p);
        }
        let core_drained = elapsed * self.cores.len() as u64 - live;
        let engines = if self.engines.is_empty() {
            None
        } else {
            let mut agg = dx100_core::EngineProfile::default();
            for e in &self.engines {
                let p = e.profile()?;
                debug_assert_eq!(p.attributed(), elapsed, "DX100 attribution is not MECE");
                agg.merge(p);
            }
            Some(agg)
        };
        let dram_ticks = self.dram.stats().ticks;
        let dram: Vec<dx100_dram::ChannelProfile> = self
            .dram
            .channel_profiles()
            .into_iter()
            .map(|p| {
                let p = p?;
                debug_assert_eq!(p.attributed(), dram_ticks, "DRAM attribution is not MECE");
                Some(p.clone())
            })
            .collect::<Option<_>>()?;
        Some(SystemProfile {
            elapsed,
            num_cores: self.cores.len(),
            cores,
            core_drained,
            engines,
            dram,
            caches: self.hier.profile()?,
        })
    }

    /// Cycle-skip counters plus (when profiling is on) the full cycle
    /// attribution — everything deliberately kept outside [`RunStats`].
    pub fn telemetry(&self) -> RunTelemetry {
        RunTelemetry {
            skipped_cycles: self.skipped_cycles,
            skip_events: self.skip_events,
            profile: self.collect_profile(),
            counters: self.profile_trace.as_ref().map(|t| t.snapshot()),
        }
    }

    /// Emits Chrome-trace counter tracks (`"ph":"C"`) for the headline
    /// utilization series, into the profile-only sink. Called only at epoch
    /// boundaries and at finalization, which the skip certificate never
    /// elides, so the emitted series is bit-identical with cycle skipping
    /// on or off.
    fn emit_profile_counters(&self, now: Cycle, dx100_depth: u64) {
        let Some(root) = &self.profile_trace else {
            return;
        };
        let active: u64 = self
            .cores
            .iter()
            .filter_map(|c| c.profile())
            .map(|p| p.active)
            .sum();
        let cmd: u64 = self
            .dram
            .channel_profiles()
            .into_iter()
            .flatten()
            .map(|p| p.cmd_ticks)
            .sum();
        root.counter("profile", "core_active_cycles", now, active);
        root.counter("profile", "dram_cmd_ticks", now, cmd);
        root.counter("profile", "dx100_queue_depth", now, dx100_depth);
    }

    /// Event-driven cycle skipping: when every component certifies that the
    /// current cycle would be pure bookkeeping, cache a quiescence
    /// certificate up to the earliest cycle at which anything can happen
    /// and elide the current cycle. [`System::step`] then elides one cycle
    /// per call until the certificate expires, crediting each elided cycle
    /// so statistics, epoch samples, and traces stay bit-identical to a
    /// cycle-by-cycle run. Returns whether the cycle was elided (in which
    /// case the caller must not run the normal tick).
    ///
    /// Safe because every `next_event` implementation is conservative: it
    /// may report an event earlier than anything real (the tick at that
    /// cycle is then a no-op and stepping resumes normally), but never
    /// later. Eliding one cycle per `step` call — rather than jumping the
    /// clock across the whole span — keeps the driver's poll cadence
    /// exactly as in a cycle-by-cycle run: drivers are polled once per
    /// cycle either way, so even stateful poll sequencing (a driver that
    /// observes completion on one poll and reports `Done` on the next)
    /// sees the same clock values. Any driver call that mutates the
    /// machine revokes the certificate via [`System::wake`].
    fn try_skip(&mut self) -> bool {
        let now = self.clock;
        // Work queued for this very cycle forbids a skip.
        if !self.dram_retry.is_empty()
            || self.dram.has_pending_responses()
            || self.dmp.as_ref().is_some_and(|d| d.has_pending())
            || self.cores.iter().any(|c| c.has_mmio_signals())
            || self.sampler.as_ref().is_some_and(|s| s.due(now))
        {
            return false;
        }
        fn fold(ev: Option<Cycle>, t: Cycle) -> Option<Cycle> {
            Some(ev.map_or(t, |e: Cycle| e.min(t)))
        }
        let mut ev: Option<Cycle> = None;
        for core in &mut self.cores {
            match core.next_event(now, &self.flags) {
                Some(t) if t <= now => return false,
                Some(t) => ev = fold(ev, t),
                None => {}
            }
        }
        // In-order MMIO delivery: only a not-yet-ready instruction head is
        // certainly inert (a ready head may acquire regions; a register or
        // tile write applies immediately).
        for q in &self.instr_delivery {
            match q.front() {
                None => {}
                Some(PendingMmio::Instr { ready_at, .. }) => {
                    if *ready_at <= now {
                        return false;
                    }
                    ev = fold(ev, *ready_at);
                }
                Some(_) => return false,
            }
        }
        match self.hier.next_event(now) {
            Some(t) if t <= now => return false,
            Some(t) => ev = fold(ev, t),
            None => {}
        }
        for e in &self.engines {
            match e.next_event(now) {
                Some(t) if t <= now => return false,
                Some(t) => ev = fold(ev, t),
                None => {}
            }
        }
        if let Some(t) = self.spd_fills.next_ready_at() {
            if t <= now {
                return false;
            }
            ev = fold(ev, t);
        }
        // DRAM, converting clock domains: DRAM tick `d` executes during CPU
        // cycle `d * m`, and the next one due is at the next multiple of
        // `m` ≥ now (possibly this very cycle).
        let m = self.cfg.cpu_cycles_per_dram_tick;
        let d0 = now.div_ceil(m);
        if let Some(td) = self.dram.next_event(d0) {
            let t = td * m;
            if t <= now {
                return false;
            }
            ev = fold(ev, t);
        }
        // Fully quiescent. Jump to the earliest event, clamped to the next
        // epoch boundary (samples must land on the same cycles as a
        // cycle-by-cycle run) and to the simulation cap (the deadlock
        // panic must fire at the same cycle). With no event at all —
        // drained machine or true deadlock — plain stepping already
        // matches baseline behavior, so don't jump.
        let Some(mut target) = ev else {
            return false;
        };
        if let Some(s) = &self.sampler {
            target = target.min(s.next_boundary());
        }
        target = target.min(self.cfg.max_cycles);
        if target <= now {
            return false;
        }
        self.skip_until = target;
        self.skip_events += 1;
        // `settle` ran just before `try_skip`, so `span_start == now`:
        // eliding is now just the clock increment; crediting is deferred
        // to the batched `settle` when the span closes.
        self.skipped_cycles += 1;
        self.clock = now + 1;
        true
    }

    /// Credits the elided span `[span_start, clock)` in one batch: exactly
    /// the bookkeeping per-cycle no-op ticks would have done (stall/idle
    /// accounting, occupancy samples via `RunningAverage::sample_n`, trace
    /// span updates, the every-other-cycle DRAM tick counter). Bit-identical
    /// to per-cycle crediting because a quiescent span's idle classification
    /// is constant — its inputs are frozen until the certificate expires or
    /// is revoked — and all batched samples sit on a dyadic grid.
    ///
    /// Public because drivers that checkpoint mid-run must settle before
    /// calling [`Checkpoint::save`](dx100_common::Checkpoint::save):
    /// with cycle skipping on, the clock can run ahead of the credited
    /// stats inside a certified span, and a checkpoint taken there would
    /// silently drop the span's idle accounting. Settling is idempotent
    /// and leaves any active skip certificate intact.
    pub fn settle(&mut self) {
        let (from, to) = (self.span_start, self.clock);
        if from >= to {
            return;
        }
        for core in &mut self.cores {
            core.credit_idle_span(from, to, &self.flags);
        }
        for e in &mut self.engines {
            e.credit_idle_span(from, to);
        }
        // DRAM ticks at every multiple of `m`; the span covers the ticks
        // in [from, to), i.e. ceil(to/m) - ceil(from/m) of them.
        let m = self.cfg.cpu_cycles_per_dram_tick;
        let ticks = to.div_ceil(m) - from.div_ceil(m);
        if ticks > 0 {
            self.dram.credit_idle_ticks(from.div_ceil(m), ticks);
        }
        // The hierarchy ticks every CPU cycle; its occupancy profile gets
        // one frozen sample per elided cycle.
        self.hier.credit_idle_span(to - from);
        self.span_start = to;
    }

    /// Revokes the cached quiescence certificate, settling any pending
    /// elided span first (the settle must see the pre-mutation machine, so
    /// driver-facing methods call `wake` *before* mutating state). Every
    /// driver-facing method that can change machine state calls this, so
    /// work injected between steps is picked up on the very next cycle.
    fn wake(&mut self) {
        self.settle();
        self.skip_until = 0;
    }

    /// Advances the machine one CPU cycle.
    pub fn step(&mut self) {
        if self.cfg.cycle_skip {
            if self.clock < self.skip_until {
                // Inside a certified span: the entire per-cycle cost is
                // these two increments; crediting happens in `settle`.
                self.skipped_cycles += 1;
                self.clock += 1;
                return;
            }
            self.settle();
            if self.try_skip() {
                return;
            }
        }
        let now = self.clock;

        // --- Cores tick and issue memory operations. ---
        let mut issues = std::mem::take(&mut self.issue_scratch);
        issues.clear();
        for core in &mut self.cores {
            let cid = core.id();
            core.tick(now, &mut self.flags, &mut |iss| issues.push((cid, iss)));
        }
        for (c, iss) in issues.drain(..) {
            if let (Some(dmp), MemKind::Load) = (&mut self.dmp, iss.kind) {
                dmp.on_core_load(c, iss.addr, &self.image);
            }
            let access = Access {
                id: iss.seq,
                line: LineAddr::containing(iss.addr),
                is_write: matches!(iss.kind, MemKind::Store | MemKind::Atomic),
                stream: iss.stream,
                is_prefetch: false,
                requester: Requester::Core(c),
            };
            self.hier.core_access(access, now);
        }
        self.issue_scratch = issues;

        // --- Execute landed MMIO actions. ---
        for c in 0..self.cores.len() {
            for signal in self.cores[c].drain_mmio_signals() {
                let action = self.actions[signal as usize]
                    .take()
                    .expect("MMIO action executed twice");
                self.apply_action(action);
            }
        }

        // --- In-order instruction delivery with region coherence. ---
        self.deliver_instructions(now);

        // --- DMP prefetch injection. ---
        if let Some(dmp) = &mut self.dmp {
            for _ in 0..2 {
                if let Some((core, line)) = dmp.pop_prefetch() {
                    self.hier.inject_prefetch_l2(core, line, now);
                } else {
                    break;
                }
            }
        }

        // --- Cache hierarchy. ---
        let mut to_dram = std::mem::take(&mut self.to_dram_scratch);
        to_dram.clear();
        self.hier.tick(now, &mut to_dram);

        // --- DX100 engines. ---
        {
            let dram_now = now / self.cfg.cpu_cycles_per_dram_tick;
            let (engines, hier, dram) = (&mut self.engines, &mut self.hier, &mut self.dram);
            for (e_idx, engine) in engines.iter_mut().enumerate() {
                let mut ports = SystemPorts {
                    e_idx,
                    hier,
                    dram,
                    pending: &mut self.dram_pending,
                    next_id: &mut self.next_dram_id,
                    dram_now,
                    host_pages: &self.host_pages,
                };
                engine.tick(now, &mut self.image, &mut ports);
                if let Some(err) = engine.error() {
                    panic!("DX100 instance {e_idx} halted: {err}");
                }
            }
        }
        // Engine retirements → flags + region releases.
        for e_idx in 0..self.engines.len() {
            for (handle, flag) in self.engines[e_idx].drain_retired() {
                if let Some(f) = flag {
                    self.flags.set(f);
                }
                if let Some(base) = self.region_pins.remove(&(e_idx, handle)) {
                    self.region.release(e_idx, base);
                }
            }
        }
        // Engine LLC responses.
        while let Some((id, _w)) = self.hier.pop_dx100_response() {
            let e_idx = (id >> ENGINE_ID_SHIFT) as usize;
            let inner = id & ((1u64 << ENGINE_ID_SHIFT) - 1);
            self.engines[e_idx].mem_response(inner);
        }

        // --- Route LLC↔DRAM traffic (with SPD-region interception). ---
        self.route_to_dram(&mut to_dram);
        self.to_dram_scratch = to_dram;

        // Retry DRAM enqueues that hit a full buffer: peek to probe for
        // space, pop exactly once on success.
        let dram_now = now / self.cfg.cpu_cycles_per_dram_tick;
        while let Some(&(req, _)) = self.dram_retry.front() {
            if !self.dram.try_enqueue(req, dram_now) {
                break;
            }
            let (req, origin) = self.dram_retry.pop_front().expect("probed head");
            self.dram_pending.insert(req.id, origin);
        }

        // --- Scratchpad-region fills (core reads of gathered tiles). ---
        let mut extra = std::mem::take(&mut self.wb_scratch);
        extra.clear();
        while let Some(line) = self.spd_fills.pop_ready(now) {
            self.hier.dram_fill(line, now, &mut extra);
        }
        if !extra.is_empty() {
            self.route_to_dram(&mut extra);
        }
        self.wb_scratch = extra;

        // --- DRAM tick (every other CPU cycle). ---
        if now.is_multiple_of(self.cfg.cpu_cycles_per_dram_tick) {
            self.dram.tick(dram_now);
            let mut fills = std::mem::take(&mut self.fill_scratch);
            fills.clear();
            while let Some(resp) = self.dram.pop_response() {
                match self.dram_pending.remove(&resp.id) {
                    Some(DramOrigin::HierRead) => fills.push(resp.line),
                    Some(DramOrigin::HierWrite) => {}
                    Some(DramOrigin::Dx100 { engine, id }) => {
                        self.engines[engine].mem_response(id);
                    }
                    None => debug_assert!(false, "unknown DRAM response"),
                }
            }
            let mut extra = std::mem::take(&mut self.wb_scratch);
            extra.clear();
            for line in fills.drain(..) {
                self.hier.dram_fill(line, now, &mut extra);
            }
            if !extra.is_empty() {
                self.route_to_dram(&mut extra);
            }
            self.wb_scratch = extra;
            self.fill_scratch = fills;
        }

        // --- Core memory responses. ---
        while let Some(resp) = self.hier.pop_core_response() {
            self.cores[resp.core].mem_complete(resp.id, now);
        }

        // --- Epoch boundary: snapshot interval metrics. ---
        if self.sampler.as_ref().is_some_and(|s| s.due(now)) {
            let cumulative = self.collect_stats();
            let depth = self.dx100_queue_depth();
            if let Some(s) = &mut self.sampler {
                s.sample(now, &cumulative, depth);
            }
            self.emit_profile_counters(now, depth);
        }

        self.clock += 1;
        // An executed cycle is its own bookkeeping; only elided cycles
        // leave the span marker behind the clock.
        self.span_start = self.clock;
    }

    fn apply_action(&mut self, action: MmioAction) {
        let multi = self.engines.len() > 1;
        match action {
            MmioAction::WriteReg { engine, reg, value } => {
                if multi {
                    self.instr_delivery[engine].push_back(PendingMmio::Reg { reg, value });
                } else {
                    self.engines[engine].write_reg(reg, value);
                }
            }
            MmioAction::WriteTile { engine, tile, data } => {
                if multi {
                    self.instr_delivery[engine].push_back(PendingMmio::Tile { tile, data });
                } else {
                    self.engines[engine].write_tile(tile, &data);
                }
            }
            MmioAction::PushInstr {
                engine,
                instr,
                flag,
            } => {
                if multi {
                    let now = self.clock;
                    self.instr_delivery[engine].push_back(PendingMmio::Instr {
                        instr,
                        flag,
                        ready_at: now,
                        acquired: false,
                    });
                } else {
                    self.push_to_engine(engine, instr, flag);
                }
            }
        }
    }

    /// Delivers queued MMIO events to each engine, strictly in order:
    /// region acquisition may stall or delay a queue's head but never lets
    /// a younger event overtake it.
    fn deliver_instructions(&mut self, now: Cycle) {
        for e in 0..self.instr_delivery.len() {
            while let Some(head) = self.instr_delivery[e].front_mut() {
                if let PendingMmio::Instr {
                    instr,
                    ready_at,
                    acquired,
                    ..
                } = head
                {
                    if now < *ready_at {
                        break;
                    }
                    if !*acquired {
                        match region_base(instr) {
                            None => {}
                            Some((base, write)) => match self.region.request(e, base, write) {
                                RegionGrant::Immediate => {}
                                RegionGrant::AfterAcquire => {
                                    *acquired = true;
                                    *ready_at = now + self.cfg.region_acquire_latency;
                                    break;
                                }
                                RegionGrant::Defer => break,
                            },
                        }
                    }
                }
                match self.instr_delivery[e].pop_front().unwrap() {
                    PendingMmio::Instr { instr, flag, .. } => {
                        self.push_to_engine(e, instr, flag);
                    }
                    PendingMmio::Reg { reg, value } => self.engines[e].write_reg(reg, value),
                    PendingMmio::Tile { tile, data } => self.engines[e].write_tile(tile, &data),
                }
            }
        }
    }

    fn push_to_engine(&mut self, engine: usize, instr: Instruction, flag: Option<FlagId>) -> u64 {
        let handle = self.engines[engine]
            .push_instruction(instr, flag)
            .unwrap_or_else(|e| panic!("illegal instruction reached DX100: {e}"));
        if self.engines.len() > 1 {
            if let Some((base, _)) = region_base(&instr) {
                self.region_pins.entry((engine, handle)).or_insert(base);
            }
        }
        handle
    }

    fn route_to_dram(&mut self, bound: &mut Vec<DramBound>) {
        let now = self.clock;
        let dram_now = now / self.cfg.cpu_cycles_per_dram_tick;
        for d in bound.drain(..) {
            let addr = d.line.base();
            // SPD-region reads are served by the accelerator's scratchpad.
            if let Some(e_idx) = self.engines.iter().position(|e| e.is_spd_addr(addr)) {
                if !d.is_write {
                    let latency = self
                        .cfg
                        .dx100
                        .as_ref()
                        .map(|c| c.spd_read_latency)
                        .unwrap_or(20);
                    self.engines[e_idx].note_spd_cached(d.line);
                    self.spd_fills.push_at(now + latency, d.line);
                }
                continue;
            }
            let id = self.next_dram_id;
            self.next_dram_id += 1;
            let origin = if d.is_write {
                DramOrigin::HierWrite
            } else {
                DramOrigin::HierRead
            };
            let req = if d.is_write {
                MemRequest::write(id, d.line)
            } else {
                MemRequest::read(id, d.line)
            };
            if self.dram.try_enqueue(req, dram_now) {
                self.dram_pending.insert(id, origin);
            } else {
                self.dram_retry.push_back((req, origin));
            }
        }
    }

    /// One-line machine-state summary for deadlock diagnosis.
    pub fn debug_snapshot(&self) -> String {
        let cores: Vec<String> = self
            .cores
            .iter()
            .map(|c| {
                format!(
                    "core{}(done={} issued={} waits={})",
                    c.id(),
                    c.is_done(),
                    c.stats().mem_ops_issued,
                    c.stats().wait_cycles
                )
            })
            .collect();
        format!(
            "cycle={} {} hier_idle={} dram_idle={} retry={} pending_dram={} spd_fills={}",
            self.clock,
            cores.join(" "),
            self.hier.is_idle(),
            self.dram.is_idle(),
            self.dram_retry.len(),
            self.dram_pending.len(),
            self.spd_fills.len()
        ) + &format!(" | hier: {}", self.hier.debug_state())
            + &self
                .engines
                .iter()
                .enumerate()
                .map(|(i, e)| format!(" | dx{}: {}", i, e.debug_state()))
                .collect::<String>()
    }

    /// Collects statistics since the last [`System::roi_begin`].
    pub fn collect_stats(&self) -> RunStats {
        let mut core = dx100_cpu::CoreStats::default();
        for c in &self.cores {
            core.merge(c.stats());
        }
        let mut dxs = None;
        if !self.engines.is_empty() {
            let mut agg = dx100_core::Dx100Stats::default();
            for e in &self.engines {
                agg.merge(e.stats());
            }
            dxs = Some(agg);
        }
        RunStats {
            cycles: self.clock - self.roi_start,
            instructions: core.instructions,
            core,
            dram: self.dram.stats(),
            dram_channels: self.cfg.dram.organization.channels,
            hierarchy: self.hier.stats(),
            dx100: dxs,
            dmp_prefetches: self.dmp.as_ref().map(|d| d.issued).unwrap_or(0),
            epochs: Vec::new(),
            trace: None,
        }
    }
}

/// Complete saved state of a [`System`], sufficient to resume simulation
/// exactly where it left off. `Send`, so one checkpoint can be restored
/// into many per-thread `System` instances for parallel interval replay.
pub struct SystemCheckpoint {
    clock: Cycle,
    cores: Vec<dx100_cpu::CoreState>,
    hier: MemoryHierarchy,
    dram: DramSystem,
    engines: Vec<Dx100Engine>,
    dmp: Option<Dmp>,
    flags: FlagBoard,
    image: MemoryImage,
    actions: Vec<Option<MmioAction>>,
    dram_pending: HashMap<ReqId, DramOrigin>,
    next_dram_id: ReqId,
    dram_retry: VecDeque<(MemRequest, DramOrigin)>,
    spd_fills: DelayQueue<LineAddr>,
    region: RegionCoherence,
    host_pages: HashSet<u64>,
    instr_delivery: Vec<VecDeque<PendingMmio>>,
    region_pins: HashMap<(usize, u64), Addr>,
    roi_start: Cycle,
    roi_snapshot: Option<RunStats>,
    sampler: Option<EpochSampler>,
    skipped_cycles: u64,
    skip_events: u64,
}

impl SystemCheckpoint {
    /// Cycle at which this checkpoint was taken.
    pub fn clock(&self) -> Cycle {
        self.clock
    }
}

/// Compile-time proof that checkpoints can cross replay-thread boundaries
/// (and be shared from behind an `Arc` by many workers at once).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SystemCheckpoint>();
};

impl dx100_common::Checkpoint for System {
    type State = SystemCheckpoint;

    /// Snapshots the whole machine. Core-side op streams — channel
    /// contents included, since each core owns its channel — are captured
    /// as part of the per-core state.
    fn save(&self) -> Result<SystemCheckpoint, dx100_common::CheckpointError> {
        // A checkpoint must not be taken while an elided span is pending:
        // its stats would be missing the span's credit. `run` settles on
        // exit and `step`/`wake` re-establish the invariant everywhere
        // else; drivers checkpointing mid-run call `System::settle` first.
        debug_assert_eq!(
            self.span_start, self.clock,
            "checkpoint taken with an unsettled skip span"
        );
        Ok(SystemCheckpoint {
            clock: self.clock,
            cores: self
                .cores
                .iter()
                .map(|c| c.save_state())
                .collect::<Result<_, _>>()?,
            hier: self.hier.clone(),
            dram: self.dram.clone(),
            engines: self.engines.clone(),
            dmp: self.dmp.clone(),
            flags: self.flags.clone(),
            image: self.image.clone(),
            actions: self.actions.clone(),
            dram_pending: self.dram_pending.clone(),
            next_dram_id: self.next_dram_id,
            dram_retry: self.dram_retry.clone(),
            spd_fills: self.spd_fills.clone(),
            region: self.region.clone(),
            host_pages: self.host_pages.clone(),
            instr_delivery: self.instr_delivery.clone(),
            region_pins: self.region_pins.clone(),
            roi_start: self.roi_start,
            roi_snapshot: self.roi_snapshot.clone(),
            sampler: self.sampler.clone(),
            skipped_cycles: self.skipped_cycles,
            skip_events: self.skip_events,
        })
    }

    /// Restores a checkpoint into this system. The system must have been
    /// built with an equivalent [`SystemConfig`]; its own configuration and
    /// trace root are kept, everything else — channel contents included —
    /// is overwritten.
    fn restore(&mut self, s: &SystemCheckpoint) {
        self.clock = s.clock;
        for (core, cs) in self.cores.iter_mut().zip(&s.cores) {
            core.restore_state(cs);
        }
        self.hier = s.hier.clone();
        self.dram = s.dram.clone();
        self.engines = s.engines.clone();
        self.dmp = s.dmp.clone();
        self.flags = s.flags.clone();
        self.image = s.image.clone();
        self.actions = s.actions.clone();
        self.dram_pending = s.dram_pending.clone();
        self.next_dram_id = s.next_dram_id;
        self.dram_retry = s.dram_retry.clone();
        self.spd_fills = s.spd_fills.clone();
        self.region = s.region.clone();
        self.host_pages = s.host_pages.clone();
        self.instr_delivery = s.instr_delivery.clone();
        self.region_pins = s.region_pins.clone();
        self.roi_start = s.roi_start;
        self.roi_snapshot = s.roi_snapshot.clone();
        self.sampler = s.sampler.clone();
        self.skipped_cycles = s.skipped_cycles;
        self.skip_events = s.skip_events;
        // The certificate described the pre-restore machine; re-derive it.
        // The checkpoint was settled at save time, so no span is pending.
        self.skip_until = 0;
        self.span_start = self.clock;
    }
}

/// Region operand of *indirect* memory-access instructions: `(base, is_write)`.
///
/// Only indirect accesses participate in the SWMR region protocol. Streaming
/// accesses (`SLD`/`SST`) deliberately do not: their footprints are affine
/// slices that software already partitions disjointly between instances and
/// synchronizes at phase boundaries (flags / `WaitCoresIdle`), and regions
/// are keyed at array granularity — an exclusive grant per streaming store
/// would falsely serialize two instances writing disjoint halves of the same
/// output array. Indirect accesses, whose footprint is data-dependent and
/// unpartitionable, are the ones that need hardware ordering.
fn region_base(instr: &Instruction) -> Option<(Addr, bool)> {
    match instr {
        Instruction::Ild { base, .. } => Some((*base, false)),
        Instruction::Ist { base, .. } | Instruction::Irmw { base, .. } => Some((*base, true)),
        Instruction::Sld { .. }
        | Instruction::Sst { .. }
        | Instruction::Aluv { .. }
        | Instruction::Alus { .. }
        | Instruction::Rng { .. } => None,
    }
}

/// DX100's view of the memory system, per instance.
struct SystemPorts<'a> {
    e_idx: usize,
    hier: &'a mut MemoryHierarchy,
    dram: &'a mut DramSystem,
    pending: &'a mut HashMap<ReqId, DramOrigin>,
    next_id: &'a mut ReqId,
    dram_now: Cycle,
    host_pages: &'a HashSet<u64>,
}

impl MemPorts for SystemPorts<'_> {
    fn snoop(&self, line: LineAddr) -> bool {
        self.hier.contains(line) || self.host_pages.contains(&(line.base() >> PAGE_SHIFT))
    }

    fn invalidate(&mut self, line: LineAddr) -> bool {
        self.hier.invalidate(line)
    }

    fn llc_request(&mut self, id: ReqId, line: LineAddr, is_write: bool, now: Cycle) {
        let wrapped = ((self.e_idx as u64) << ENGINE_ID_SHIFT) | id;
        let access = Access {
            id: wrapped,
            line,
            is_write,
            stream: 0,
            is_prefetch: false,
            requester: Requester::Dx100,
        };
        self.hier.llc_access(access, now);
    }

    fn dram_try_request(&mut self, id: ReqId, line: LineAddr, is_write: bool, _now: Cycle) -> bool {
        let dram_id = *self.next_id;
        let req = if is_write {
            MemRequest::write(dram_id, line)
        } else {
            MemRequest::read(dram_id, line)
        };
        if self.dram.try_enqueue(req, self.dram_now) {
            *self.next_id += 1;
            self.pending.insert(
                dram_id,
                DramOrigin::Dx100 {
                    engine: self.e_idx,
                    id,
                },
            );
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod send_tests {
    use super::*;

    /// The parallel sweep executor moves whole simulation jobs — including
    /// a constructed [`System`] — onto worker threads.
    #[test]
    fn system_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System>();
    }
}
