//! Coarse-grained region coherence between DX100 instances (paper
//! Section 6.6, core-multiplexing approach).
//!
//! Each array (identified by its base address, taken from the instruction's
//! `BASE` operand) is one coherence region. The Single-Writer-Multiple-
//! Reader invariant is enforced at instruction granularity: an IST/IRMW
//! needs the region Exclusive to its instance, an ILD needs at least Shared.
//! State changes cost an acquisition latency; a region locked by in-flight
//! instructions of another instance defers the requester.

use std::collections::HashMap;

use dx100_common::Addr;

/// Region state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Readable by the listed instances.
    Shared(Vec<usize>),
    /// Writable by one instance.
    Exclusive(usize),
}

#[derive(Debug, Clone)]
struct Region {
    state: State,
    /// In-flight instructions currently pinning this region, per instance.
    inflight: HashMap<usize, usize>,
}

/// Outcome of a region request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionGrant {
    /// Proceed immediately (already in the right state).
    Immediate,
    /// Proceed after the acquisition latency (state transition performed).
    AfterAcquire,
    /// Region is pinned by another instance; retry later.
    Defer,
}

/// The inter-instance region directory.
#[derive(Debug, Clone, Default)]
pub struct RegionCoherence {
    regions: HashMap<Addr, Region>,
}

impl RegionCoherence {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests access for `instance` to the region at `base`.
    pub fn request(&mut self, instance: usize, base: Addr, write: bool) -> RegionGrant {
        let region = self.regions.entry(base).or_insert(Region {
            state: State::Shared(vec![]),
            inflight: HashMap::new(),
        });
        let others_inflight: usize = region
            .inflight
            .iter()
            .filter(|(i, _)| **i != instance)
            .map(|(_, n)| n)
            .sum();
        let grant = match (&mut region.state, write) {
            (State::Exclusive(owner), _) if *owner == instance => RegionGrant::Immediate,
            (State::Shared(readers), false) if readers.contains(&instance) => {
                RegionGrant::Immediate
            }
            (State::Shared(readers), false) => {
                readers.push(instance);
                RegionGrant::AfterAcquire
            }
            // Upgrades/transfers require the region to be unpinned elsewhere.
            _ if others_inflight > 0 => return RegionGrant::Defer,
            (state, true) => {
                *state = State::Exclusive(instance);
                RegionGrant::AfterAcquire
            }
            (State::Exclusive(_), false) => {
                region.state = State::Shared(vec![instance]);
                RegionGrant::AfterAcquire
            }
        };
        *region.inflight.entry(instance).or_insert(0) += 1;
        grant
    }

    /// Releases one in-flight pin (the instruction retired).
    pub fn release(&mut self, instance: usize, base: Addr) {
        if let Some(region) = self.regions.get_mut(&base) {
            if let Some(n) = region.inflight.get_mut(&instance) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    region.inflight.remove(&instance);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_instance_never_defers() {
        let mut rc = RegionCoherence::new();
        assert_eq!(rc.request(0, 0x1000, true), RegionGrant::AfterAcquire);
        assert_eq!(rc.request(0, 0x1000, true), RegionGrant::Immediate);
        assert_eq!(rc.request(0, 0x1000, false), RegionGrant::Immediate);
    }

    #[test]
    fn multiple_readers_share() {
        let mut rc = RegionCoherence::new();
        assert_eq!(rc.request(0, 0x1000, false), RegionGrant::AfterAcquire);
        assert_eq!(rc.request(1, 0x1000, false), RegionGrant::AfterAcquire);
        assert_eq!(rc.request(1, 0x1000, false), RegionGrant::Immediate);
    }

    #[test]
    fn writer_defers_while_other_pinned() {
        let mut rc = RegionCoherence::new();
        assert_eq!(rc.request(0, 0x1000, true), RegionGrant::AfterAcquire);
        // Instance 1 wants to write while instance 0 has an in-flight
        // instruction: defer.
        assert_eq!(rc.request(1, 0x1000, true), RegionGrant::Defer);
        rc.release(0, 0x1000);
        assert_eq!(rc.request(1, 0x1000, true), RegionGrant::AfterAcquire);
        // Now instance 0 must defer in turn.
        assert_eq!(rc.request(0, 0x1000, true), RegionGrant::Defer);
    }

    #[test]
    fn reader_defers_on_pinned_writer() {
        let mut rc = RegionCoherence::new();
        rc.request(0, 0x2000, true);
        assert_eq!(rc.request(1, 0x2000, false), RegionGrant::Defer);
        rc.release(0, 0x2000);
        assert_eq!(rc.request(1, 0x2000, false), RegionGrant::AfterAcquire);
    }
}
