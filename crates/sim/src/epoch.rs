//! Epoch time-series sampling.
//!
//! The [`EpochSampler`] is driven from the [`System`](crate::System) tick
//! loop: every `epoch_cycles` CPU cycles it diffs the cumulative
//! [`RunStats`] against the previous boundary snapshot and records one
//! [`EpochSample`] of *interval* metrics (row-buffer hit rate, bandwidth
//! utilisation, MPKI, ... over just that epoch, not since the start of the
//! run). This is what lets a run report show e.g. bandwidth ramping up as
//! the DX100 request buffers fill, instead of a single end-of-run average.
//!
//! Counters that are plain sums diff with `saturating_sub`; metrics backed
//! by a [`Ratio`](dx100_common::stats::Ratio) or
//! [`RunningAverage`](dx100_common::stats::RunningAverage) diff the
//! underlying (sum, count) pairs so the interval mean is exact.

use dx100_common::stats::{
    interval_delta, interval_mean, interval_per_kilo, interval_rate, interval_ratio,
};

use crate::stats::RunStats;

/// Metrics for one epoch (an interval of `end_cycle - start_cycle` CPU
/// cycles). All counters are deltas over the interval; rates are computed
/// from interval deltas only.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    /// First cycle of the interval (inclusive).
    pub start_cycle: u64,
    /// Last cycle of the interval (exclusive).
    pub end_cycle: u64,
    /// Instructions retired across all cores during the interval.
    pub instructions: u64,
    /// DRAM read CAS commands issued during the interval.
    pub dram_reads: u64,
    /// DRAM write CAS commands issued during the interval.
    pub dram_writes: u64,
    /// Row-buffer hit rate over the interval's CAS commands.
    pub row_buffer_hit_rate: f64,
    /// Fraction of DRAM data-bus ticks busy during the interval.
    pub bandwidth_utilization: f64,
    /// Mean per-channel request-buffer occupancy over the interval.
    pub request_buffer_occupancy: f64,
    /// LLC demand misses during the interval.
    pub llc_misses: u64,
    /// LLC misses per kilo-instruction over the interval.
    pub llc_mpki: f64,
    /// DX100 Row Table column entries buffered at the epoch boundary
    /// (instantaneous queue depth, summed over instances).
    pub dx100_queue_depth: u64,
}

/// Cumulative counter snapshot at the previous epoch boundary.
#[derive(Debug, Clone, Copy, Default)]
struct Baseline {
    cycle: u64,
    instructions: u64,
    dram_reads: u64,
    dram_writes: u64,
    row_hits: u64,
    row_misses: u64,
    data_busy_ticks: u64,
    dram_ticks: u64,
    occupancy_sum: f64,
    occupancy_count: u64,
    llc_misses: u64,
}

impl Baseline {
    fn capture(cycle: u64, stats: &RunStats) -> Self {
        Baseline {
            cycle,
            instructions: stats.instructions,
            dram_reads: stats.dram.reads,
            dram_writes: stats.dram.writes,
            row_hits: stats.dram.row_hits_misses.hits(),
            row_misses: stats.dram.row_hits_misses.misses(),
            data_busy_ticks: stats.dram.data_busy_ticks,
            dram_ticks: stats.dram.ticks,
            occupancy_sum: stats.dram.occupancy.sum(),
            occupancy_count: stats.dram.occupancy.count(),
            llc_misses: stats.hierarchy.llc.demand_misses,
        }
    }
}

/// Samples interval metrics every `epoch` cycles. See the module docs.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    epoch: u64,
    next_boundary: u64,
    prev: Baseline,
    samples: Vec<EpochSample>,
}

impl EpochSampler {
    /// A sampler firing every `epoch` cycles, starting at `start_cycle`.
    /// `epoch` is clamped to at least 1.
    pub fn new(epoch: u64, start_cycle: u64) -> Self {
        let epoch = epoch.max(1);
        EpochSampler {
            epoch,
            next_boundary: start_cycle + epoch,
            prev: Baseline {
                cycle: start_cycle,
                ..Baseline::default()
            },
            samples: Vec::new(),
        }
    }

    /// True when `now` has reached the next epoch boundary; the caller
    /// should then collect cumulative stats and call [`sample`](Self::sample).
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_boundary
    }

    /// The next epoch boundary cycle (cycle skips must not jump past it, so
    /// samples land on the same boundaries as a cycle-by-cycle run).
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// Record the interval ending at `now` from cumulative `stats`, then
    /// advance the boundary past `now`.
    pub fn sample(&mut self, now: u64, stats: &RunStats, dx100_queue_depth: u64) {
        self.push_interval(now, stats, dx100_queue_depth);
        while self.next_boundary <= now {
            self.next_boundary += self.epoch;
        }
    }

    /// Record the final (possibly partial) epoch at end of run. A no-op if
    /// no cycles elapsed since the last boundary.
    pub fn finish(&mut self, now: u64, stats: &RunStats, dx100_queue_depth: u64) {
        if now > self.prev.cycle {
            self.push_interval(now, stats, dx100_queue_depth);
        }
    }

    /// Restart sampling at `now` with zeroed counters. Called when the
    /// region of interest begins: the simulator resets all component stats
    /// there, so both the baseline snapshot and any pre-ROI samples are
    /// discarded.
    pub fn rebase(&mut self, now: u64) {
        self.prev = Baseline {
            cycle: now,
            ..Baseline::default()
        };
        self.next_boundary = now + self.epoch;
        self.samples.clear();
    }

    /// Samples collected so far (drains the sampler).
    pub fn take_samples(&mut self) -> Vec<EpochSample> {
        std::mem::take(&mut self.samples)
    }

    fn push_interval(&mut self, now: u64, stats: &RunStats, dx100_queue_depth: u64) {
        let cur = Baseline::capture(now, stats);
        let p = &self.prev;
        self.samples.push(EpochSample {
            start_cycle: p.cycle,
            end_cycle: now,
            instructions: interval_delta(cur.instructions, p.instructions),
            dram_reads: interval_delta(cur.dram_reads, p.dram_reads),
            dram_writes: interval_delta(cur.dram_writes, p.dram_writes),
            row_buffer_hit_rate: interval_rate(
                (cur.row_hits, p.row_hits),
                (cur.row_misses, p.row_misses),
            ),
            bandwidth_utilization: interval_ratio(
                (cur.data_busy_ticks, p.data_busy_ticks),
                (cur.dram_ticks, p.dram_ticks),
            ),
            request_buffer_occupancy: interval_mean(
                (cur.occupancy_sum, p.occupancy_sum),
                (cur.occupancy_count, p.occupancy_count),
            ),
            llc_misses: interval_delta(cur.llc_misses, p.llc_misses),
            llc_mpki: interval_per_kilo(
                (cur.llc_misses, p.llc_misses),
                (cur.instructions, p.instructions),
            ),
            dx100_queue_depth,
        });
        self.prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cumulative stats with the counters the sampler reads set to simple
    /// linear functions of `cycle`, so interval deltas are predictable.
    fn cumulative(cycle: u64) -> RunStats {
        let mut s = RunStats {
            cycles: cycle,
            instructions: cycle * 2,
            ..RunStats::default()
        };
        s.dram.reads = cycle / 10;
        s.dram.writes = cycle / 20;
        s.dram.ticks = cycle / 2;
        s.dram.data_busy_ticks = cycle / 4;
        for _ in 0..cycle / 10 {
            s.dram.row_hits_misses.hit();
        }
        for _ in 0..cycle / 20 {
            s.dram.row_hits_misses.miss();
        }
        for _ in 0..cycle / 100 {
            s.dram.occupancy.sample(8.0);
        }
        s.hierarchy.llc.demand_misses = cycle / 50;
        s
    }

    #[test]
    fn boundaries_fire_every_epoch() {
        let mut sampler = EpochSampler::new(1000, 0);
        assert!(!sampler.due(999));
        assert!(sampler.due(1000));
        for now in [1000u64, 2000, 3000] {
            assert!(sampler.due(now));
            sampler.sample(now, &cumulative(now), 0);
            assert!(!sampler.due(now));
        }
        let samples = sampler.take_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].start_cycle, 0);
        assert_eq!(samples[0].end_cycle, 1000);
        assert_eq!(samples[2].start_cycle, 2000);
        assert_eq!(samples[2].end_cycle, 3000);
    }

    #[test]
    fn samples_are_interval_deltas_not_cumulative() {
        let mut sampler = EpochSampler::new(1000, 0);
        sampler.sample(1000, &cumulative(1000), 3);
        sampler.sample(2000, &cumulative(2000), 5);
        let samples = sampler.take_samples();
        // Each epoch covers 1000 cycles: 2000 instructions, 100 reads,
        // 50 writes, 20 LLC misses — identical per epoch because the
        // cumulative counters grow linearly.
        for s in &samples {
            assert_eq!(s.instructions, 2000);
            assert_eq!(s.dram_reads, 100);
            assert_eq!(s.dram_writes, 50);
            assert_eq!(s.llc_misses, 20);
            // 100 hits vs 50 misses per epoch.
            assert!((s.row_buffer_hit_rate - 100.0 / 150.0).abs() < 1e-12);
            // 250 busy of 500 DRAM ticks.
            assert!((s.bandwidth_utilization - 0.5).abs() < 1e-12);
            // Occupancy samples are all 8.0, so the interval mean is too.
            assert!((s.request_buffer_occupancy - 8.0).abs() < 1e-12);
            // 20 misses per 2000 instructions = 10 MPKI.
            assert!((s.llc_mpki - 10.0).abs() < 1e-12);
        }
        assert_eq!(samples[0].dx100_queue_depth, 3);
        assert_eq!(samples[1].dx100_queue_depth, 5);
    }

    #[test]
    fn finish_records_partial_epoch_once() {
        let mut sampler = EpochSampler::new(1000, 0);
        sampler.sample(1000, &cumulative(1000), 0);
        sampler.finish(1400, &cumulative(1400), 0);
        // A second finish at the same cycle adds nothing.
        sampler.finish(1400, &cumulative(1400), 0);
        let samples = sampler.take_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].start_cycle, 1000);
        assert_eq!(samples[1].end_cycle, 1400);
        assert_eq!(samples[1].instructions, 800);
    }

    #[test]
    fn rebase_discards_pre_roi_samples_and_counters() {
        let mut sampler = EpochSampler::new(1000, 0);
        sampler.sample(1000, &cumulative(1000), 0);
        // ROI begins at cycle 1500; component stats reset to zero there.
        sampler.rebase(1500);
        assert!(!sampler.due(2400));
        assert!(sampler.due(2500));
        // Cumulative stats restart from zero after the ROI reset: 900
        // cycles of progress by cycle 2400... the sampler must diff
        // against the rebased (zero) baseline, not the pre-ROI snapshot.
        sampler.sample(2500, &cumulative(1000), 0);
        let samples = sampler.take_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].start_cycle, 1500);
        assert_eq!(samples[0].end_cycle, 2500);
        assert_eq!(samples[0].instructions, 2000);
    }

    #[test]
    fn boundary_skips_past_long_gaps() {
        let mut sampler = EpochSampler::new(100, 0);
        // The tick loop might only check every so often; after a sample at
        // cycle 570 the next boundary must be 600, not a burst at 200/300...
        sampler.sample(570, &cumulative(570), 0);
        assert!(!sampler.due(599));
        assert!(sampler.due(600));
    }
}
