//! Run statistics: the measured quantities behind Figures 8–14.

use crate::epoch::EpochSample;
use dx100_common::TraceBuffer;
use dx100_core::Dx100Stats;
use dx100_cpu::CoreStats;
use dx100_dram::stats::system_bandwidth_utilization;
use dx100_dram::DramStats;
use dx100_mem::HierarchyStats;

/// Everything measured over one region of interest.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// ROI length in CPU cycles.
    pub cycles: u64,
    /// Total retired core instructions (including charged spin polls).
    pub instructions: u64,
    /// Aggregated core counters.
    pub core: CoreStats,
    /// Aggregated DRAM counters.
    pub dram: DramStats,
    /// DRAM channel count (for utilization normalization).
    pub dram_channels: usize,
    /// Cache-hierarchy counters.
    pub hierarchy: HierarchyStats,
    /// DX100 counters, when an accelerator was present.
    pub dx100: Option<Dx100Stats>,
    /// DMP prefetches issued, when the prefetcher was present.
    pub dmp_prefetches: u64,
    /// Epoch time-series samples, when epoch sampling was enabled.
    pub epochs: Vec<EpochSample>,
    /// Recorded trace events, when tracing was enabled.
    pub trace: Option<TraceBuffer>,
}

impl RunStats {
    /// DRAM bandwidth utilization in `[0, 1]` across all channels.
    pub fn bandwidth_utilization(&self) -> f64 {
        system_bandwidth_utilization(&self.dram, self.dram_channels)
    }

    /// Achieved DRAM bandwidth in GB/s (25.6 GB/s per DDR4-3200 channel).
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_utilization() * 25.6 * self.dram_channels as f64
    }

    /// DRAM row-buffer hit rate in `[0, 1]`.
    pub fn row_buffer_hit_rate(&self) -> f64 {
        self.dram.row_buffer_hit_rate()
    }

    /// Mean request-buffer occupancy as a fraction of capacity (Fig 10c).
    pub fn request_buffer_occupancy(&self) -> f64 {
        self.dram.occupancy.mean()
    }

    /// LLC misses per kilo-instruction (Fig 11b's headline metric).
    pub fn llc_mpki(&self) -> f64 {
        self.hierarchy.llc.mpki(self.instructions)
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        self.hierarchy.l2.mpki(self.instructions)
    }

    /// Total cache MPKI across private and shared levels.
    pub fn total_mpki(&self) -> f64 {
        (self.hierarchy.l1.demand_misses
            + self.hierarchy.l2.demand_misses
            + self.hierarchy.llc.demand_misses) as f64
            * 1000.0
            / self.instructions.max(1) as f64
    }

    /// Speedup of this run relative to `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64) -> RunStats {
        RunStats {
            cycles,
            instructions: 1000,
            dram_channels: 2,
            ..RunStats::default()
        }
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = stats(1000);
        let fast = stats(250);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_uses_instructions() {
        let mut s = stats(100);
        s.hierarchy.llc.demand_misses = 50;
        assert!((s.llc_mpki() - 50.0).abs() < 1e-12);
    }
}
