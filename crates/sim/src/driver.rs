//! The driver abstraction: the "software" of a workload.
//!
//! A driver is a state machine polled once per simulated cycle. It stands in
//! for the program running on the cores: it installs micro-op streams
//! (timing), sends DX100 instructions through timed MMIO stores, blocks
//! cores on ready flags, reads tiles/memory functionally, and decides what
//! happens next. Control flow that in real life lives in C code (tile
//! loops, BFS frontier iterations, phase barriers) lives in `poll`.

use crate::system::System;

/// Result of one driver poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverStatus {
    /// More work remains (or the driver is waiting on the machine).
    Running,
    /// The workload has issued everything; the run ends when the machine
    /// drains.
    Done,
}

/// A workload's software side. See the module docs.
pub trait Driver {
    /// Called every cycle. Must be cheap when waiting (check a flag or core
    /// idleness and return).
    fn poll(&mut self, sys: &mut System) -> DriverStatus;
}

/// A driver that immediately finishes — useful to drain pre-loaded op
/// streams (pure baseline runs with no phase logic).
#[derive(Debug, Default)]
pub struct NullDriver;

impl Driver for NullDriver {
    fn poll(&mut self, _sys: &mut System) -> DriverStatus {
        DriverStatus::Done
    }
}
