//! Whole-system configuration (paper Table 3).

use dx100_core::Dx100Config;
use dx100_cpu::CoreConfig;
use dx100_dram::DramConfig;
use dx100_mem::HierarchyConfig;
use dx100_prefetch::DmpConfig;

/// Observability switches: event tracing and epoch time-series sampling.
/// Both default to off, in which case the simulator records nothing and
/// pays no cost (components hold no trace handle, the tick loop skips the
/// sampler entirely).
#[derive(Debug, Clone)]
pub struct ObservabilityConfig {
    /// Record trace events (DRAM commands, MSHR lifecycles, DX100 tile
    /// phases, core stalls) for Chrome-trace export.
    pub trace: bool,
    /// Maximum events retained per run; later events are counted as
    /// dropped rather than grown without bound.
    pub trace_capacity: usize,
    /// Snapshot epoch metrics every N CPU cycles (`None` = off).
    pub epoch_cycles: Option<u64>,
    /// Cycle-attribution profiling: per-component stall taxonomy,
    /// utilization counters, and occupancy histograms. Off by default;
    /// never alters [`crate::RunStats`], traces, or epoch samples.
    pub profile: bool,
}

/// Default per-run trace event cap (bounds file size when a figure binary
/// traces dozens of runs).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            epoch_cycles: None,
            profile: false,
        }
    }
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of CPU cores.
    pub cores: usize,
    /// Per-core microarchitecture.
    pub core: CoreConfig,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// DRAM back-end.
    pub dram: DramConfig,
    /// DX100 instances (none for the baseline). Cores are split evenly
    /// across instances (core multiplexing, Section 6.6).
    pub dx100: Option<Dx100Config>,
    /// Number of DX100 instances sharing the cores.
    pub dx100_instances: usize,
    /// DMP indirect prefetcher (Figure 12 comparator).
    pub dmp: Option<DmpConfig>,
    /// CPU cycles per DRAM tick (3.2 GHz vs 1.6 GHz command clock).
    pub cpu_cycles_per_dram_tick: u64,
    /// Region-coherence acquisition latency between DX100 instances.
    pub region_acquire_latency: u64,
    /// Hard simulation cap (guards against driver deadlocks).
    pub max_cycles: u64,
    /// Event-driven cycle skipping: when every component is quiescent,
    /// fast-forward the clock to the next event instead of ticking
    /// cycle-by-cycle. Bit-identical results either way (differentially
    /// tested); off only costs wall-clock time.
    pub cycle_skip: bool,
    /// Event tracing and epoch sampling (off by default).
    pub obs: ObservabilityConfig,
}

impl SystemConfig {
    /// The paper's 4-core baseline: 10 MB LLC, 2 × DDR4-3200, no
    /// accelerator.
    pub fn paper_baseline() -> Self {
        SystemConfig {
            cores: 4,
            core: CoreConfig::paper(),
            hierarchy: HierarchyConfig::paper_baseline(4),
            dram: DramConfig::ddr4_3200_2ch(),
            dx100: None,
            dx100_instances: 0,
            dmp: None,
            cpu_cycles_per_dram_tick: 2,
            region_acquire_latency: 100,
            max_cycles: 200_000_000,
            cycle_skip: true,
            obs: ObservabilityConfig::default(),
        }
    }

    /// The paper's DX100 system: 8 MB LLC + one shared DX100 instance.
    pub fn paper_dx100() -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::paper_dx100(4),
            dx100: Some(Dx100Config::paper()),
            dx100_instances: 1,
            ..Self::paper_baseline()
        }
    }

    /// The baseline plus the DMP indirect prefetcher (Figure 12).
    pub fn paper_dmp() -> Self {
        SystemConfig {
            dmp: Some(DmpConfig::default()),
            ..Self::paper_baseline()
        }
    }

    /// Scaled system for the Figure 14 study: `cores` cores, doubled memory
    /// channels when `cores` = 8, and `instances` DX100 instances (0 for
    /// the scaled baseline).
    pub fn scaled(cores: usize, instances: usize) -> Self {
        let channels = if cores > 4 { 4 } else { 2 };
        let mut cfg = SystemConfig {
            cores,
            hierarchy: if instances > 0 {
                HierarchyConfig::paper_dx100(cores)
            } else {
                HierarchyConfig::paper_baseline(cores)
            },
            dram: DramConfig::ddr4_3200_n_ch(channels),
            dx100: (instances > 0).then(Dx100Config::paper),
            dx100_instances: instances,
            ..Self::paper_baseline()
        };
        // Scale the LLC with core count (the paper doubles LLC with cores).
        if cores > 4 {
            cfg.hierarchy.llc.size_bytes *= (cores / 4) as u64;
        }
        // One instance shared by 8 cores gets a doubled (4 MB) scratchpad.
        if instances == 1 && cores == 8 {
            if let Some(dx) = &mut cfg.dx100 {
                dx.num_tiles *= 2;
            }
        }
        cfg
    }

    /// Override the DX100 tile size (Figure 13 sweep).
    pub fn with_tile_elems(mut self, tile_elems: usize) -> Self {
        if let Some(dx) = &mut self.dx100 {
            dx.tile_elems = tile_elems;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variants() {
        let base = SystemConfig::paper_baseline();
        assert_eq!(base.cores, 4);
        assert_eq!(base.hierarchy.llc.size_bytes, 10 * 1024 * 1024);
        assert!(base.dx100.is_none() && base.dmp.is_none());

        let dx = SystemConfig::paper_dx100();
        assert_eq!(dx.hierarchy.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(dx.dx100_instances, 1);

        let dmp = SystemConfig::paper_dmp();
        assert!(dmp.dmp.is_some());
        assert_eq!(dmp.hierarchy.llc.size_bytes, 10 * 1024 * 1024);
    }

    #[test]
    fn scaled_variants() {
        let eight_one = SystemConfig::scaled(8, 1);
        assert_eq!(eight_one.dram.organization.channels, 4);
        assert_eq!(eight_one.dx100.as_ref().unwrap().num_tiles, 64); // 4 MB spd
        let eight_two = SystemConfig::scaled(8, 2);
        assert_eq!(eight_two.dx100_instances, 2);
        assert_eq!(eight_two.dx100.as_ref().unwrap().num_tiles, 32);
        let base8 = SystemConfig::scaled(8, 0);
        assert!(base8.dx100.is_none());
        assert_eq!(base8.hierarchy.llc.size_bytes, 20 * 1024 * 1024);
    }
}
