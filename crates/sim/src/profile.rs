//! Whole-system cycle attribution: the per-component profiles rolled into
//! one MECE breakdown, its JSON serialization, and a human-readable
//! bottleneck summary.
//!
//! Every timed component attributes each of its cycles to exactly one
//! bucket (see the per-crate `profile` modules); [`SystemProfile`] merges
//! them and [`crate::System::collect_profile`] checks the sums: per core
//! `attributed == cycles ticked`, per DX100 instance `attributed ==
//! elapsed`, per DRAM channel `attributed == ticks`. Profiling never
//! alters [`crate::RunStats`], traces, or epoch samples, and its counters
//! are bit-identical with cycle skipping on or off: elided spans are
//! batch-credited by the same [`crate::System::settle`] call that credits
//! statistics.

use dx100_common::json::{obj, Json};
use dx100_common::TraceBuffer;
use dx100_core::EngineProfile;
use dx100_cpu::CoreProfile;
use dx100_dram::ChannelProfile;
use dx100_mem::{CacheProfile, HierarchyProfile};

/// Version of the `profile` JSON section; bump on any shape change.
pub const PROFILE_VERSION: u64 = 1;

/// Per-run telemetry that deliberately lives outside [`crate::RunStats`]:
/// cycle-skip effectiveness and, when profiling is on, the cycle
/// attribution. Keeping it separate is what lets the skip/profile switches
/// guarantee bit-identical `RunStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    /// Cycles elided by event-driven skipping.
    pub skipped_cycles: u64,
    /// Quiescent spans entered.
    pub skip_events: u64,
    /// Cycle attribution, when `obs.profile` was set.
    pub profile: Option<SystemProfile>,
    /// Chrome-trace counter events (`"ph":"C"`) sampled at epoch
    /// boundaries, kept out of [`crate::RunStats::trace`] so the trace
    /// stays byte-identical with profiling on or off. Consumers append
    /// this buffer to the Chrome trace file as its own process.
    pub counters: Option<TraceBuffer>,
}

impl RunTelemetry {
    /// JSON for the run report: always carries the skip counters; the
    /// `profile` key is `null` when profiling was off.
    pub fn to_json(&self) -> Json {
        obj([
            ("skipped_cycles", self.skipped_cycles.into()),
            ("skip_events", self.skip_events.into()),
            (
                "profile",
                self.profile.as_ref().map_or(Json::Null, |p| p.to_json()),
            ),
            (
                "counter_events",
                self.counters
                    .as_ref()
                    .map_or(Json::Null, |c| c.len().into()),
            ),
        ])
    }
}

/// The whole machine's cycle attribution over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemProfile {
    /// Cycles covered (ROI start to collection).
    pub elapsed: u64,
    /// Cores merged into `cores`.
    pub num_cores: usize,
    /// All cores' stall taxonomy, merged.
    pub cores: CoreProfile,
    /// Core-cycles after a core drained its program (the remainder of
    /// `elapsed × num_cores` not attributed by any core's own taxonomy).
    pub core_drained: u64,
    /// All DX100 instances, merged (`None` on accelerator-less systems).
    pub engines: Option<EngineProfile>,
    /// Per-channel DRAM attribution, in channel order.
    pub dram: Vec<ChannelProfile>,
    /// MSHR/retry occupancy per cache level.
    pub caches: HierarchyProfile,
}

/// Integer percentage of `part` in `whole` (0 when `whole` is 0).
fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn cache_json(c: &CacheProfile) -> Json {
    obj([
        ("mshr_mean", c.mshr_occ.mean().into()),
        ("mshr_peak", c.mshr_occ.peak.into()),
        ("mshr_p99", c.mshr_depth.quantile(0.99).into()),
        ("retry_mean", c.retry_occ.mean().into()),
    ])
}

impl SystemProfile {
    /// The versioned `profile` section of the JSON run report.
    pub fn to_json(&self) -> Json {
        let mut cores: Vec<(&str, Json)> = self
            .cores
            .buckets()
            .into_iter()
            .map(|(k, v)| (k, v.into()))
            .collect();
        cores.push(("drained", self.core_drained.into()));
        let dx100 = self.engines.as_ref().map_or(Json::Null, |e| {
            let mut fields: Vec<(&str, Json)> = e
                .buckets()
                .into_iter()
                .chain(e.unit_busy())
                .chain(e.phases())
                .map(|(k, v)| (k, v.into()))
                .collect();
            fields.push(("row_table_p50", e.row_table_depth.quantile(0.5).into()));
            fields.push(("row_table_p99", e.row_table_depth.quantile(0.99).into()));
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        });
        let dram: Vec<Json> = self
            .dram
            .iter()
            .map(|ch| {
                let (hits, misses, conflicts) = ch.cas_totals();
                obj([
                    ("cmd_ticks", ch.cmd_ticks.into()),
                    ("refresh_ticks", ch.refresh_ticks.into()),
                    ("idle_ticks", ch.idle_ticks.into()),
                    ("row_hits", hits.into()),
                    ("row_misses", misses.into()),
                    ("row_conflicts", conflicts.into()),
                    ("queue_p50", ch.queue_depth.quantile(0.5).into()),
                    ("queue_p99", ch.queue_depth.quantile(0.99).into()),
                ])
            })
            .collect();
        obj([
            ("version", PROFILE_VERSION.into()),
            ("elapsed_cycles", self.elapsed.into()),
            ("num_cores", self.num_cores.into()),
            (
                "cores",
                Json::Obj(cores.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
            ),
            ("dx100", dx100),
            ("dram", Json::Arr(dram)),
            (
                "caches",
                obj([
                    ("l1", cache_json(&self.caches.l1)),
                    ("l2", cache_json(&self.caches.l2)),
                    ("llc", cache_json(&self.caches.llc)),
                ]),
            ),
        ])
    }

    /// Multi-line human-readable bottleneck report, e.g.
    ///
    /// ```text
    /// cores: 38.2% active, top stall wait_flag 41.0%, drained 9.1%
    /// dx100: 61.4% wait_mem (indirect unit busy 54.0%), row-table p99 = 512
    /// dram ch0: 41.2% busy, row hit 62.0% / miss 30.1% / conflict 7.9%, queue p99 = 14
    /// caches: LLC MSHR mean 12.3 peak 32, L1 retry mean 0.4
    /// ```
    pub fn bottleneck_summary(&self) -> String {
        let mut out = String::new();
        let core_cycles = self.elapsed * self.num_cores as u64;
        let (top_stall, top_n) = self
            .cores
            .buckets()
            .into_iter()
            .filter(|(k, _)| *k != "active")
            .max_by_key(|&(_, v)| v)
            .unwrap_or(("none", 0));
        out.push_str(&format!(
            "cores: {:.1}% active, top stall {top_stall} {:.1}%, drained {:.1}%\n",
            pct(self.cores.active, core_cycles),
            pct(top_n, core_cycles),
            pct(self.core_drained, core_cycles),
        ));
        if let Some(e) = &self.engines {
            let total = e.attributed();
            let (busiest, busy_n) = e
                .unit_busy()
                .into_iter()
                .max_by_key(|&(_, v)| v)
                .unwrap_or(("none", 0));
            out.push_str(&format!(
                "dx100: {:.1}% active, {:.1}% wait_mem ({busiest} unit busy {:.1}%), row-table p99 = {}\n",
                pct(e.active, total),
                pct(e.wait_mem, total),
                pct(busy_n, total),
                e.row_table_depth.quantile(0.99),
            ));
        }
        for (i, ch) in self.dram.iter().enumerate() {
            let ticks = ch.attributed();
            let (hits, misses, conflicts) = ch.cas_totals();
            let cas = hits + misses + conflicts;
            out.push_str(&format!(
                "dram ch{i}: {:.1}% busy, row hit {:.1}% / miss {:.1}% / conflict {:.1}%, queue p99 = {}\n",
                pct(ch.cmd_ticks, ticks),
                pct(hits, cas),
                pct(misses, cas),
                pct(conflicts, cas),
                ch.queue_depth.quantile(0.99),
            ));
        }
        out.push_str(&format!(
            "caches: LLC MSHR mean {:.1} peak {}, L1 retry mean {:.1}\n",
            self.caches.llc.mshr_occ.mean(),
            self.caches.llc.mshr_occ.peak,
            self.caches.l1.retry_occ.mean(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> SystemProfile {
        let cores = CoreProfile {
            active: 60,
            wait_flag: 30,
            empty: 10,
            ..CoreProfile::default()
        };
        let mut engines = EngineProfile {
            active: 40,
            wait_mem: 50,
            idle: 10,
            indirect_busy: 35,
            ..EngineProfile::default()
        };
        engines.row_table_depth.record_n(16, 100);
        let mut ch = ChannelProfile::new(4);
        ch.cmd_ticks = 20;
        ch.idle_ticks = 30;
        ch.bank_hits[0] = 12;
        ch.bank_misses[1] = 5;
        ch.queue_depth.record_n(3, 50);
        SystemProfile {
            elapsed: 100,
            num_cores: 1,
            cores,
            core_drained: 0,
            engines: Some(engines),
            dram: vec![ch],
            caches: HierarchyProfile::default(),
        }
    }

    #[test]
    fn json_has_versioned_shape() {
        let j = sample_profile().to_json();
        assert_eq!(j.get("version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("elapsed_cycles").and_then(Json::as_f64), Some(100.0));
        let cores = j.get("cores").expect("cores section");
        assert_eq!(cores.get("active").and_then(Json::as_f64), Some(60.0));
        assert_eq!(cores.get("drained").and_then(Json::as_f64), Some(0.0));
        let dx = j.get("dx100").expect("dx100 section");
        assert_eq!(dx.get("wait_mem").and_then(Json::as_f64), Some(50.0));
        let dram = j.get("dram").and_then(Json::as_arr).expect("dram array");
        assert_eq!(dram.len(), 1);
        assert_eq!(dram[0].get("row_hits").and_then(Json::as_f64), Some(12.0));
        assert!(j.get("caches").is_some());
    }

    #[test]
    fn null_dx100_when_no_engines() {
        let mut p = sample_profile();
        p.engines = None;
        assert_eq!(p.to_json().get("dx100"), Some(&Json::Null));
    }

    #[test]
    fn summary_names_top_stall_and_channel() {
        let s = sample_profile().bottleneck_summary();
        assert!(s.contains("top stall wait_flag 30.0%"), "{s}");
        assert!(s.contains("dram ch0"), "{s}");
        assert!(s.contains("50.0% wait_mem"), "{s}");
    }

    #[test]
    fn telemetry_json_null_profile_when_off() {
        let t = RunTelemetry {
            skipped_cycles: 7,
            skip_events: 2,
            profile: None,
            counters: None,
        };
        let j = t.to_json();
        assert_eq!(j.get("skipped_cycles").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("profile"), Some(&Json::Null));
        assert_eq!(j.get("counter_events"), Some(&Json::Null));
    }
}
