//! Property tests for whole-[`System`] checkpoint round-trips.
//!
//! Over random gather workloads (baseline, DMP, and DX100 machines alike),
//! random memory footprints, and a random mid-run checkpoint cycle:
//!   1. Taking a checkpoint mid-run must not perturb the run.
//!   2. Restoring it into a *fresh* system and resuming must reproduce the
//!      uninterrupted run's final statistics exactly — cores, caches, DRAM,
//!      accelerator, and prefetcher counters included.
//!   3. Restore is deterministic: two systems restored from one checkpoint
//!      finish with identical statistics and identical trace events.

use dx100_common::{Checkpoint, Cycle, DType};
use dx100_core::isa::{Instruction, RegId, TileId};
use dx100_core::{ArrayHandle, MemoryImage};
use dx100_cpu::CoreOp;
use dx100_prefetch::IndirectPattern;
use dx100_sim::{Driver, DriverStatus, RunStats, System, SystemCheckpoint, SystemConfig};
use proptest::prelude::*;

const T0: TileId = TileId::new(0);
const T1: TileId = TileId::new(1);
const R0: RegId = RegId::new(0);
const R1: RegId = RegId::new(1);
const R2: RegId = RegId::new(2);

#[derive(Clone, Copy, Debug, PartialEq)]
enum Machine {
    Baseline,
    Dmp,
    Dx100,
}

struct Workload {
    image: MemoryImage,
    a: ArrayHandle,
    b: ArrayHandle,
    n: u64,
}

fn make_workload(n: u64, a_len: u64, mult: u64) -> Workload {
    let mut image = MemoryImage::new();
    let a = image.alloc("A", DType::U32, a_len);
    let b = image.alloc("B", DType::U32, n);
    for i in 0..a_len {
        image.write_elem(a, i, (i * 7 + 3) & 0xffff);
    }
    for i in 0..n {
        image.write_elem(b, i, i.wrapping_mul(mult) % a_len);
    }
    Workload { image, a, b, n }
}

/// Sets the workload up on first poll, optionally checkpoints at `save_at`,
/// then lets the drain loop finish the run.
struct TestDriver {
    machine: Machine,
    a: ArrayHandle,
    b: ArrayHandle,
    n: u64,
    save_at: Option<Cycle>,
    saved: Option<SystemCheckpoint>,
    started: bool,
}

impl TestDriver {
    fn new(machine: Machine, w: &Workload, save_at: Option<Cycle>) -> Self {
        TestDriver {
            machine,
            a: w.a,
            b: w.b,
            n: w.n,
            save_at,
            saved: None,
            started: false,
        }
    }

    /// A driver that only resumes a restored system (no setup, no save).
    fn resume_only(machine: Machine, w: &Workload) -> Self {
        let mut d = TestDriver::new(machine, w, None);
        d.started = true;
        d
    }
}

impl Driver for TestDriver {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        if !self.started {
            self.started = true;
            sys.roi_begin();
            match self.machine {
                Machine::Dx100 => {
                    let f = sys.alloc_flag();
                    sys.send_reg_write(0, R0, 0);
                    sys.send_reg_write(0, R1, 1);
                    sys.send_reg_write(0, R2, self.n);
                    sys.send_instruction(
                        0,
                        Instruction::sld(DType::U32, self.b.base(), T0, R0, R1, R2),
                        None,
                    );
                    let ild = Instruction::ild(DType::U32, self.a.base(), T1, T0);
                    sys.send_instruction(0, ild, Some(f));
                    sys.push_wait(0, f, false);
                }
                Machine::Baseline | Machine::Dmp => {
                    let cores = sys.num_cores();
                    for c in 0..cores {
                        let chunk = self.n / cores as u64;
                        let (lo, hi) = (c as u64 * chunk, ((c as u64 + 1) * chunk).min(self.n));
                        let mut ops = Vec::new();
                        for i in lo..hi {
                            let idx = sys.image_ref().read_elem(self.b, i);
                            ops.push(CoreOp::load(self.b.addr_of(i), 1));
                            ops.push(CoreOp::alu().with_dep(1));
                            ops.push(CoreOp::Load {
                                addr: self.a.addr_of(idx),
                                stream: 2,
                                dep: [1, 0],
                            });
                        }
                        sys.push_ops(c, ops);
                    }
                }
            }
            return DriverStatus::Running;
        }
        match self.save_at {
            Some(at) if self.saved.is_none() => {
                if sys.now() >= at {
                    // A mid-run checkpoint must settle any elided-but-
                    // uncredited skip span before snapshotting stats.
                    sys.settle();
                    self.saved = Some(sys.save().expect("mid-run checkpoint must succeed"));
                    DriverStatus::Done
                } else {
                    DriverStatus::Running
                }
            }
            _ => DriverStatus::Done,
        }
    }
}

fn build_system(machine: Machine, w: Workload, trace: bool) -> System {
    let mut cfg = match machine {
        Machine::Baseline => SystemConfig::paper_baseline(),
        Machine::Dmp => SystemConfig::paper_dmp(),
        Machine::Dx100 => SystemConfig::paper_dx100(),
    };
    cfg.obs.trace = trace;
    let (a, b, n) = (w.a, w.b, w.n);
    let mut sys = System::new(cfg, w.image);
    if machine == Machine::Dmp {
        if let Some(dmp) = sys.dmp_mut() {
            dmp.add_pattern(IndirectPattern::simple(
                b.base(),
                n,
                DType::U32,
                a.base(),
                DType::U32,
            ));
        }
    }
    sys
}

/// Every counter that feeds the figures, as one comparable string (the
/// trace and epoch series are compared separately where applicable).
fn summary(s: &RunStats) -> String {
    format!(
        "cycles={} instr={} core={:?} dram={:?} ch={} hier={:?} dx={:?} dmp={}",
        s.cycles,
        s.instructions,
        s.core,
        s.dram,
        s.dram_channels,
        s.hierarchy,
        s.dx100,
        s.dmp_prefetches
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mid_run_checkpoint_restores_into_identical_run(
        machine in proptest::sample::select(vec![Machine::Baseline, Machine::Dmp, Machine::Dx100]),
        n in 64u64..512,
        a_len_kb in 1u64..16,
        mult in proptest::sample::select(vec![1u64, 7, 2654435761, 0x9E3779B9]),
        frac_pct in 1u64..100,
    ) {
        let a_len = a_len_kb * 1024;

        // Uninterrupted reference.
        let w = make_workload(n, a_len, mult);
        let mut sys = build_system(machine, w, false);
        let w = make_workload(n, a_len, mult);
        let ref_stats = sys.run(&mut TestDriver::new(machine, &w, None));

        // Interrupted run: checkpoint at cycle k, keep running.
        let k = ref_stats.cycles * frac_pct / 100;
        let mut sys = build_system(machine, make_workload(n, a_len, mult), false);
        let mut driver = TestDriver::new(machine, &w, Some(k));
        let stats_a = sys.run(&mut driver);
        let ck = driver.saved.expect("driver saved a checkpoint");
        prop_assert_eq!(summary(&stats_a), summary(&ref_stats));

        // Restore into two fresh systems (tracing on) and resume both.
        let mut outs = Vec::new();
        for _ in 0..2 {
            let mut sys = build_system(machine, make_workload(n, a_len, mult), true);
            sys.restore(&ck);
            let stats = sys.run(&mut TestDriver::resume_only(machine, &w));
            outs.push(stats);
        }
        let (stats_b, stats_c) = (&outs[0], &outs[1]);
        prop_assert_eq!(summary(stats_b), summary(&ref_stats));
        prop_assert_eq!(summary(stats_c), summary(&ref_stats));
        let (tb, tc) = (stats_b.trace.as_ref().unwrap(), stats_c.trace.as_ref().unwrap());
        prop_assert_eq!(tb.events(), tc.events());
        prop_assert_eq!(tb.tracks(), tc.tracks());
    }
}
