//! End-to-end system tests: a gather kernel run three ways — baseline core
//! loop, DMP-assisted baseline, and DX100-offloaded — on the full machine
//! (cores + caches + DRAM + accelerator).

use dx100_common::flags::FlagId;
use dx100_common::DType;
use dx100_core::isa::{Instruction, RegId, TileId};
use dx100_core::{ArrayHandle, MemoryImage};
use dx100_cpu::CoreOp;
use dx100_prefetch::IndirectPattern;
use dx100_sim::driver::NullDriver;
use dx100_sim::{Driver, DriverStatus, System, SystemConfig};

const T0: TileId = TileId::new(0);
const T1: TileId = TileId::new(1);
const R0: RegId = RegId::new(0);
const R1: RegId = RegId::new(1);
const R2: RegId = RegId::new(2);

struct Setup {
    image: MemoryImage,
    a: ArrayHandle,
    b: ArrayHandle,
    n: u64,
}

fn make_setup(n: u64, a_len: u64) -> Setup {
    let mut image = MemoryImage::new();
    let a = image.alloc("A", DType::U32, a_len);
    let b = image.alloc("B", DType::U32, n);
    for i in 0..a_len {
        image.write_elem(a, i, (i * 7 + 3) & 0xffff);
    }
    for i in 0..n {
        // Pseudo-random indices spread over A.
        image.write_elem(b, i, (i.wrapping_mul(2654435761)) % a_len);
    }
    Setup { image, a, b, n }
}

fn expected_gather(s: &Setup) -> Vec<u64> {
    (0..s.n)
        .map(|i| {
            let idx = s.image.read_elem(s.b, i);
            s.image.read_elem(s.a, idx)
        })
        .collect()
}

/// Baseline loop body: load B[i], address calc, load A[B[i]].
fn baseline_ops(s: &Setup, core: usize, cores: usize) -> Vec<CoreOp> {
    let mut ops = Vec::new();
    let chunk = s.n / cores as u64;
    let (lo, hi) = (core as u64 * chunk, ((core as u64 + 1) * chunk).min(s.n));
    for i in lo..hi {
        let idx = s.image.read_elem(s.b, i);
        ops.push(CoreOp::load(s.b.addr_of(i), 1)); // index load
        ops.push(CoreOp::alu().with_dep(1)); // address calculation
        ops.push(CoreOp::Load {
            addr: s.a.addr_of(idx),
            stream: 2,
            dep: [1, 0], // depends on the address calc
        });
        ops.push(CoreOp::alu().with_dep(1)); // consume
    }
    ops
}

struct GatherDriver {
    state: u8,
    flag: Option<FlagId>,
    a: ArrayHandle,
    b: ArrayHandle,
    n: u64,
}

impl Driver for GatherDriver {
    fn poll(&mut self, sys: &mut System) -> DriverStatus {
        match self.state {
            0 => {
                sys.roi_begin();
                let f = sys.alloc_flag();
                sys.send_reg_write(0, R0, 0);
                sys.send_reg_write(0, R1, 1);
                sys.send_reg_write(0, R2, self.n);
                sys.send_instruction(
                    0,
                    Instruction::sld(DType::U32, self.b.base(), T0, R0, R1, R2),
                    None,
                );
                let ild = Instruction::ild(DType::U32, self.a.base(), T1, T0);
                sys.send_instruction(0, ild, Some(f));
                sys.push_wait(0, f, false);
                self.flag = Some(f);
                self.state = 1;
                DriverStatus::Running
            }
            1 => {
                if sys.flag(self.flag.unwrap()) {
                    self.state = 2;
                    DriverStatus::Done
                } else {
                    DriverStatus::Running
                }
            }
            _ => DriverStatus::Done,
        }
    }
}

#[test]
fn dx100_gather_produces_correct_data() {
    let s = make_setup(2048, 256 * 1024);
    let expect = expected_gather(&s);
    let mut sys = System::new(SystemConfig::paper_dx100(), s.image);
    let mut driver = GatherDriver {
        state: 0,
        flag: None,
        a: s.a,
        b: s.b,
        n: s.n,
    };
    let stats = sys.run(&mut driver);
    assert_eq!(sys.dx100_ref(0).tile(T1).valid(), &expect[..]);
    assert!(stats.cycles > 0);
    let dx = stats.dx100.unwrap();
    assert_eq!(dx.instructions_retired, 2);
    assert!(dx.indirect_line_reads > 0);
    // The accelerator leaves the cores nearly idle: tiny instruction count.
    assert!(
        stats.instructions < 200,
        "DX100 run must be instruction-light, got {}",
        stats.instructions
    );
}

#[test]
fn baseline_gather_runs_to_completion() {
    let s = make_setup(2048, 256 * 1024);
    let per_core: Vec<Vec<CoreOp>> = (0..4).map(|c| baseline_ops(&s, c, 4)).collect();
    let mut sys = System::new(SystemConfig::paper_baseline(), s.image);
    for (c, ops) in per_core.into_iter().enumerate() {
        sys.push_ops(c, ops);
    }
    sys.roi_begin();
    let stats = sys.run(&mut NullDriver);
    // 2048 iterations × 4 µops.
    assert_eq!(stats.instructions, 2048 * 4);
    assert!(stats.cycles > 0);
    assert!(stats.hierarchy.l1.demand_accesses() >= 2 * 2048);
    assert!(stats.dram.requests() > 0, "random gather must reach DRAM");
}

#[test]
fn dx100_beats_baseline_on_allmiss_gather() {
    // Large enough that indirect accesses miss the LLC.
    let n = 4096;
    let a_len = 4 * 1024 * 1024; // 16 MB of u32 — exceeds every cache
    let s = make_setup(n, a_len);
    let (b_handle, a_handle) = (s.b, s.a);
    let _ = (b_handle, a_handle);
    let mut base_sys = System::new(SystemConfig::paper_baseline(), s.image);
    for c in 0..4 {
        let chunk = n / 4;
        let (lo, hi) = (c as u64 * chunk, (c as u64 + 1) * chunk);
        let mut ops = Vec::new();
        for i in lo..hi {
            let idx = base_sys.image_ref().read_elem(s.b, i);
            ops.push(CoreOp::load(s.b.addr_of(i), 1));
            ops.push(CoreOp::alu().with_dep(1));
            ops.push(CoreOp::Load {
                addr: s.a.addr_of(idx),
                stream: 2,
                dep: [1, 0],
            });
            ops.push(CoreOp::alu().with_dep(1));
        }
        base_sys.push_ops(c as usize, ops);
    }
    base_sys.roi_begin();
    let base = base_sys.run(&mut NullDriver);

    let s2 = make_setup(n, a_len);
    let mut dx_sys = System::new(SystemConfig::paper_dx100(), s2.image);
    let mut driver = GatherDriver {
        state: 0,
        flag: None,
        a: s2.a,
        b: s2.b,
        n,
    };
    let dx = dx_sys.run(&mut driver);

    let speedup = dx.speedup_over(&base);
    assert!(
        speedup > 1.5,
        "DX100 must clearly win the all-miss gather: speedup {speedup:.2} \
         (base {} cycles, dx {} cycles, dx bw {:.2}, base bw {:.2})",
        base.cycles,
        dx.cycles,
        dx.bandwidth_utilization(),
        base.bandwidth_utilization()
    );
    assert!(
        dx.bandwidth_utilization() > base.bandwidth_utilization(),
        "DX100 must raise DRAM bandwidth utilization"
    );
}

#[test]
fn dmp_prefetcher_reduces_baseline_cycles() {
    let n = 4096;
    let a_len = 4 * 1024 * 1024;

    let run = |cfg: SystemConfig| {
        let s = make_setup(n, a_len);
        let (a, b) = (s.a, s.b);
        let mut sys = System::new(cfg, s.image);
        if let Some(dmp) = sys.dmp_mut() {
            dmp.add_pattern(IndirectPattern::simple(
                b.base(),
                n,
                DType::U32,
                a.base(),
                DType::U32,
            ));
        }
        for c in 0..4usize {
            let chunk = n / 4;
            let (lo, hi) = (c as u64 * chunk, (c as u64 + 1) * chunk);
            let mut ops = Vec::new();
            for i in lo..hi {
                let idx = sys.image_ref().read_elem(b, i);
                ops.push(CoreOp::load(b.addr_of(i), 1));
                ops.push(CoreOp::alu().with_dep(1));
                ops.push(CoreOp::Load {
                    addr: a.addr_of(idx),
                    stream: 2,
                    dep: [1, 0],
                });
                ops.push(CoreOp::alu().with_dep(1));
            }
            sys.push_ops(c, ops);
        }
        sys.roi_begin();
        sys.run(&mut NullDriver)
    };

    let base = run(SystemConfig::paper_baseline());
    let dmp = run(SystemConfig::paper_dmp());
    assert!(dmp.dmp_prefetches > 0, "DMP must issue prefetches");
    assert!(
        dmp.cycles < base.cycles,
        "DMP must reduce cycles: base {}, dmp {}",
        base.cycles,
        dmp.cycles
    );
}
