//! Cache and hierarchy configuration (paper Table 3).

/// Parameters of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in CPU cycles (lookup pipeline depth).
    pub latency: u64,
    /// Miss Status Holding Registers: bound on outstanding misses.
    pub mshrs: usize,
    /// Whether a stride prefetcher is attached to this level.
    pub stride_prefetcher: bool,
}

impl CacheConfig {
    /// Number of sets (capacity / ways / 64-byte lines).
    pub fn sets(&self) -> usize {
        (self.size_bytes / 64 / self.ways as u64) as usize
    }

    /// Table 3 L1D: 32 KB, 8-way, 4 cycles, 16 MSHRs, stride prefetcher.
    pub fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            latency: 4,
            mshrs: 16,
            stride_prefetcher: true,
        }
    }

    /// Table 3 L2: 256 KB, 4-way, 12 cycles, 32 MSHRs, stride prefetcher.
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 4,
            latency: 12,
            mshrs: 32,
            stride_prefetcher: true,
        }
    }

    /// Table 3 LLC for the baseline/DMP systems: 10 MB, 20-way, 42 cycles,
    /// 256 MSHRs. (The baseline gets 2 MB extra LLC to offset DX100's
    /// scratchpad area, per Section 5.)
    pub fn paper_llc_baseline() -> Self {
        CacheConfig {
            size_bytes: 10 * 1024 * 1024,
            ways: 20,
            latency: 42,
            mshrs: 256,
            stride_prefetcher: false,
        }
    }

    /// Table 3 LLC for the DX100 system: 8 MB, 16-way, 42 cycles, 256 MSHRs.
    pub fn paper_llc_dx100() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024 * 1024,
            ways: 16,
            latency: 42,
            mshrs: 256,
            stride_prefetcher: false,
        }
    }
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (one private L1D + L2 each).
    pub cores: usize,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core L2 cache.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Link latency between adjacent levels in CPU cycles (NoC hop).
    pub link_latency: u64,
}

impl HierarchyConfig {
    /// The paper's baseline memory hierarchy for `cores` cores (10 MB LLC).
    pub fn paper_baseline(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(),
            llc: CacheConfig::paper_llc_baseline(),
            link_latency: 2,
        }
    }

    /// The paper's DX100-system hierarchy for `cores` cores (8 MB LLC; the
    /// area difference funds the accelerator's 2 MB scratchpad).
    pub fn paper_dx100(cores: usize) -> Self {
        HierarchyConfig {
            llc: CacheConfig::paper_llc_dx100(),
            ..Self::paper_baseline(cores)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_counts_match_geometry() {
        assert_eq!(CacheConfig::paper_l1d().sets(), 64);
        assert_eq!(CacheConfig::paper_l2().sets(), 1024);
        assert_eq!(CacheConfig::paper_llc_baseline().sets(), 8192);
        assert_eq!(CacheConfig::paper_llc_dx100().sets(), 8192);
    }

    #[test]
    fn paper_configs_match_table3() {
        let l1 = CacheConfig::paper_l1d();
        assert_eq!(
            (l1.size_bytes, l1.ways, l1.latency, l1.mshrs),
            (32768, 8, 4, 16)
        );
        let l2 = CacheConfig::paper_l2();
        assert_eq!(
            (l2.size_bytes, l2.ways, l2.latency, l2.mshrs),
            (262144, 4, 12, 32)
        );
        let llc = CacheConfig::paper_llc_baseline();
        assert_eq!((llc.ways, llc.latency, llc.mshrs), (20, 42, 256));
    }
}
