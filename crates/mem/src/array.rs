//! Set-associative tag array with LRU replacement.

use dx100_common::LineAddr;

/// One way of one set.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    used: u64,
    /// Line was installed by a prefetch and not yet referenced by demand.
    prefetched: bool,
}

/// Result of inserting a line into the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Evicted line address.
    pub line: LineAddr,
    /// Whether the victim was dirty (requires a write-back).
    pub dirty: bool,
}

/// A set-associative tag/state array (data payloads are not modeled; the
/// functional layer owns data).
#[derive(Clone, Debug)]
pub struct CacheArray {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    set_bits: u32,
    stamp: u64,
}

impl CacheArray {
    /// Creates an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0);
        CacheArray {
            sets: vec![vec![Way::default(); ways]; sets],
            set_mask: sets as u64 - 1,
            set_bits: sets.trailing_zeros(),
            stamp: 0,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.set_bits
    }

    fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr((tag << self.set_bits) | set as u64)
    }

    /// Looks up `line`; on hit updates LRU and the dirty bit (if `is_write`)
    /// and returns `true` plus whether the hit consumed a prefetched line.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> Option<PrefetchHit> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        self.stamp += 1;
        let stamp = self.stamp;
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.used = stamp;
                way.dirty |= is_write;
                let was_prefetched = way.prefetched;
                way.prefetched = false;
                return Some(PrefetchHit {
                    first_use_of_prefetch: was_prefetched,
                });
            }
        }
        None
    }

    /// Whether `line` is present, without disturbing LRU.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`, evicting the LRU way if the set is full. Returns the
    /// victim if one was displaced.
    pub fn insert(&mut self, line: LineAddr, dirty: bool, prefetched: bool) -> Option<Victim> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        self.stamp += 1;
        let stamp = self.stamp;
        // Already present (e.g. racing fill): just update state.
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            way.dirty |= dirty;
            way.used = stamp;
            return None;
        }
        // Free way?
        if let Some(way) = self.sets[set].iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag,
                valid: true,
                dirty,
                used: stamp,
                prefetched,
            };
            return None;
        }
        // Evict LRU.
        let victim_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.used)
            .map(|(i, _)| i)
            .unwrap();
        let victim = self.sets[set][victim_idx];
        self.sets[set][victim_idx] = Way {
            tag,
            valid: true,
            dirty,
            used: stamp,
            prefetched,
        };
        Some(Victim {
            line: self.line_of(set, victim.tag),
            dirty: victim.dirty,
        })
    }

    /// Invalidates `line` if present; returns whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Number of valid lines (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }
}

/// Outcome details of a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchHit {
    /// True when this demand access is the first use of a prefetched line
    /// (counts the prefetch as useful).
    pub first_use_of_prefetch: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut a = CacheArray::new(4, 2);
        assert!(a.access(LineAddr(5), false).is_none());
        assert!(a.insert(LineAddr(5), false, false).is_none());
        assert!(a.access(LineAddr(5), false).is_some());
        assert!(a.contains(LineAddr(5)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut a = CacheArray::new(1, 2);
        a.insert(LineAddr(1), false, false);
        a.insert(LineAddr(2), false, false);
        // Touch 1 so 2 becomes LRU.
        a.access(LineAddr(1), false);
        let v = a.insert(LineAddr(3), false, false).unwrap();
        assert_eq!(v.line, LineAddr(2));
        assert!(a.contains(LineAddr(1)));
        assert!(a.contains(LineAddr(3)));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut a = CacheArray::new(1, 1);
        a.insert(LineAddr(1), false, false);
        a.access(LineAddr(1), true); // make dirty via store hit
        let v = a.insert(LineAddr(2), false, false).unwrap();
        assert_eq!(
            v,
            Victim {
                line: LineAddr(1),
                dirty: true
            }
        );
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut a = CacheArray::new(2, 1);
        a.insert(LineAddr(4), true, false);
        assert_eq!(a.invalidate(LineAddr(4)), Some(true));
        assert_eq!(a.invalidate(LineAddr(4)), None);
        assert!(!a.contains(LineAddr(4)));
    }

    #[test]
    fn prefetch_first_use_detected() {
        let mut a = CacheArray::new(2, 2);
        a.insert(LineAddr(8), false, true);
        let hit = a.access(LineAddr(8), false).unwrap();
        assert!(hit.first_use_of_prefetch);
        let hit2 = a.access(LineAddr(8), false).unwrap();
        assert!(!hit2.first_use_of_prefetch);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut a = CacheArray::new(4, 1);
        for i in 0..4u64 {
            assert!(a.insert(LineAddr(i), false, false).is_none());
        }
        assert_eq!(a.occupancy(), 4);
        // Same set (stride = #sets) evicts.
        assert!(a.insert(LineAddr(4), false, false).is_some());
    }
}
