//! Cache-level attribution: MSHR occupancy accumulators and depth
//! histograms, sampled once per tick from the pre-tick state.
//!
//! Sampling pre-tick makes the counters batch-exact under cycle skipping:
//! a certified quiescent span freezes every MSHR file, so
//! [`crate::MemoryHierarchy::credit_idle_span`] records `n` samples of the
//! frozen occupancy in one step — bit-identical to `n` no-op ticks.

use dx100_common::{OccAccum, Pow2Histogram};

/// MSHR utilization for one cache level (or several merged levels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheProfile {
    /// MSHR entries in use, accumulated every tick (mean/peak occupancy).
    pub mshr_occ: OccAccum,
    /// MSHR entries in use, bucketed per tick (distribution/quantiles).
    pub mshr_depth: Pow2Histogram,
    /// Accesses parked in the retry queue (MSHR-full backpressure),
    /// accumulated every tick.
    pub retry_occ: OccAccum,
}

impl CacheProfile {
    /// Records `n` ticks at `mshr` entries in use and `retry` parked
    /// accesses (1 for a live tick, >1 for a credited span).
    pub fn sample(&mut self, mshr: u64, retry: u64, n: u64) {
        self.mshr_occ.add(mshr, n);
        self.mshr_depth.record_n(mshr, n);
        self.retry_occ.add(retry, n);
    }

    /// Folds another level's samples in.
    pub fn merge(&mut self, other: &CacheProfile) {
        self.mshr_occ.merge(&other.mshr_occ);
        self.mshr_depth.merge(&other.mshr_depth);
        self.retry_occ.merge(&other.retry_occ);
    }
}

/// Per-level MSHR utilization for a whole hierarchy, with private levels
/// merged across cores.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyProfile {
    /// All L1D caches, merged.
    pub l1: CacheProfile,
    /// All private L2 caches, merged.
    pub l2: CacheProfile,
    /// The shared LLC.
    pub llc: CacheProfile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_sample_equals_repeated_samples() {
        let mut a = CacheProfile::default();
        let mut b = CacheProfile::default();
        a.sample(3, 1, 7);
        for _ in 0..7 {
            b.sample(3, 1, 1);
        }
        assert_eq!(a, b);
        assert_eq!(a.mshr_occ.mean(), 3.0);
        assert_eq!(a.mshr_depth.total(), 7);
    }

    #[test]
    fn merge_accumulates_both_views() {
        let mut a = CacheProfile::default();
        a.sample(4, 0, 2);
        let mut b = CacheProfile::default();
        b.sample(0, 0, 2);
        a.merge(&b);
        assert_eq!(a.mshr_occ.mean(), 2.0);
        assert_eq!(a.mshr_depth.total(), 4);
    }
}
