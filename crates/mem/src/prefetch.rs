//! Per-stream stride prefetcher.
//!
//! The paper's Table 3 attaches stride prefetchers to L1 and L2. Stride
//! prefetching is what makes the cores' *streaming* accesses (index arrays,
//! scratchpad reads) cheap — and what fails completely on *indirect*
//! accesses, whose line sequence has no stride. Both effects matter for the
//! evaluation, so the model trains per logical stream and only issues
//! prefetches once a stride has repeated.

use std::collections::HashMap;

use dx100_common::LineAddr;

/// Training state for one stream.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_line: i64,
    stride: i64,
    confidence: u8,
}

/// A per-stream stride detector that emits prefetch candidates.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: HashMap<u32, StreamEntry>,
    /// Prefetch distance: how many strides ahead to fetch.
    distance: i64,
    /// Prefetch degree: how many lines to issue per trigger.
    degree: usize,
    confidence_threshold: u8,
    max_streams: usize,
}

impl StridePrefetcher {
    /// Creates a prefetcher with the default distance (8 strides ahead) and
    /// degree (4 lines per trigger).
    pub fn new() -> Self {
        StridePrefetcher {
            table: HashMap::new(),
            distance: 8,
            degree: 4,
            confidence_threshold: 2,
            max_streams: 64,
        }
    }

    /// Trains on a demand access and returns prefetch candidate lines.
    pub fn observe(&mut self, stream: u32, line: LineAddr, out: &mut Vec<LineAddr>) {
        let cur = line.0 as i64;
        match self.table.get_mut(&stream) {
            Some(e) => {
                let stride = cur - e.last_line;
                if stride == 0 {
                    return; // same line; no information
                }
                if stride == e.stride {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = stride;
                    e.confidence = 0;
                }
                e.last_line = cur;
                if e.confidence >= self.confidence_threshold {
                    for k in 0..self.degree as i64 {
                        let target = cur + (self.distance + k) * e.stride;
                        if target >= 0 {
                            out.push(LineAddr(target as u64));
                        }
                    }
                }
            }
            None => {
                if self.table.len() >= self.max_streams {
                    self.table.clear(); // cheap aging for a bounded table
                }
                self.table.insert(
                    stream,
                    StreamEntry {
                        last_line: cur,
                        stride: 0,
                        confidence: 0,
                    },
                );
            }
        }
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_stream_prefetches_ahead() {
        let mut p = StridePrefetcher::new();
        let mut out = Vec::new();
        for i in 0..8u64 {
            p.observe(1, LineAddr(i), &mut out);
        }
        assert!(!out.is_empty(), "confident stream must prefetch");
        // Prefetching runs ahead of the stream: the furthest candidate is
        // `distance + degree - 1` lines beyond the last demand access.
        assert_eq!(out.iter().map(|l| l.0).max(), Some(7 + 8 + 3));
    }

    #[test]
    fn random_stream_never_prefetches() {
        let mut p = StridePrefetcher::new();
        let mut out = Vec::new();
        for line in [5u64, 900, 13, 47777, 2, 10_000_019] {
            p.observe(2, LineAddr(line), &mut out);
        }
        assert!(out.is_empty(), "no stable stride → no prefetch");
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new();
        let mut out = Vec::new();
        for i in (0..10u64).rev() {
            p.observe(3, LineAddr(1000 + i), &mut out);
        }
        assert!(!out.is_empty());
        // Stream descends from 1009: every candidate runs below the stream.
        assert!(out.iter().all(|l| l.0 < 1008));
        assert!(out.iter().map(|l| l.0).min() < Some(1000));
    }

    #[test]
    fn streams_are_independent() {
        let mut p = StridePrefetcher::new();
        let mut out = Vec::new();
        // Interleave two unit-stride streams at different bases.
        for i in 0..8u64 {
            p.observe(10, LineAddr(i), &mut out);
            p.observe(11, LineAddr(100_000 + i), &mut out);
        }
        assert!(out.iter().any(|l| l.0 < 100));
        assert!(out.iter().any(|l| l.0 > 100_000));
    }
}
