//! The full cache hierarchy: per-core L1D + L2, shared LLC, inter-level
//! links, write-back routing, and the DX100 snoop/LLC ports.

use std::collections::VecDeque;

use dx100_common::{CoreId, Cycle, DelayQueue, LineAddr, ReqId, TraceHandle};

use crate::cache::{Cache, CacheOutputs};
use crate::config::HierarchyConfig;
use crate::profile::HierarchyProfile;
use crate::stats::HierarchyStats;
use crate::{Access, Requester};

/// A completed demand access delivered back to a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreResponse {
    /// Core the response belongs to.
    pub core: CoreId,
    /// Request identifier from the originating [`Access`].
    pub id: ReqId,
    /// Whether the completed access was a store.
    pub is_write: bool,
}

/// A request leaving the hierarchy toward DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramBound {
    /// Target line.
    pub line: LineAddr,
    /// True for LLC write-backs (no fill expected), false for demand/prefetch
    /// reads (a [`MemoryHierarchy::dram_fill`] must follow).
    pub is_write: bool,
}

/// Messages traveling on inter-level links.
#[derive(Debug, Clone, Copy)]
enum Msg {
    AccessL2(CoreId, Access),
    AccessLlc(Access),
    FillL2(CoreId, LineAddr),
    FillL1(CoreId, LineAddr),
}

/// The hierarchy of Table 3: `cores` × (L1D → L2) → shared LLC.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Cache,
    links: DelayQueue<Msg>,
    core_responses: VecDeque<CoreResponse>,
    dx100_responses: VecDeque<(ReqId, bool)>,
    scratch: CacheOutputs,
}

/// L1 lookup ports (two loads + one store per cycle, Skylake-like).
const L1_PORTS: usize = 3;
/// L2 lookup ports.
const L2_PORTS: usize = 2;
/// LLC lookup ports (banked/shared across cores and DX100).
const LLC_PORTS: usize = 4;

impl dx100_common::Checkpoint for MemoryHierarchy {
    type State = MemoryHierarchy;

    fn save(&self) -> Result<Self::State, dx100_common::CheckpointError> {
        Ok(self.clone())
    }

    fn restore(&mut self, state: &Self::State) {
        *self = state.clone();
    }
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        let l1 = (0..config.cores)
            .map(|c| Cache::new(config.l1.clone(), L1_PORTS, Requester::PrefetchL1(c)))
            .collect();
        let l2 = (0..config.cores)
            .map(|c| Cache::new(config.l2.clone(), L2_PORTS, Requester::PrefetchL2(c)))
            .collect();
        // The LLC has no prefetcher in Table 3; the requester stamp is inert.
        let llc = Cache::new(config.llc.clone(), LLC_PORTS, Requester::Dx100);
        MemoryHierarchy {
            l1,
            l2,
            llc,
            links: DelayQueue::new(),
            core_responses: VecDeque::new(),
            dx100_responses: VecDeque::new(),
            scratch: CacheOutputs::default(),
            config,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Issues a core demand access into its L1D.
    ///
    /// # Panics
    /// Panics if the access's requester is not [`Requester::Core`].
    pub fn core_access(&mut self, access: Access, now: Cycle) {
        let Requester::Core(core) = access.requester else {
            panic!("core_access requires a Core requester");
        };
        self.l1[core].accept(access, now);
    }

    /// Issues a DX100 access directly into the LLC (the accelerator's Cache
    /// Interface), after one NoC link hop.
    pub fn llc_access(&mut self, access: Access, now: Cycle) {
        debug_assert_eq!(access.requester, Requester::Dx100);
        self.links
            .push_at(now + self.config.link_latency, Msg::AccessLlc(access));
    }

    /// Injects a hardware-prefetcher request at a core's L2 (used by the
    /// DMP model, which sits beside the private caches). The fill
    /// terminates at that L2.
    pub fn inject_prefetch_l2(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        let access = Access {
            id: u64::MAX,
            line,
            is_write: false,
            stream: 0,
            is_prefetch: true,
            requester: Requester::PrefetchL2(core),
        };
        self.l2[core].accept(access, now);
    }

    /// Pops a completed core access.
    pub fn pop_core_response(&mut self) -> Option<CoreResponse> {
        self.core_responses.pop_front()
    }

    /// Pops a completed DX100 LLC access `(id, is_write)`.
    pub fn pop_dx100_response(&mut self) -> Option<(ReqId, bool)> {
        self.dx100_responses.pop_front()
    }

    /// Snoop: whether any cache level holds `line` (the coherency-directory
    /// query DX100's Interface performs during the fill stage).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.llc.contains(line)
            || self.l1.iter().any(|c| c.contains(line))
            || self.l2.iter().any(|c| c.contains(line))
    }

    /// Invalidates `line` everywhere (DX100 coherency agent); returns whether
    /// any copy was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let mut dirty = false;
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            dirty |= c.invalidate(line).unwrap_or(false);
        }
        dirty |= self.llc.invalidate(line).unwrap_or(false);
        dirty
    }

    /// Whether every level is idle and no link messages are in flight.
    pub fn is_idle(&self) -> bool {
        self.links.is_empty()
            && self.core_responses.is_empty()
            && self.dx100_responses.is_empty()
            && self.llc.is_idle()
            && self.l1.iter().all(|c| c.is_idle())
            && self.l2.iter().all(|c| c.is_idle())
    }

    /// Earliest cycle ≥ `from` at which [`MemoryHierarchy::tick`] would do
    /// any work: deliver a link message, process a cache access or retry, or
    /// hand back a buffered response. `None` means the hierarchy is fully
    /// drained and will stay inert until new accesses are injected.
    pub fn next_event(&self, from: Cycle) -> Option<Cycle> {
        if !self.core_responses.is_empty() || !self.dx100_responses.is_empty() {
            return Some(from);
        }
        let mut ev = self.links.next_ready_at();
        let caches = self
            .l1
            .iter()
            .chain(self.l2.iter())
            .chain(std::iter::once(&self.llc));
        for cache in caches {
            if let Some(t) = cache.next_event(from) {
                ev = Some(ev.map_or(t, |e: Cycle| e.min(t)));
            }
        }
        ev
    }

    /// Advances one CPU cycle. LLC misses and write-backs are appended to
    /// `to_dram`; the caller forwards them to the DRAM system and later calls
    /// [`MemoryHierarchy::dram_fill`] for each read once data returns.
    pub fn tick(&mut self, now: Cycle, to_dram: &mut Vec<DramBound>) {
        // 1. Deliver link messages that arrive this cycle.
        while let Some(msg) = self.links.pop_ready(now) {
            match msg {
                Msg::AccessL2(core, acc) => self.l2[core].accept(acc, now),
                Msg::AccessLlc(acc) => self.llc.accept(acc, now),
                Msg::FillL2(core, line) => self.fill_l2(core, line, now, to_dram),
                Msg::FillL1(core, line) => self.fill_l1(core, line, now, to_dram),
            }
        }

        let link = self.config.link_latency;

        // 2. L1 lookups.
        for core in 0..self.config.cores {
            self.scratch.completed.clear();
            self.scratch.downstream.clear();
            self.l1[core].tick(now, &mut self.scratch);
            for acc in self.scratch.completed.drain(..) {
                route_from_l1(core, acc, &mut self.core_responses);
            }
            for acc in self.scratch.downstream.drain(..) {
                self.links.push_at(now + link, Msg::AccessL2(core, acc));
            }
        }

        // 3. L2 lookups.
        for core in 0..self.config.cores {
            self.scratch.completed.clear();
            self.scratch.downstream.clear();
            self.l2[core].tick(now, &mut self.scratch);
            let completed: Vec<Access> = self.scratch.completed.drain(..).collect();
            for acc in completed {
                // A hit at L2 climbs one level toward the requester.
                match acc.requester {
                    Requester::Core(c) | Requester::PrefetchL1(c) => {
                        debug_assert_eq!(c, core);
                        self.links.push_at(now + link, Msg::FillL1(core, acc.line));
                    }
                    Requester::PrefetchL2(_) => {} // terminated here
                    Requester::Dx100 => unreachable!("DX100 accesses never enter an L2"),
                }
            }
            for acc in self.scratch.downstream.drain(..) {
                self.links.push_at(now + link, Msg::AccessLlc(acc));
            }
        }

        // 4. LLC lookups.
        self.scratch.completed.clear();
        self.scratch.downstream.clear();
        self.llc.tick(now, &mut self.scratch);
        let completed: Vec<Access> = self.scratch.completed.drain(..).collect();
        for acc in completed {
            match acc.requester {
                Requester::Core(c) | Requester::PrefetchL1(c) | Requester::PrefetchL2(c) => {
                    self.links.push_at(now + link, Msg::FillL2(c, acc.line));
                }
                Requester::Dx100 => self.dx100_responses.push_back((acc.id, acc.is_write)),
            }
        }
        for acc in self.scratch.downstream.drain(..) {
            to_dram.push(DramBound {
                line: acc.line,
                is_write: false,
            });
        }
    }

    /// Delivers a DRAM read completion: fills the LLC and propagates fills
    /// (and write-backs) upward.
    pub fn dram_fill(&mut self, line: LineAddr, now: Cycle, to_dram: &mut Vec<DramBound>) {
        let result = self.llc.fill(line, now);
        if let Some(victim) = result.dirty_victim {
            to_dram.push(DramBound {
                line: victim,
                is_write: true,
            });
        }
        let link = self.config.link_latency;
        let mut filled_l2 = [false; 64];
        for acc in result.waiters {
            match acc.requester {
                Requester::Core(c) | Requester::PrefetchL1(c) | Requester::PrefetchL2(c) => {
                    // One fill per L2 instance: same-line waiters from one
                    // core share a single fill message.
                    if !filled_l2[c] {
                        filled_l2[c] = true;
                        self.links.push_at(now + link, Msg::FillL2(c, line));
                    }
                }
                Requester::Dx100 => self.dx100_responses.push_back((acc.id, acc.is_write)),
            }
        }
    }

    fn fill_l2(&mut self, core: CoreId, line: LineAddr, now: Cycle, to_dram: &mut Vec<DramBound>) {
        let result = self.l2[core].fill(line, now);
        if let Some(victim) = result.dirty_victim {
            self.writeback_to_llc(victim, to_dram);
        }
        let link = self.config.link_latency;
        let mut filled = false;
        for acc in result.waiters {
            match acc.requester {
                Requester::Core(c) | Requester::PrefetchL1(c) => {
                    debug_assert_eq!(c, core);
                    if !filled {
                        filled = true;
                        self.links.push_at(now + link, Msg::FillL1(core, line));
                    }
                }
                Requester::PrefetchL2(_) => {} // terminated: the fill itself was the goal
                Requester::Dx100 => unreachable!("DX100 accesses never enter an L2"),
            }
        }
    }

    fn fill_l1(&mut self, core: CoreId, line: LineAddr, now: Cycle, to_dram: &mut Vec<DramBound>) {
        let result = self.l1[core].fill(line, now);
        if let Some(victim) = result.dirty_victim {
            if let Some(v2) = self.l2[core].insert_writeback(victim) {
                self.writeback_to_llc(v2, to_dram);
            }
        }
        for acc in result.waiters {
            match acc.requester {
                Requester::Core(c) => {
                    debug_assert_eq!(c, core);
                    self.core_responses.push_back(CoreResponse {
                        core,
                        id: acc.id,
                        is_write: acc.is_write,
                    });
                }
                Requester::PrefetchL1(_) => {} // terminated here
                _ => unreachable!("only core demands and L1 prefetches wait at L1"),
            }
        }
    }

    fn writeback_to_llc(&mut self, line: LineAddr, to_dram: &mut Vec<DramBound>) {
        if let Some(victim) = self.llc.insert_writeback(line) {
            to_dram.push(DramBound {
                line: victim,
                is_write: true,
            });
        }
    }

    /// Diagnostic: which components are non-idle.
    pub fn debug_state(&self) -> String {
        let mut out = Vec::new();
        for (i, c) in self.l1.iter().enumerate() {
            if !c.is_idle() {
                out.push(format!("l1[{i}]: {}", c.debug_state()));
            }
        }
        for (i, c) in self.l2.iter().enumerate() {
            if !c.is_idle() {
                out.push(format!("l2[{i}]: {}", c.debug_state()));
            }
        }
        if !self.llc.is_idle() {
            out.push(format!("llc: {}", self.llc.debug_state()));
        }
        if !self.links.is_empty() {
            out.push(format!("links: {}", self.links.len()));
        }
        out.join("; ")
    }

    /// Aggregated statistics across all levels.
    pub fn stats(&self) -> HierarchyStats {
        let mut s = HierarchyStats::default();
        for c in &self.l1 {
            s.l1.merge(c.stats());
        }
        for c in &self.l2 {
            s.l2.merge(c.stats());
        }
        s.llc.merge(self.llc.stats());
        s
    }

    /// Clears statistics at every level (ROI boundary).
    pub fn reset_stats(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.reset_stats();
        }
        self.llc.reset_stats();
    }

    /// Turns on MSHR-occupancy profiling at every level.
    pub fn enable_profile(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.enable_profile();
        }
        self.llc.enable_profile();
    }

    /// Credits an elided quiescent span of `n` cycles to every level's
    /// occupancy profile (every cache is frozen across the span).
    pub fn credit_idle_span(&mut self, n: u64) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.credit_idle_ticks(n);
        }
        self.llc.credit_idle_ticks(n);
    }

    /// Per-level occupancy profiles with private levels merged across
    /// cores, or `None` if profiling was never enabled.
    pub fn profile(&self) -> Option<HierarchyProfile> {
        let mut out = HierarchyProfile::default();
        for c in &self.l1 {
            out.l1.merge(c.profile()?);
        }
        for c in &self.l2 {
            out.l2.merge(c.profile()?);
        }
        out.llc.merge(self.llc.profile()?);
        Some(out)
    }

    /// Attaches event tracing: every cache level's MSHR file gets its own
    /// track recording miss allocation → fill spans.
    pub fn attach_trace(&mut self, root: &TraceHandle) {
        for (c, cache) in self.l1.iter_mut().enumerate() {
            cache.set_trace(root.track(format!("L1.{c} MSHR")));
        }
        for (c, cache) in self.l2.iter_mut().enumerate() {
            cache.set_trace(root.track(format!("L2.{c} MSHR")));
        }
        self.llc.set_trace(root.track("LLC MSHR"));
    }
}

fn route_from_l1(core: CoreId, acc: Access, responses: &mut VecDeque<CoreResponse>) {
    match acc.requester {
        Requester::Core(c) => {
            debug_assert_eq!(c, core);
            responses.push_back(CoreResponse {
                core,
                id: acc.id,
                is_write: acc.is_write,
            });
        }
        Requester::PrefetchL1(_) => {} // prefetch hit at own level: drop
        _ => unreachable!("only core demands and L1 prefetches complete at L1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn small_config() -> HierarchyConfig {
        let mut cfg = HierarchyConfig::paper_baseline(2);
        // Shrink for tests; keep latencies.
        cfg.l1.size_bytes = 4 * 1024;
        cfg.l2.size_bytes = 16 * 1024;
        cfg.llc.size_bytes = 64 * 1024;
        cfg.llc.ways = 16;
        cfg
    }

    /// Runs the hierarchy, auto-filling DRAM reads after `dram_latency`.
    fn run(
        mem: &mut MemoryHierarchy,
        cycles: Cycle,
        dram_latency: Cycle,
    ) -> (Vec<CoreResponse>, usize) {
        let mut to_dram = Vec::new();
        let mut fills: DelayQueue<LineAddr> = DelayQueue::new();
        let mut responses = Vec::new();
        let mut dram_requests = 0;
        for now in 0..cycles {
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                dram_requests += 1;
                if !d.is_write {
                    fills.push_at(now + dram_latency, d.line);
                }
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            while let Some(r) = mem.pop_core_response() {
                responses.push(r);
            }
        }
        (responses, dram_requests)
    }

    #[test]
    fn cold_miss_fetches_from_dram_and_completes() {
        let mut mem = MemoryHierarchy::new(small_config());
        mem.core_access(Access::load(7, LineAddr(100), 0, Requester::Core(0)), 0);
        let (resps, dram) = run(&mut mem, 400, 50);
        assert_eq!(resps.len(), 1);
        assert_eq!(
            resps[0],
            CoreResponse {
                core: 0,
                id: 7,
                is_write: false
            }
        );
        assert_eq!(dram, 1);
    }

    #[test]
    fn second_access_hits_in_l1() {
        let mut mem = MemoryHierarchy::new(small_config());
        mem.core_access(Access::load(1, LineAddr(100), 0, Requester::Core(0)), 0);
        let _ = run(&mut mem, 400, 50);
        mem.core_access(Access::load(2, LineAddr(100), 0, Requester::Core(0)), 0);
        let (resps, dram) = run(&mut mem, 20, 50);
        assert_eq!(resps.len(), 1);
        assert_eq!(dram, 0, "hit must not touch DRAM");
        assert_eq!(mem.stats().l1.demand_hits, 1);
    }

    #[test]
    fn cross_core_sharing_via_llc() {
        let mut mem = MemoryHierarchy::new(small_config());
        mem.core_access(Access::load(1, LineAddr(100), 0, Requester::Core(0)), 0);
        let _ = run(&mut mem, 400, 50);
        // Core 1 misses its private caches but hits the shared LLC.
        mem.core_access(Access::load(2, LineAddr(100), 0, Requester::Core(1)), 0);
        let (resps, dram) = run(&mut mem, 400, 50);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].core, 1);
        assert_eq!(dram, 0);
    }

    #[test]
    fn dirty_eviction_writes_back_to_dram() {
        let mut cfg = small_config();
        // Tiny direct-mapped-ish caches to force evictions quickly.
        cfg.l1.size_bytes = 1024; // 16 lines, 8-way → 2 sets
        cfg.l2.size_bytes = 2048;
        cfg.l2.ways = 4;
        cfg.llc.size_bytes = 4096;
        cfg.llc.ways = 4;
        let mut mem = MemoryHierarchy::new(cfg);
        // Store to many distinct lines mapping over each other.
        for i in 0..256u64 {
            mem.core_access(
                Access::store(i, LineAddr(i * 2), 0, Requester::Core(0)),
                (i * 4) as Cycle,
            );
        }
        let mut to_dram = Vec::new();
        let mut fills: DelayQueue<LineAddr> = DelayQueue::new();
        let mut wrote_back = false;
        for now in 0..20_000 {
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                if d.is_write {
                    wrote_back = true;
                } else {
                    fills.push_at(now + 30, d.line);
                }
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            while mem.pop_core_response().is_some() {}
        }
        assert!(wrote_back, "dirty victims must reach DRAM");
    }

    #[test]
    fn dx100_llc_port_round_trip() {
        let mut mem = MemoryHierarchy::new(small_config());
        mem.llc_access(Access::load(55, LineAddr(300), 0, Requester::Dx100), 0);
        let mut to_dram = Vec::new();
        let mut fills: DelayQueue<LineAddr> = DelayQueue::new();
        let mut got = None;
        for now in 0..1000 {
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                assert!(!d.is_write);
                fills.push_at(now + 40, d.line);
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            if let Some(r) = mem.pop_dx100_response() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some((55, false)));
        // And the line now resides in the LLC only.
        assert!(mem.contains(LineAddr(300)));
        assert_eq!(mem.stats().l1.demand_accesses(), 0);
    }

    #[test]
    fn snoop_and_invalidate() {
        let mut mem = MemoryHierarchy::new(small_config());
        mem.core_access(Access::store(1, LineAddr(42), 0, Requester::Core(0)), 0);
        let _ = run(&mut mem, 500, 50);
        assert!(mem.contains(LineAddr(42)));
        let dirty = mem.invalidate(LineAddr(42));
        assert!(dirty, "stored line must be dirty somewhere");
        assert!(!mem.contains(LineAddr(42)));
    }

    #[test]
    fn streaming_loads_trigger_useful_prefetches() {
        let mut mem = MemoryHierarchy::new(small_config());
        let mut to_dram = Vec::new();
        let mut fills: DelayQueue<LineAddr> = DelayQueue::new();
        let mut completed = 0u64;
        let mut issued = 0u64;
        let total = 200u64;
        for now in 0..60_000u64 {
            // Issue a unit-stride load every 100 cycles — slow enough that
            // prefetches (4 strides ahead) land before the demand arrives.
            if now % 100 == 0 && issued < total {
                mem.core_access(
                    Access::load(issued, LineAddr(issued), 9, Requester::Core(0)),
                    now,
                );
                issued += 1;
            }
            mem.tick(now, &mut to_dram);
            for d in to_dram.drain(..) {
                if !d.is_write {
                    fills.push_at(now + 60, d.line);
                }
            }
            while let Some(line) = fills.pop_ready(now) {
                mem.dram_fill(line, now, &mut to_dram);
            }
            while mem.pop_core_response().is_some() {
                completed += 1;
            }
        }
        assert_eq!(completed, total);
        let s = mem.stats();
        assert!(s.l1.prefetch_issued + s.l2.prefetch_issued > 0);
        assert!(
            s.l1.prefetch_useful + s.l2.prefetch_useful > 0,
            "stream prefetches must be consumed"
        );
        // Most of the stream should hit thanks to prefetching.
        assert!(
            s.l1.hit_rate() > 0.5,
            "prefetched stream expected to mostly hit L1, got {}",
            s.l1.hit_rate()
        );
    }
}
