//! Cache statistics: hit rates, MPKI inputs, prefetch effectiveness.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed (first lookup only; MSHR retries are not
    /// double-counted).
    pub demand_misses: u64,
    /// Demand misses merged into an existing MSHR entry.
    pub mshr_coalesced: u64,
    /// Lookups deferred because every MSHR was busy.
    pub mshr_full_stalls: u64,
    /// Prefetch requests sent downstream from this level.
    pub prefetch_issued: u64,
    /// Prefetched lines later referenced by a demand access.
    pub prefetch_useful: u64,
    /// Write-backs received from the level above.
    pub writebacks_received: u64,
    /// Accesses from DX100's Cache Interface (kept out of the demand
    /// counters so MPKI reflects what the *cores* see).
    pub dx100_accesses: u64,
    /// DX100 accesses that hit.
    pub dx100_hits: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses
    }

    /// Demand hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_hits as f64 / total as f64
        }
    }

    /// Misses per kilo-instruction given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Folds another level/core's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.demand_hits += other.demand_hits;
        self.demand_misses += other.demand_misses;
        self.mshr_coalesced += other.mshr_coalesced;
        self.mshr_full_stalls += other.mshr_full_stalls;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_useful += other.prefetch_useful;
        self.writebacks_received += other.writebacks_received;
        self.dx100_accesses += other.dx100_accesses;
        self.dx100_hits += other.dx100_hits;
    }
}

/// Aggregated statistics for the whole hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// All L1D caches combined.
    pub l1: CacheStats,
    /// All L2 caches combined.
    pub l2: CacheStats,
    /// The shared LLC.
    pub llc: CacheStats,
}

impl HierarchyStats {
    /// Total demand misses that left the hierarchy toward DRAM.
    pub fn dram_bound_misses(&self) -> u64 {
        self.llc.demand_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_mpki() {
        let s = CacheStats {
            demand_hits: 90,
            demand_misses: 10,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.mpki(10_000) - 1.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = CacheStats {
            demand_hits: 1,
            prefetch_issued: 2,
            ..Default::default()
        };
        let b = CacheStats {
            demand_hits: 3,
            demand_misses: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.demand_hits, 4);
        assert_eq!(a.demand_misses, 4);
        assert_eq!(a.prefetch_issued, 2);
    }
}
