//! One cache level: tag array + MSHR file + optional stride prefetcher,
//! with a latency-modeled lookup pipeline.

use std::collections::{HashMap, VecDeque};

use dx100_common::{Cycle, DelayQueue, LineAddr, TraceHandle};

use crate::array::{CacheArray, Victim};
use crate::config::CacheConfig;
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::StridePrefetcher;
use crate::profile::CacheProfile;
use crate::stats::CacheStats;
use crate::{Access, Requester};

/// Results of one cache tick.
#[derive(Clone, Debug, Default)]
pub struct CacheOutputs {
    /// Accesses that completed at this level (hits). The hierarchy routes
    /// them one level up toward their requester.
    pub completed: Vec<Access>,
    /// Newly allocated misses to forward to the next level down.
    pub downstream: Vec<Access>,
}

/// Result of filling a line into this level.
#[derive(Debug, Default)]
pub struct FillResult {
    /// Waiters released from the MSHR entry for the filled line.
    pub waiters: Vec<Access>,
    /// Dirty victim displaced by the fill, if any.
    pub dirty_victim: Option<LineAddr>,
}

/// A single cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    array: CacheArray,
    mshr: MshrFile,
    input: DelayQueue<Access>,
    retry: VecDeque<Access>,
    prefetcher: Option<StridePrefetcher>,
    /// Requester stamped onto prefetches issued by this level.
    prefetch_requester: Requester,
    /// Lookup ports: max accesses processed per cycle.
    ports: usize,
    stats: CacheStats,
    scratch_candidates: Vec<LineAddr>,
    /// Event sink for MSHR lifecycle tracing (`None` = tracing disabled).
    trace: Option<TraceHandle>,
    /// Allocation times of outstanding misses; populated only while tracing.
    miss_since: HashMap<LineAddr, Cycle>,
    /// MSHR/retry occupancy attribution (`None` = profiling disabled).
    /// Lives outside [`CacheStats`] so RunStats stay byte-identical with
    /// profiling on.
    profile: Option<CacheProfile>,
}

impl Cache {
    /// Builds a cache level. `prefetch_requester` identifies prefetches this
    /// level issues so the hierarchy can terminate their fills here.
    pub fn new(config: CacheConfig, ports: usize, prefetch_requester: Requester) -> Self {
        let prefetcher = config.stride_prefetcher.then(StridePrefetcher::new);
        Cache {
            array: CacheArray::new(config.sets(), config.ways),
            mshr: MshrFile::new(config.mshrs),
            input: DelayQueue::new(),
            retry: VecDeque::new(),
            prefetcher,
            prefetch_requester,
            ports,
            stats: CacheStats::default(),
            scratch_candidates: Vec::new(),
            trace: None,
            miss_since: HashMap::new(),
            profile: None,
            config,
        }
    }

    /// Turns on MSHR-occupancy profiling for this level.
    pub fn enable_profile(&mut self) {
        self.profile = Some(CacheProfile::default());
    }

    /// The occupancy profile, when profiling is enabled.
    pub fn profile(&self) -> Option<&CacheProfile> {
        self.profile.as_ref()
    }

    /// Credits `n` elided quiescent ticks: records `n` samples of the
    /// frozen MSHR/retry occupancy, bit-identical to `n` no-op ticks.
    pub fn credit_idle_ticks(&mut self, n: u64) {
        let mshr = self.mshr.in_use() as u64;
        let retry = self.retry.len() as u64;
        if let Some(p) = &mut self.profile {
            p.sample(mshr, retry, n);
        }
    }

    /// Attaches an event sink; each miss line's allocation → fill lifetime
    /// is recorded as one `mshr` span from then on.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        self.trace = Some(handle);
    }

    /// Enqueues an access; its lookup completes after the hit latency.
    pub fn accept(&mut self, access: Access, now: Cycle) {
        self.input.push_at(now + self.config.latency, access);
    }

    /// Whether this level holds `line` (snoop; does not disturb LRU).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.array.contains(line)
    }

    /// Invalidates `line`; returns `Some(dirty)` if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        self.array.invalidate(line)
    }

    /// Whether the level has no queued work or outstanding misses.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty() && self.retry.is_empty() && self.mshr.is_empty()
    }

    /// Diagnostic: queue/MSHR occupancy.
    pub fn debug_state(&self) -> String {
        format!(
            "input={} retry={} mshr={}",
            self.input.len(),
            self.retry.len(),
            self.mshr.in_use()
        )
    }

    /// This level's statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Clears statistics (ROI boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
        if self.profile.is_some() {
            self.profile = Some(CacheProfile::default());
        }
    }

    /// Earliest cycle ≥ `from` at which [`Cache::tick`] would process an
    /// access: immediately while a retry is queued, else when the oldest
    /// in-flight input matures. `None` means the tick is a no-op until new
    /// work is [`Cache::accept`]ed or a fill arrives.
    pub fn next_event(&self, from: Cycle) -> Option<Cycle> {
        if !self.retry.is_empty() {
            return Some(from);
        }
        self.input.next_ready_at()
    }

    /// Processes up to `ports` ready accesses (retries first), producing
    /// hits and newly allocated misses.
    pub fn tick(&mut self, now: Cycle, out: &mut CacheOutputs) {
        // Sample occupancy from the pre-tick state so a credited span (which
        // sees the same frozen state) is bit-identical to per-cycle ticks.
        if self.profile.is_some() {
            self.credit_idle_ticks(1);
        }
        for _ in 0..self.ports {
            let access = if let Some(a) = self.retry.pop_front() {
                a
            } else if let Some(a) = self.input.pop_ready(now) {
                a
            } else {
                break;
            };
            self.lookup(access, now, out);
        }
    }

    fn lookup(&mut self, access: Access, now: Cycle, out: &mut CacheOutputs) {
        // Train the prefetcher on demand accesses.
        if !access.is_prefetch {
            if let Some(pf) = self.prefetcher.as_mut() {
                self.scratch_candidates.clear();
                pf.observe(access.stream, access.line, &mut self.scratch_candidates);
                let candidates = std::mem::take(&mut self.scratch_candidates);
                for line in &candidates {
                    self.issue_prefetch(*line, access.stream, now, out);
                }
                self.scratch_candidates = candidates;
            }
        }

        let from_dx100 = access.requester == Requester::Dx100;
        if from_dx100 {
            self.stats.dx100_accesses += 1;
        }
        match self.array.access(access.line, access.is_write) {
            Some(hit) => {
                if from_dx100 {
                    self.stats.dx100_hits += 1;
                } else if !access.is_prefetch {
                    self.stats.demand_hits += 1;
                    if hit.first_use_of_prefetch {
                        self.stats.prefetch_useful += 1;
                    }
                }
                // Prefetch hits complete too: a prefetch forwarded from an
                // upper level holds an MSHR entry there that must be filled,
                // so the hit climbs back toward its requester. (A prefetch
                // hitting the level that issued it is dropped by the
                // hierarchy's routing.)
                out.completed.push(access);
            }
            None => {
                if access.is_prefetch {
                    // A prefetch reaching this level's lookup was forwarded
                    // from an upper level (or injected by DMP) and holds an
                    // MSHR entry there — it must complete eventually, so it
                    // coalesces and retries exactly like a demand miss.
                    match self.mshr.register(access) {
                        MshrOutcome::Allocated => {
                            self.stats.prefetch_issued += 1;
                            self.note_miss_allocated(access.line, now);
                            out.downstream.push(access);
                        }
                        MshrOutcome::Coalesced => {}
                        MshrOutcome::Full => self.retry.push_back(access),
                    }
                    return;
                }
                if !from_dx100 {
                    self.stats.demand_misses += 1;
                }
                match self.mshr.register(access) {
                    MshrOutcome::Allocated => {
                        self.note_miss_allocated(access.line, now);
                        out.downstream.push(access);
                    }
                    MshrOutcome::Coalesced => {
                        self.stats.mshr_coalesced += 1;
                    }
                    MshrOutcome::Full => {
                        self.stats.mshr_full_stalls += 1;
                        // Undo the miss count: the access will be looked up
                        // again next cycle.
                        if !from_dx100 {
                            self.stats.demand_misses -= 1;
                        }
                        self.retry.push_back(access);
                    }
                }
            }
        }
    }

    fn issue_prefetch(&mut self, line: LineAddr, stream: u32, now: Cycle, out: &mut CacheOutputs) {
        if self.array.contains(line) || self.mshr.is_pending(line) {
            return;
        }
        let access = Access {
            id: u64::MAX,
            line,
            is_write: false,
            stream,
            is_prefetch: true,
            requester: self.prefetch_requester,
        };
        if let MshrOutcome::Allocated = self.mshr.register(access) {
            self.stats.prefetch_issued += 1;
            self.note_miss_allocated(line, now);
            out.downstream.push(access);
        }
    }

    /// Remembers a miss's allocation time (tracing only).
    fn note_miss_allocated(&mut self, line: LineAddr, now: Cycle) {
        if self.trace.is_some() {
            self.miss_since.insert(line, now);
        }
    }

    /// Fills `line` into the array, releasing MSHR waiters. Demand-store
    /// waiters mark the line dirty immediately (write-allocate replay).
    pub fn fill(&mut self, line: LineAddr, now: Cycle) -> FillResult {
        if let Some(t) = &self.trace {
            if let Some(start) = self.miss_since.remove(&line) {
                t.span("mshr", format!("miss 0x{:x}", line.0), start, now);
            }
        }
        let waiters = self.mshr.complete(line);
        let all_prefetch = !waiters.is_empty() && waiters.iter().all(|w| w.is_prefetch);
        let victim = self.array.insert(line, false, all_prefetch);
        for w in &waiters {
            if w.is_write && !w.is_prefetch {
                self.array.access(line, true);
            }
        }
        FillResult {
            waiters,
            dirty_victim: victim.and_then(|v: Victim| v.dirty.then_some(v.line)),
        }
    }

    /// Inserts a write-back from the level above (dirty line landing here).
    /// Returns a dirty victim to push further down, if one was displaced.
    pub fn insert_writeback(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.stats.writebacks_received += 1;
        // A write-back that hits just marks the line dirty.
        if self.array.access(line, true).is_some() {
            return None;
        }
        self.array
            .insert(line, true, false)
            .and_then(|v| v.dirty.then_some(v.line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        let config = CacheConfig {
            size_bytes: 4 * 1024,
            ways: 4,
            latency: 3,
            mshrs: 2,
            stride_prefetcher: false,
        };
        Cache::new(config, 2, Requester::PrefetchL1(0))
    }

    fn drive(cache: &mut Cache, until: Cycle) -> CacheOutputs {
        let mut out = CacheOutputs::default();
        for now in 0..until {
            cache.tick(now, &mut out);
        }
        out
    }

    #[test]
    fn miss_goes_downstream_after_latency() {
        let mut c = small_cache();
        c.accept(Access::load(1, LineAddr(7), 0, Requester::Core(0)), 0);
        let mut out = CacheOutputs::default();
        c.tick(2, &mut out); // before latency
        assert!(out.downstream.is_empty());
        c.tick(3, &mut out); // at latency
        assert_eq!(out.downstream.len(), 1);
        assert!(out.completed.is_empty());
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn hit_after_fill_completes() {
        let mut c = small_cache();
        c.fill(LineAddr(7), 0);
        c.accept(Access::load(2, LineAddr(7), 0, Requester::Core(0)), 0);
        let out = drive(&mut c, 10);
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].id, 2);
        assert_eq!(c.stats().demand_hits, 1);
    }

    #[test]
    fn same_line_misses_coalesce() {
        let mut c = small_cache();
        c.accept(Access::load(1, LineAddr(7), 0, Requester::Core(0)), 0);
        c.accept(Access::load(2, LineAddr(7), 0, Requester::Core(0)), 0);
        let out = drive(&mut c, 10);
        assert_eq!(out.downstream.len(), 1, "one downstream request per line");
        let fill = c.fill(LineAddr(7), 0);
        assert_eq!(fill.waiters.len(), 2, "both waiters released");
    }

    #[test]
    fn mshr_full_forces_retry() {
        let mut c = small_cache(); // 2 MSHRs
        for (id, line) in [(1u64, 10u64), (2, 20), (3, 30)] {
            c.accept(Access::load(id, LineAddr(line), 0, Requester::Core(0)), 0);
        }
        let out = drive(&mut c, 8);
        assert_eq!(out.downstream.len(), 2, "third miss blocked by MSHRs");
        assert!(c.stats().mshr_full_stalls > 0);
        // Fill one line; the retried access then allocates.
        c.fill(LineAddr(10), 0);
        let out2 = drive(&mut c, 8);
        assert_eq!(out2.downstream.len(), 1);
        assert_eq!(out2.downstream[0].line, LineAddr(30));
    }

    #[test]
    fn store_waiter_dirties_line_on_fill() {
        let mut c = small_cache();
        c.accept(Access::store(1, LineAddr(5), 0, Requester::Core(0)), 0);
        drive(&mut c, 10);
        c.fill(LineAddr(5), 0);
        // Evict it by filling the same set until displacement; the victim
        // must come back dirty. Set index of line 5 with 16 sets: fill the
        // same set with 4 more lines (4 ways).
        let sets = 4 * 1024 / 64 / 4;
        let mut dirty_seen = false;
        for k in 1..=4u64 {
            let r = c.fill(LineAddr(5 + k * sets as u64), 0);
            if r.dirty_victim == Some(LineAddr(5)) {
                dirty_seen = true;
            }
        }
        assert!(dirty_seen, "dirty line must surface as a write-back victim");
    }

    #[test]
    fn prefetcher_issues_downstream_requests() {
        let config = CacheConfig {
            size_bytes: 4 * 1024,
            ways: 4,
            latency: 1,
            mshrs: 8,
            stride_prefetcher: true,
        };
        let mut c = Cache::new(config, 4, Requester::PrefetchL1(0));
        for i in 0..10u64 {
            c.accept(Access::load(i, LineAddr(i), 1, Requester::Core(0)), i);
        }
        let out = drive(&mut c, 32);
        let prefetches: Vec<_> = out.downstream.iter().filter(|a| a.is_prefetch).collect();
        assert!(
            !prefetches.is_empty(),
            "stride stream must trigger prefetches"
        );
        assert!(prefetches
            .iter()
            .all(|a| a.requester == Requester::PrefetchL1(0)));
        assert!(c.stats().prefetch_issued > 0);
    }

    #[test]
    fn ports_bound_throughput() {
        let mut c = small_cache(); // 2 ports
        for i in 0..6u64 {
            c.fill(LineAddr(i), 0);
            c.accept(Access::load(i, LineAddr(i), 0, Requester::Core(0)), 0);
        }
        let mut out = CacheOutputs::default();
        c.tick(3, &mut out);
        assert_eq!(out.completed.len(), 2, "one cycle serves at most `ports`");
    }
}
