//! Miss Status Holding Registers: track outstanding misses, coalesce
//! same-line requests, and bound memory-level parallelism.

use dx100_common::LineAddr;

use crate::Access;

/// Outcome of registering a miss with the MSHR file.
#[derive(Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss must be forwarded downstream.
    Allocated,
    /// Coalesced into an existing entry for the same line; no new
    /// downstream request is needed.
    Coalesced,
    /// All MSHRs are busy; the access must retry later. This is the
    /// structural MLP limit the paper highlights.
    Full,
}

/// A file of MSHRs for one cache level.
///
/// Backed by a small vector sorted by [`LineAddr`], not a hash map: a file
/// holds at most a few dozen registers (Table 3 sizes), so binary search
/// over one contiguous allocation beats hashing every probe on the miss
/// path — no per-lookup hash, no rehash growth, and the order of any
/// future iteration is fixed by construction rather than by hasher state.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    /// `(line, waiters)` pairs, sorted by line; at most `capacity` long.
    entries: Vec<(LineAddr, Vec<Access>)>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn position(&self, line: LineAddr) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&line, |(l, _)| *l)
    }

    /// Registers a missing `access`. See [`MshrOutcome`].
    pub fn register(&mut self, access: Access) -> MshrOutcome {
        match self.position(access.line) {
            Ok(i) => {
                self.entries[i].1.push(access);
                MshrOutcome::Coalesced
            }
            Err(_) if self.entries.len() >= self.capacity => MshrOutcome::Full,
            Err(i) => {
                self.entries.insert(i, (access.line, vec![access]));
                MshrOutcome::Allocated
            }
        }
    }

    /// Releases the entry for `line`, returning every coalesced waiter.
    /// Returns an empty vec if no entry existed (e.g. an unsolicited fill).
    pub fn complete(&mut self, line: LineAddr) -> Vec<Access> {
        match self.position(line) {
            Ok(i) => self.entries.remove(i).1,
            Err(_) => Vec::new(),
        }
    }

    /// Whether a miss for `line` is already outstanding.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.position(line).is_ok()
    }

    /// Number of allocated registers.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// Whether no registers are allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total register count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Requester;

    fn acc(id: u64, line: u64) -> Access {
        Access::load(id, LineAddr(line), 0, Requester::Core(0))
    }

    #[test]
    fn allocate_then_coalesce() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(acc(1, 10)), MshrOutcome::Allocated);
        assert_eq!(m.register(acc(2, 10)), MshrOutcome::Coalesced);
        assert_eq!(m.in_use(), 1);
        let waiters = m.complete(LineAddr(10));
        assert_eq!(waiters.len(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.register(acc(1, 10)), MshrOutcome::Allocated);
        assert_eq!(m.register(acc(2, 20)), MshrOutcome::Full);
        // Same line still coalesces even at capacity.
        assert_eq!(m.register(acc(3, 10)), MshrOutcome::Coalesced);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = MshrFile::new(1);
        assert!(m.complete(LineAddr(99)).is_empty());
    }

    #[test]
    fn pending_query() {
        let mut m = MshrFile::new(4);
        assert!(!m.is_pending(LineAddr(3)));
        m.register(acc(1, 3));
        assert!(m.is_pending(LineAddr(3)));
    }

    #[test]
    fn entries_stay_sorted_across_churn() {
        let mut m = MshrFile::new(8);
        for line in [50u64, 10, 90, 30, 70, 20, 60, 40] {
            assert_eq!(m.register(acc(line, line)), MshrOutcome::Allocated);
        }
        assert_eq!(m.register(acc(99, 99)), MshrOutcome::Full);
        assert_eq!(m.complete(LineAddr(30)).len(), 1);
        assert_eq!(m.register(acc(5, 5)), MshrOutcome::Allocated);
        let lines: Vec<u64> = m.entries.iter().map(|(l, _)| l.0).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert!(m.is_pending(LineAddr(5)));
        assert!(!m.is_pending(LineAddr(30)));
    }
}
