//! Miss Status Holding Registers: track outstanding misses, coalesce
//! same-line requests, and bound memory-level parallelism.

use std::collections::HashMap;

use dx100_common::LineAddr;

use crate::Access;

/// Outcome of registering a miss with the MSHR file.
#[derive(Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss must be forwarded downstream.
    Allocated,
    /// Coalesced into an existing entry for the same line; no new
    /// downstream request is needed.
    Coalesced,
    /// All MSHRs are busy; the access must retry later. This is the
    /// structural MLP limit the paper highlights.
    Full,
}

/// A file of MSHRs for one cache level.
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    entries: HashMap<LineAddr, Vec<Access>>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: HashMap::new(),
        }
    }

    /// Registers a missing `access`. See [`MshrOutcome`].
    pub fn register(&mut self, access: Access) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&access.line) {
            waiters.push(access);
            return MshrOutcome::Coalesced;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(access.line, vec![access]);
        MshrOutcome::Allocated
    }

    /// Releases the entry for `line`, returning every coalesced waiter.
    /// Returns an empty vec if no entry existed (e.g. an unsolicited fill).
    pub fn complete(&mut self, line: LineAddr) -> Vec<Access> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Whether a miss for `line` is already outstanding.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Number of allocated registers.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// Whether no registers are allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total register count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Requester;

    fn acc(id: u64, line: u64) -> Access {
        Access::load(id, LineAddr(line), 0, Requester::Core(0))
    }

    #[test]
    fn allocate_then_coalesce() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(acc(1, 10)), MshrOutcome::Allocated);
        assert_eq!(m.register(acc(2, 10)), MshrOutcome::Coalesced);
        assert_eq!(m.in_use(), 1);
        let waiters = m.complete(LineAddr(10));
        assert_eq!(waiters.len(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.register(acc(1, 10)), MshrOutcome::Allocated);
        assert_eq!(m.register(acc(2, 20)), MshrOutcome::Full);
        // Same line still coalesces even at capacity.
        assert_eq!(m.register(acc(3, 10)), MshrOutcome::Coalesced);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = MshrFile::new(1);
        assert!(m.complete(LineAddr(99)).is_empty());
    }

    #[test]
    fn pending_query() {
        let mut m = MshrFile::new(4);
        assert!(!m.is_pending(LineAddr(3)));
        m.register(acc(1, 3));
        assert!(m.is_pending(LineAddr(3)));
    }
}
