//! Cache-hierarchy simulator: per-core L1D and L2 plus a shared LLC, with
//! MSHRs, stride prefetchers, write-back/write-allocate policy, and the
//! snoop/invalidate hooks DX100's coherency agent uses.
//!
//! This crate is the reproduction's substitute for gem5's classic cache
//! model. The structural parameters are the paper's Table 3; the behaviours
//! that matter for the paper's results are all modeled:
//!
//! * **MSHR limits** bound each level's outstanding misses — one of the
//!   memory-level-parallelism ceilings DX100 bypasses.
//! * **MSHR coalescing** merges same-line misses, which deflates the
//!   baseline's DRAM request-buffer occupancy exactly as Section 6.2
//!   describes.
//! * **Stride prefetchers** serve streaming accesses; they are useless for
//!   indirect ones, which is the gap indirect prefetchers (and DX100) target.
//! * **Cache pollution**: indirect lines with poor utilization evict useful
//!   lines; MPKI is measured per level (Figure 11b).
//!
//! # Example
//!
//! ```
//! use dx100_common::LineAddr;
//! use dx100_mem::{Access, HierarchyConfig, MemoryHierarchy, Requester};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::paper_baseline(1));
//! mem.core_access(Access::load(1, LineAddr(0x100), 0, Requester::Core(0)), 0);
//! // Drive ticks; the first access misses everywhere and exits toward DRAM.
//! let mut to_dram = Vec::new();
//! for now in 0..200 {
//!     mem.tick(now, &mut to_dram);
//! }
//! assert_eq!(to_dram.len(), 1);
//! ```

pub mod array;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod profile;
pub mod stats;

pub use cache::{Cache, CacheOutputs};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{CoreResponse, DramBound, MemoryHierarchy};
pub use profile::{CacheProfile, HierarchyProfile};
pub use stats::{CacheStats, HierarchyStats};

use dx100_common::{CoreId, LineAddr, ReqId};

/// Who issued an access — determines where its response is routed and at
/// which level a fill terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requester {
    /// A CPU core's demand access (entered at that core's L1D).
    Core(CoreId),
    /// DX100's cache interface (entered directly at the LLC).
    Dx100,
    /// The stride prefetcher of core's L1; fills terminate at that L1.
    PrefetchL1(CoreId),
    /// The stride prefetcher of core's L2; fills terminate at that L2.
    PrefetchL2(CoreId),
}

/// One cache access at line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Caller-chosen identifier echoed on completion.
    pub id: ReqId,
    /// Target line.
    pub line: LineAddr,
    /// Store (write-allocate, write-back) vs load.
    pub is_write: bool,
    /// Stream identifier used by stride prefetchers for training; callers
    /// give each logical array/stream a stable id.
    pub stream: u32,
    /// True for prefetches: they fill caches but produce no response.
    pub is_prefetch: bool,
    /// Origin for response routing.
    pub requester: Requester,
}

impl Access {
    /// A demand load.
    pub fn load(id: ReqId, line: LineAddr, stream: u32, requester: Requester) -> Self {
        Access {
            id,
            line,
            is_write: false,
            stream,
            is_prefetch: false,
            requester,
        }
    }

    /// A demand store.
    pub fn store(id: ReqId, line: LineAddr, stream: u32, requester: Requester) -> Self {
        Access {
            id,
            line,
            is_write: true,
            stream,
            is_prefetch: false,
            requester,
        }
    }
}
