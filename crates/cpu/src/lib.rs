//! Multi-core CPU timing model with the structural limits of Table 3.
//!
//! The reproduction does not execute x86 instructions; it executes *abstract
//! micro-op streams* ([`CoreOp`]) that each workload generates for its
//! baseline loop body (loads, stores, address-calculation ALU ops, atomic
//! RMWs, MMIO stores to DX100, and synchronization waits). What the model
//! enforces — and what the paper's analysis hinges on — are the structural
//! resources that cap memory-level parallelism:
//!
//! * **ROB** (224 entries): in-order dispatch/retire, out-of-order issue.
//! * **LQ/SQ** (72/56): bound outstanding loads and stores.
//! * **Issue width** (8 µops/cycle) and a memory-issue port limit.
//! * **Dependency chains**: an indirect load cannot issue before its index
//!   load completes — the serialization DX100 breaks by hoisting.
//! * **Atomics**: fence semantics drain the pipeline and lock the line,
//!   reproducing the ~4.8× atomic-vs-plain RMW gap of Section 6.1.
//!
//! # Example
//!
//! ```
//! use dx100_common::flags::FlagBoard;
//! use dx100_cpu::{Core, CoreConfig, CoreOp, VecStream};
//!
//! // A two-op dependency chain: the second load's address depends on the
//! // first load's data (A[B[i]]).
//! let ops = vec![
//!     CoreOp::load(0x1000, 0),
//!     CoreOp::load(0x8000, 1).with_dep(1),
//! ];
//! let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
//! let mut flags = FlagBoard::new();
//! let mut issued = Vec::new();
//! core.tick(0, &mut flags, &mut |iss| issued.push(iss));
//! // Only the independent first load issued; the dependent one waits.
//! assert_eq!(issued.len(), 1);
//! ```

pub mod channel;
pub mod config;
pub mod core;
pub mod op;
pub mod profile;
pub mod stats;

pub use crate::core::{Core, CoreState, MemIssue, MemKind, StreamState};
pub use channel::{ChannelQueue, SegmentState};
pub use config::CoreConfig;
pub use op::{CoreOp, EmptyStream, OpStream, OpStreamKind, VecStream};
pub use profile::CoreProfile;
pub use stats::CoreStats;
