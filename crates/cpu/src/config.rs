//! Core configuration (paper Table 3).

/// Structural parameters of one out-of-order core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Dispatch/retire width in µops per cycle.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
    /// Memory operations issued to L1 per cycle (2 loads + 1 store ports).
    pub mem_issue_width: usize,
    /// ALU op latency in cycles.
    pub alu_latency: u64,
    /// Extra latency of an atomic RMW beyond its memory access (cacheline
    /// locking / fence overhead).
    pub atomic_lock_latency: u64,
    /// Cycles between polls while blocked on a wait flag; each poll costs
    /// `spin_instructions_per_poll` instructions when spinning is modeled.
    pub poll_interval: u64,
    /// Instructions charged per poll iteration of a spin-wait loop.
    pub spin_instructions_per_poll: u64,
}

impl CoreConfig {
    /// Table 3: 8-wide, ROB 224, LQ 72, SQ 56, 3.2 GHz.
    pub fn paper() -> Self {
        CoreConfig {
            width: 8,
            rob: 224,
            lq: 72,
            sq: 56,
            mem_issue_width: 3,
            alu_latency: 1,
            atomic_lock_latency: 4,
            poll_interval: 16,
            spin_instructions_per_poll: 2,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table3() {
        let c = CoreConfig::paper();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob, 224);
        assert_eq!(c.lq, 72);
        assert_eq!(c.sq, 56);
    }
}
