//! Per-core cycle attribution: a mutually-exclusive, collectively-
//! exhaustive breakdown of every cycle the core was live.
//!
//! The buckets are derived from the same idle classification the
//! cycle-skip layer uses for quiescence ([`Core::next_event`]), so the
//! profile is bit-identical with skipping on or off by construction:
//! cycle-by-cycle ticks classify each cycle individually, and elided
//! spans credit `n` cycles of the one class that held across the span.
//!
//! The sum of all buckets equals [`CoreStats::cycles`] exactly — the sim
//! layer's profile collection debug_asserts this invariant, and any cycles
//! after the core drains (`is_done`) are attributed to a `drained` bucket
//! there, completing the breakdown over the whole measured region.
//!
//! [`Core::next_event`]: crate::Core::next_event
//! [`CoreStats::cycles`]: crate::CoreStats::cycles

/// Number of attribution buckets in a [`CoreProfile`].
pub const CORE_BUCKETS: usize = 8;

/// MECE per-core cycle breakdown. Each live cycle lands in exactly one
/// bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreProfile {
    /// The tick changed architectural state: completed, retired,
    /// dispatched, or issued at least one µop.
    pub active: u64,
    /// Spin-polling an unset flag (DX100 completion wait).
    pub wait_spin: u64,
    /// Blocked on an unset flag without polling.
    pub wait_flag: u64,
    /// Serialized behind a fence: a `SetFlag` draining the ROB, or an
    /// atomic holding the memory stream.
    pub fence: u64,
    /// Dispatch blocked: ROB full (typically a memory-latency shadow).
    pub rob_full: u64,
    /// Dispatch blocked: load queue full.
    pub lq_full: u64,
    /// Dispatch blocked: store queue full.
    pub sq_full: u64,
    /// Nothing to dispatch or issue: op stream/channel empty.
    pub empty: u64,
}

impl CoreProfile {
    /// Total cycles attributed so far (must equal `CoreStats::cycles`).
    pub fn attributed(&self) -> u64 {
        self.active
            + self.wait_spin
            + self.wait_flag
            + self.fence
            + self.rob_full
            + self.lq_full
            + self.sq_full
            + self.empty
    }

    /// Folds another core's breakdown in (bucket-wise sum).
    pub fn merge(&mut self, other: &CoreProfile) {
        self.active += other.active;
        self.wait_spin += other.wait_spin;
        self.wait_flag += other.wait_flag;
        self.fence += other.fence;
        self.rob_full += other.rob_full;
        self.lq_full += other.lq_full;
        self.sq_full += other.sq_full;
        self.empty += other.empty;
    }

    /// The buckets as `(name, cycles)` pairs, in a stable report order.
    pub fn buckets(&self) -> [(&'static str, u64); CORE_BUCKETS] {
        [
            ("active", self.active),
            ("wait_spin", self.wait_spin),
            ("wait_flag", self.wait_flag),
            ("fence", self.fence),
            ("rob_full", self.rob_full),
            ("lq_full", self.lq_full),
            ("sq_full", self.sq_full),
            ("empty", self.empty),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributed_sums_all_buckets() {
        let p = CoreProfile {
            active: 1,
            wait_spin: 2,
            wait_flag: 3,
            fence: 4,
            rob_full: 5,
            lq_full: 6,
            sq_full: 7,
            empty: 8,
        };
        assert_eq!(p.attributed(), 36);
        assert_eq!(p.buckets().iter().map(|(_, v)| v).sum::<u64>(), 36);
        let mut q = p;
        q.merge(&p);
        assert_eq!(q.attributed(), 72);
    }
}
