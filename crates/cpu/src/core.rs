//! The out-of-order core engine: in-order dispatch and retire, out-of-order
//! issue, bounded by ROB/LQ/SQ and the issue widths of Table 3.

use std::collections::{HashMap, VecDeque};

use dx100_common::flags::{FlagBoard, FlagId};
use dx100_common::{Addr, CoreId, Cycle, DelayQueue, SpanTracker, TraceHandle};

use crate::channel::{ChannelQueue, SegmentState};
use crate::config::CoreConfig;
use crate::op::{CoreOp, OpStreamKind, VecStream};
use crate::profile::CoreProfile;
use crate::stats::CoreStats;

/// Kind of a memory operation handed to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Demand load.
    Load,
    /// Demand store (write-allocate).
    Store,
    /// Atomic RMW: issued as a store-intent access; the core adds the lock
    /// latency internally on completion.
    Atomic,
}

/// A memory operation the core wants to issue into its L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemIssue {
    /// ROB sequence number; echo it back via [`Core::mem_complete`].
    pub seq: u64,
    /// Byte address.
    pub addr: Addr,
    /// Stream id for prefetcher training.
    pub stream: u32,
    /// Operation kind.
    pub kind: MemKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Load,
    Store,
    Atomic { locked: bool },
    Alu,
    Mmio { signal: Option<u32> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Waiting on `n` outstanding dependencies.
    Waiting(u8),
    /// Dependencies satisfied; queued for its functional unit.
    Ready,
    /// In flight in the memory system.
    Issued,
    /// Done; eligible to retire once it reaches the ROB head.
    Complete,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    kind: EntryKind,
    state: EntryState,
    addr: Addr,
    stream: u32,
}

/// One out-of-order core executing a [`CoreOp`] stream.
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    stream: OpStreamKind,
    stream_done: bool,
    peeked: Option<CoreOp>,
    rob: VecDeque<Entry>,
    head_seq: u64,
    next_seq: u64,
    lq_used: usize,
    sq_used: usize,
    waiters: HashMap<u64, Vec<u64>>,
    ready_mem: VecDeque<u64>,
    internal_done: DelayQueue<u64>,
    waiting_flag: Option<WaitState>,
    atomic_pending: bool,
    mem_inflight: usize,
    mmio_signals: Vec<u32>,
    stats: CoreStats,
    /// Cycle-attribution breakdown (`None` = profiling disabled).
    profile: Option<CoreProfile>,
    /// Event sink for stall tracing (`None` = tracing disabled).
    trace: Option<TraceHandle>,
    /// One tracker per stall reason in [`STALL_NAMES`] order.
    stall_spans: [SpanTracker; 4],
    /// Stall counter values at the previous tick, for edge detection.
    prev_stalls: [u64; 4],
}

/// Stall reasons traced per core, in `stall_spans` order.
const STALL_NAMES: [&str; 4] = ["rob_full", "lq_full", "sq_full", "fence"];

/// What the dispatch stage of a quiescent core does each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchIdle {
    /// Blocked on an unset flag; spin-polling if `spin`.
    Wait {
        spin: bool,
    },
    /// A `SetFlag` fence at the head waiting for the ROB to drain.
    Fence,
    RobFull,
    LqFull,
    SqFull,
    /// Nothing to dispatch (stream exhausted or channel empty).
    Empty,
}

/// What the issue stage of a quiescent core does each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueIdle {
    /// Serialized behind an atomic (in flight, or at the head of the ready
    /// queue with other memory ops outstanding).
    Fence,
    /// Nothing issuable.
    Empty,
}

/// Per-cycle effect of a quiescent (stall-only) core tick: which stat
/// counters advance, with no architectural state change. Constant over a
/// whole idle span, which is what lets the span be credited in bulk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IdleClass {
    dispatch: DispatchIdle,
    issue: IssueIdle,
}

#[derive(Debug, Clone, Copy)]
struct WaitState {
    flag: FlagId,
    spin: bool,
    next_poll_at: Cycle,
}

/// Saved form of a core's op stream, mirroring [`OpStreamKind`] variant
/// for variant. Channel segments capture queued generators via
/// [`crate::OpStream::try_clone`], including any ops already batched out
/// of a live generator.
pub enum StreamState {
    /// No op source.
    Empty,
    /// A pre-built vector stream at its current position.
    Vec(VecStream),
    /// A channel's queued segments.
    Channel(Vec<SegmentState>),
}

impl std::fmt::Debug for StreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamState::Empty => f.write_str("Empty"),
            StreamState::Vec(_) => f.write_str("Vec"),
            StreamState::Channel(segs) => write!(f, "Channel({} segments)", segs.len()),
        }
    }
}

/// A [`Core`]'s saved execution state (see [`Checkpoint`]).
///
/// Mirrors every field of [`Core`] except the configuration (the restore
/// target must be built with an equivalent one) and the trace sink (the
/// restore target keeps its own). The op stream — channel contents
/// included, now that cores own their channels — is captured as a
/// [`StreamState`].
pub struct CoreState {
    stream: StreamState,
    stream_done: bool,
    peeked: Option<CoreOp>,
    rob: VecDeque<Entry>,
    head_seq: u64,
    next_seq: u64,
    lq_used: usize,
    sq_used: usize,
    waiters: HashMap<u64, Vec<u64>>,
    ready_mem: VecDeque<u64>,
    internal_done: DelayQueue<u64>,
    waiting_flag: Option<WaitState>,
    atomic_pending: bool,
    mem_inflight: usize,
    mmio_signals: Vec<u32>,
    stats: CoreStats,
    profile: Option<CoreProfile>,
    stall_spans: [SpanTracker; 4],
    prev_stalls: [u64; 4],
}

impl std::fmt::Debug for CoreState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreState")
            .field("rob_occupancy", &self.rob.len())
            .field("head_seq", &self.head_seq)
            .field("stream_done", &self.stream_done)
            .field("stream", &self.stream)
            .finish()
    }
}

impl dx100_common::Checkpoint for Core {
    type State = CoreState;

    /// Fails with [`CheckpointError::UnclonableStream`] when a generator
    /// queued in the core's channel does not support cloning.
    fn save(&self) -> Result<CoreState, dx100_common::CheckpointError> {
        self.save_state()
    }

    fn restore(&mut self, state: &CoreState) {
        self.restore_state(state);
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("rob_occupancy", &self.rob.len())
            .field("head_seq", &self.head_seq)
            .field("stream_done", &self.stream_done)
            .finish()
    }
}

impl Core {
    /// Creates a core that will execute `stream` (a [`VecStream`], a
    /// `Vec<CoreOp>`, a [`ChannelQueue`], or [`OpStreamKind`] directly).
    pub fn new(id: CoreId, cfg: CoreConfig, stream: impl Into<OpStreamKind>) -> Self {
        let stream = stream.into();
        Core {
            id,
            cfg,
            stream,
            stream_done: false,
            peeked: None,
            rob: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            lq_used: 0,
            sq_used: 0,
            waiters: HashMap::new(),
            ready_mem: VecDeque::new(),
            internal_done: DelayQueue::new(),
            waiting_flag: None,
            atomic_pending: false,
            mem_inflight: 0,
            mmio_signals: Vec::new(),
            stats: CoreStats::default(),
            profile: None,
            trace: None,
            stall_spans: [SpanTracker::default(); 4],
            prev_stalls: [0; 4],
        }
    }

    /// Turns on cycle attribution: every live cycle is classified into one
    /// [`CoreProfile`] bucket, in [`Core::tick`] and in skip-span credits
    /// alike.
    pub fn enable_profile(&mut self) {
        self.profile = Some(CoreProfile::default());
    }

    /// The attribution breakdown (`None` when profiling is off).
    pub fn profile(&self) -> Option<&CoreProfile> {
        self.profile.as_ref()
    }

    /// Attaches an event sink; contiguous stretches of each stall reason
    /// (`rob_full`, `lq_full`, `sq_full`, `fence`) become `stall` spans.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        self.trace = Some(handle);
    }

    /// Closes any stall span still open at end of run.
    pub fn finish_trace(&mut self, now: Cycle) {
        if let Some(t) = self.trace.clone() {
            for (i, name) in STALL_NAMES.iter().enumerate() {
                self.stall_spans[i].finish(now, &t, "stall", name);
            }
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Captures this core's execution state, op stream included. Fails with
    /// [`CheckpointError`](dx100_common::CheckpointError) only when a
    /// generator queued in a channel does not support [`try_clone`]
    /// (`OpStream::try_clone`).
    ///
    /// [`try_clone`]: crate::OpStream::try_clone
    pub fn save_state(&self) -> Result<CoreState, dx100_common::CheckpointError> {
        let stream = match &self.stream {
            OpStreamKind::Empty => StreamState::Empty,
            OpStreamKind::Vec(v) => StreamState::Vec(v.clone()),
            OpStreamKind::Channel(c) => StreamState::Channel(c.save_segments()?),
        };
        Ok(CoreState {
            stream,
            stream_done: self.stream_done,
            peeked: self.peeked,
            rob: self.rob.clone(),
            head_seq: self.head_seq,
            next_seq: self.next_seq,
            lq_used: self.lq_used,
            sq_used: self.sq_used,
            waiters: self.waiters.clone(),
            ready_mem: self.ready_mem.clone(),
            internal_done: self.internal_done.clone(),
            waiting_flag: self.waiting_flag,
            atomic_pending: self.atomic_pending,
            mem_inflight: self.mem_inflight,
            mmio_signals: self.mmio_signals.clone(),
            stats: self.stats.clone(),
            profile: self.profile,
            stall_spans: self.stall_spans,
            prev_stalls: self.prev_stalls,
        })
    }

    /// Restores a state saved by [`Core::save_state`]: the saved stream
    /// (channel contents included) replaces the current one.
    pub fn restore_state(&mut self, s: &CoreState) {
        self.stream = match &s.stream {
            StreamState::Empty => OpStreamKind::Empty,
            StreamState::Vec(v) => OpStreamKind::Vec(v.clone()),
            StreamState::Channel(segs) => OpStreamKind::Channel(ChannelQueue::from_saved(segs)),
        };
        self.stream_done = s.stream_done;
        self.peeked = s.peeked;
        self.rob = s.rob.clone();
        self.head_seq = s.head_seq;
        self.next_seq = s.next_seq;
        self.lq_used = s.lq_used;
        self.sq_used = s.sq_used;
        self.waiters = s.waiters.clone();
        self.ready_mem = s.ready_mem.clone();
        self.internal_done = s.internal_done.clone();
        self.waiting_flag = s.waiting_flag;
        self.atomic_pending = s.atomic_pending;
        self.mem_inflight = s.mem_inflight;
        self.mmio_signals = s.mmio_signals.clone();
        self.stats = s.stats.clone();
        self.profile = s.profile;
        self.stall_spans = s.stall_spans;
        self.prev_stalls = s.prev_stalls;
    }

    /// Replaces the op stream (used when a workload phase hands a core a new
    /// program).
    pub fn set_stream(&mut self, stream: impl Into<OpStreamKind>) {
        self.stream = stream.into();
        self.stream_done = false;
        self.peeked = None;
    }

    /// Wakes the core after more ops were appended to a channel that had
    /// previously reported exhaustion.
    pub fn nudge(&mut self) {
        self.stream_done = false;
    }

    /// The core's channel queue, for the driver side to append ops and
    /// generators to. Callers pair every push with [`Core::nudge`].
    ///
    /// # Panics
    /// Panics if the core was not built with [`OpStreamKind::channel`].
    pub fn channel_mut(&mut self) -> &mut ChannelQueue {
        match &mut self.stream {
            OpStreamKind::Channel(c) => c,
            _ => panic!("core {} does not execute a channel stream", self.id),
        }
    }

    /// Whether the core has fully drained: stream exhausted, ROB empty, and
    /// no wait pending.
    pub fn is_done(&self) -> bool {
        self.stream_done
            && self.peeked.is_none()
            && self.rob.is_empty()
            && self.waiting_flag.is_none()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Clears statistics (ROI boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
        if self.profile.is_some() {
            self.profile = Some(CoreProfile::default());
        }
        self.prev_stalls = [0; 4];
    }

    /// Signals from completed MMIO ops (DX100 instruction beats), in
    /// completion order. The system glue drains these every cycle.
    pub fn drain_mmio_signals(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.mmio_signals)
    }

    /// Whether completed-MMIO signals await draining by the system glue
    /// (forbids cycle skipping: the drain is due this very cycle).
    pub fn has_mmio_signals(&self) -> bool {
        !self.mmio_signals.is_empty()
    }

    /// Delivers a memory completion for the op with sequence number `seq`.
    pub fn mem_complete(&mut self, seq: u64, now: Cycle) {
        let Some(entry) = self.entry_mut(seq) else {
            debug_assert!(false, "completion for unknown seq {seq}");
            return;
        };
        if let EntryKind::Atomic { locked } = &mut entry.kind {
            if !*locked {
                // Data arrived; now pay the cacheline-lock latency.
                *locked = true;
                self.internal_done
                    .push_at(now + self.cfg.atomic_lock_latency, seq);
                return;
            }
        }
        // Atomics decrement `mem_inflight` in `finish` (after the lock
        // latency elapses); plain loads/stores decrement here.
        let is_plain_mem = matches!(entry.kind, EntryKind::Load | EntryKind::Store);
        if is_plain_mem {
            self.mem_inflight -= 1;
        }
        self.finish(seq, now);
    }

    /// Advances one cycle. Ready memory ops are handed to `issue`.
    pub fn tick(&mut self, now: Cycle, flags: &mut FlagBoard, issue: &mut dyn FnMut(MemIssue)) {
        if self.is_done() {
            return;
        }
        self.stats.cycles += 1;

        // 0. Cycle attribution: classify before any state changes, with the
        //    same predicate the skip layer's batch credit uses, so the
        //    breakdown is bit-identical with skipping on or off.
        if self.profile.is_some() {
            let class = self.idle_class(now, flags);
            self.credit_profile(class, 1);
        }

        // 1. Internal completions (ALU latency, MMIO latency, atomic locks).
        while let Some(seq) = self.internal_done.pop_ready(now) {
            self.finish(seq, now);
        }

        // 2. Retire from the head, in order.
        let mut retired = 0;
        while retired < self.cfg.width {
            match self.rob.front() {
                Some(e) if e.state == EntryState::Complete => {
                    let e = self.rob.pop_front().unwrap();
                    match e.kind {
                        EntryKind::Load => self.lq_used -= 1,
                        EntryKind::Store | EntryKind::Mmio { .. } => self.sq_used -= 1,
                        EntryKind::Atomic { .. } => {
                            self.lq_used -= 1;
                            self.sq_used -= 1;
                        }
                        EntryKind::Alu => {}
                    }
                    self.waiters.remove(&self.head_seq);
                    self.head_seq += 1;
                    self.stats.instructions += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // 3. Dispatch up to `width` new µops.
        self.dispatch(now, flags);

        // 4. Issue ready memory ops to the L1 port. Atomics have fence
        //    semantics on the memory stream: an atomic issues only when no
        //    other memory op is in flight, and blocks younger memory ops
        //    until it completes (LOCK-prefix behaviour — serialized memory,
        //    but the pipeline keeps dispatching).
        for _ in 0..self.cfg.mem_issue_width {
            if self.atomic_pending {
                self.stats.stall_fence += 1;
                break;
            }
            let Some(&seq) = self.ready_mem.front() else {
                break;
            };
            let is_atomic = matches!(
                self.entry_mut(seq).map(|e| e.kind),
                Some(EntryKind::Atomic { .. })
            );
            if is_atomic && self.mem_inflight > 0 {
                self.stats.stall_fence += 1;
                break;
            }
            self.ready_mem.pop_front();
            let Some(entry) = self.entry_mut(seq) else {
                continue;
            };
            debug_assert_eq!(entry.state, EntryState::Ready);
            entry.state = EntryState::Issued;
            let (addr, stream) = (entry.addr, entry.stream);
            let kind = match entry.kind {
                EntryKind::Load => MemKind::Load,
                EntryKind::Store => MemKind::Store,
                EntryKind::Atomic { .. } => {
                    self.atomic_pending = true;
                    MemKind::Atomic
                }
                _ => unreachable!("only memory ops enter ready_mem"),
            };
            self.mem_inflight += 1;
            self.stats.mem_ops_issued += 1;
            issue(MemIssue {
                seq,
                addr,
                stream,
                kind,
            });
        }

        // 5. Occupancy statistics (Figure 10c analysis inputs).
        self.stats.rob_occupancy.sample(self.rob.len() as f64);
        self.stats.lq_occupancy.sample(self.lq_used as f64);

        // 6. Stall tracing: a reason is active this cycle iff its counter
        //    advanced since the previous tick.
        if let Some(t) = self.trace.clone() {
            let cur = [
                self.stats.stall_rob_full,
                self.stats.stall_lq_full,
                self.stats.stall_sq_full,
                self.stats.stall_fence,
            ];
            for (i, name) in STALL_NAMES.iter().enumerate() {
                self.stall_spans[i].update(cur[i] > self.prev_stalls[i], now, &t, "stall", name);
            }
            self.prev_stalls = cur;
        }
    }

    /// Classifies this cycle as quiescent (returns what each stage's stall
    /// counters do) or active (`None`: the tick would change architectural
    /// state — complete, retire, dispatch, or issue something).
    ///
    /// Mirrors [`Core::tick`]'s control flow exactly: every `return`ing stall
    /// path in `dispatch` maps to a [`DispatchIdle`] variant and every
    /// `break`ing stall path in the issue loop to an [`IssueIdle`] variant.
    /// While the core's inputs are frozen (no flag set, no completion, no
    /// stream refill), the classification is constant from cycle to cycle.
    fn idle_class(&mut self, now: Cycle, flags: &FlagBoard) -> Option<IdleClass> {
        debug_assert!(!self.is_done());
        if let Some(t) = self.internal_done.next_ready_at() {
            if t <= now {
                return None;
            }
        }
        if matches!(self.rob.front(), Some(e) if e.state == EntryState::Complete) {
            return None;
        }
        let dispatch = if let Some(w) = self.waiting_flag {
            if flags.get(w.flag) {
                return None;
            }
            DispatchIdle::Wait { spin: w.spin }
        } else if let Some(op) = self.peek_op() {
            match op {
                CoreOp::WaitFlag { .. } => return None,
                CoreOp::SetFlag { .. } => {
                    if self.rob.is_empty() {
                        return None;
                    }
                    DispatchIdle::Fence
                }
                _ if self.rob.len() >= self.cfg.rob => DispatchIdle::RobFull,
                CoreOp::Load { .. } if self.lq_used >= self.cfg.lq => DispatchIdle::LqFull,
                CoreOp::Store { .. } if self.sq_used >= self.cfg.sq => DispatchIdle::SqFull,
                CoreOp::AtomicRmw { .. }
                    if self.lq_used >= self.cfg.lq || self.sq_used >= self.cfg.sq =>
                {
                    DispatchIdle::LqFull
                }
                CoreOp::Mmio { .. } if self.sq_used >= self.cfg.sq => DispatchIdle::SqFull,
                _ => return None,
            }
        } else {
            DispatchIdle::Empty
        };
        let issue = if self.atomic_pending {
            IssueIdle::Fence
        } else if let Some(&seq) = self.ready_mem.front() {
            let is_atomic = matches!(
                self.entry_mut(seq).map(|e| e.kind),
                Some(EntryKind::Atomic { .. })
            );
            if is_atomic && self.mem_inflight > 0 {
                IssueIdle::Fence
            } else {
                return None;
            }
        } else {
            IssueIdle::Empty
        };
        Some(IdleClass { dispatch, issue })
    }

    /// Earliest cycle ≥ `now` at which [`Core::tick`] might change
    /// architectural state, assuming no external input (flag set, memory
    /// completion, stream refill) arrives — external wakeups come from
    /// components that are themselves active, which ends any skip. `None`
    /// means the core is inert until such input: its only self-timed wakeup
    /// source is the internal completion queue.
    pub fn next_event(&mut self, now: Cycle, flags: &FlagBoard) -> Option<Cycle> {
        if self.is_done() {
            return None;
        }
        if self.idle_class(now, flags).is_none() {
            return Some(now);
        }
        self.internal_done.next_ready_at()
    }

    /// Credits the stall-only cycles `[from, to)` in bulk: bit-identical to
    /// calling [`Core::tick`] once per cycle while [`Core::idle_class`] holds
    /// (which the caller guarantees by only skipping spans certified by
    /// [`Core::next_event`] across *all* components).
    pub fn credit_idle_span(&mut self, from: Cycle, to: Cycle, flags: &FlagBoard) {
        if self.is_done() || from >= to {
            return;
        }
        let n = to - from;
        let class = self
            .idle_class(from, flags)
            .expect("credit_idle_span requires a quiescent core");
        self.stats.cycles += n;
        self.credit_profile(Some(class), n);
        match class.dispatch {
            DispatchIdle::Wait { spin } => {
                self.stats.wait_cycles += n;
                if spin {
                    if let Some(w) = self.waiting_flag {
                        // Replay the spin polls: one at p0 = max(from,
                        // next_poll_at), then every poll_interval cycles.
                        let p0 = w.next_poll_at.max(from);
                        if p0 < to {
                            let interval = self.cfg.poll_interval;
                            let (k, next_poll_at) = match (to - 1 - p0).checked_div(interval) {
                                // interval == 0: a poll on every cycle.
                                None => (to - p0, to - 1),
                                Some(q) => (q + 1, p0 + (q + 1) * interval),
                            };
                            let instrs = k * self.cfg.spin_instructions_per_poll;
                            self.stats.instructions += instrs;
                            self.stats.spin_instructions += instrs;
                            self.waiting_flag = Some(WaitState { next_poll_at, ..w });
                        }
                    }
                }
            }
            DispatchIdle::Fence => self.stats.stall_fence += n,
            DispatchIdle::RobFull => self.stats.stall_rob_full += n,
            DispatchIdle::LqFull => self.stats.stall_lq_full += n,
            DispatchIdle::SqFull => self.stats.stall_sq_full += n,
            DispatchIdle::Empty => {}
        }
        match class.issue {
            IssueIdle::Fence => self.stats.stall_fence += n,
            IssueIdle::Empty => {}
        }
        self.stats.rob_occupancy.sample_n(self.rob.len() as f64, n);
        self.stats.lq_occupancy.sample_n(self.lq_used as f64, n);
        // Span tracking: the per-reason increment pattern is constant over
        // the span, so one edge-triggered update at `from` reproduces what
        // per-cycle updates would have done.
        if let Some(t) = self.trace.clone() {
            let cur = [
                self.stats.stall_rob_full,
                self.stats.stall_lq_full,
                self.stats.stall_sq_full,
                self.stats.stall_fence,
            ];
            for (i, name) in STALL_NAMES.iter().enumerate() {
                self.stall_spans[i].update(cur[i] > self.prev_stalls[i], from, &t, "stall", name);
            }
            self.prev_stalls = cur;
        }
    }

    /// Adds `n` cycles of `class` to the attribution breakdown. The MECE
    /// mapping: an active cycle (`None`) is `active`; otherwise the
    /// dispatch-side stall wins, and a stall-free-but-empty dispatch falls
    /// through to the issue side (atomic fence, else truly empty).
    fn credit_profile(&mut self, class: Option<IdleClass>, n: u64) {
        let Some(p) = &mut self.profile else { return };
        match class {
            None => p.active += n,
            Some(c) => match c.dispatch {
                DispatchIdle::Wait { spin: true } => p.wait_spin += n,
                DispatchIdle::Wait { spin: false } => p.wait_flag += n,
                DispatchIdle::Fence => p.fence += n,
                DispatchIdle::RobFull => p.rob_full += n,
                DispatchIdle::LqFull => p.lq_full += n,
                DispatchIdle::SqFull => p.sq_full += n,
                DispatchIdle::Empty => match c.issue {
                    IssueIdle::Fence => p.fence += n,
                    IssueIdle::Empty => p.empty += n,
                },
            },
        }
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.rob.get_mut(idx)
    }

    /// Marks `seq` complete and wakes dependents.
    fn finish(&mut self, seq: u64, now: Cycle) {
        let alu_latency = self.cfg.alu_latency;
        let Some(entry) = self.entry_mut(seq) else {
            debug_assert!(false, "finish for unknown seq {seq}");
            return;
        };
        entry.state = EntryState::Complete;
        let kind = entry.kind;
        if let EntryKind::Atomic { .. } = kind {
            self.atomic_pending = false;
            self.mem_inflight -= 1;
        }
        if let EntryKind::Mmio { signal: Some(sig) } = kind {
            self.mmio_signals.push(sig);
        }
        if let Some(deps) = self.waiters.remove(&seq) {
            for dseq in deps {
                let Some(dep_entry) = self.entry_mut(dseq) else {
                    continue;
                };
                if let EntryState::Waiting(n) = dep_entry.state {
                    if n <= 1 {
                        dep_entry.state = EntryState::Ready;
                        self.route_ready(dseq, now, alu_latency);
                    } else {
                        dep_entry.state = EntryState::Waiting(n - 1);
                    }
                }
            }
        }
    }

    /// Sends a newly ready entry to its functional unit.
    fn route_ready(&mut self, seq: u64, now: Cycle, alu_latency: u64) {
        let entry = self.entry_mut(seq).expect("routing unknown seq");
        match entry.kind {
            EntryKind::Load | EntryKind::Store | EntryKind::Atomic { .. } => {
                self.ready_mem.push_back(seq);
            }
            EntryKind::Alu => self.internal_done.push_at(now + alu_latency, seq),
            EntryKind::Mmio { .. } => {
                // Latency was stashed in `addr` at dispatch.
                let latency = entry.addr;
                self.internal_done.push_at(now + latency, seq);
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, flags: &mut FlagBoard) {
        for _ in 0..self.cfg.width {
            // Blocked on a flag?
            if let Some(w) = self.waiting_flag {
                if flags.get(w.flag) {
                    self.waiting_flag = None;
                } else {
                    self.stats.wait_cycles += 1;
                    if w.spin && now >= w.next_poll_at {
                        self.stats.instructions += self.cfg.spin_instructions_per_poll;
                        self.stats.spin_instructions += self.cfg.spin_instructions_per_poll;
                        self.waiting_flag = Some(WaitState {
                            next_poll_at: now + self.cfg.poll_interval,
                            ..w
                        });
                    }
                    return;
                }
            }
            let Some(op) = self.peek_op() else {
                return;
            };
            match op {
                CoreOp::WaitFlag { flag, spin } => {
                    self.take_op();
                    self.waiting_flag = Some(WaitState {
                        flag,
                        spin,
                        next_poll_at: now,
                    });
                    continue;
                }
                CoreOp::SetFlag { flag } => {
                    // Light fence: publish only once prior work retired.
                    if !self.rob.is_empty() {
                        self.stats.stall_fence += 1;
                        return;
                    }
                    self.take_op();
                    flags.set(flag);
                    self.stats.instructions += 1;
                    continue;
                }
                _ => {}
            }
            if self.rob.len() >= self.cfg.rob {
                self.stats.stall_rob_full += 1;
                return;
            }
            let (kind, addr, stream, dep) = match op {
                CoreOp::Load { addr, stream, dep } => {
                    if self.lq_used >= self.cfg.lq {
                        self.stats.stall_lq_full += 1;
                        return;
                    }
                    (EntryKind::Load, addr, stream, dep)
                }
                CoreOp::Store { addr, stream, dep } => {
                    if self.sq_used >= self.cfg.sq {
                        self.stats.stall_sq_full += 1;
                        return;
                    }
                    (EntryKind::Store, addr, stream, dep)
                }
                CoreOp::AtomicRmw { addr, stream, dep } => {
                    if self.lq_used >= self.cfg.lq || self.sq_used >= self.cfg.sq {
                        self.stats.stall_lq_full += 1;
                        return;
                    }
                    (EntryKind::Atomic { locked: false }, addr, stream, dep)
                }
                CoreOp::Alu { dep } => (EntryKind::Alu, 0, 0, dep),
                CoreOp::Mmio { latency, signal } => {
                    if self.sq_used >= self.cfg.sq {
                        self.stats.stall_sq_full += 1;
                        return;
                    }
                    // Stash the latency in `addr`; see `route_ready`.
                    (EntryKind::Mmio { signal }, latency as Addr, 0, [0, 0])
                }
                CoreOp::WaitFlag { .. } | CoreOp::SetFlag { .. } => {
                    unreachable!("handled before the ROB-entry path")
                }
            };
            self.take_op();
            let seq = self.next_seq;
            self.next_seq += 1;
            match kind {
                EntryKind::Load => self.lq_used += 1,
                EntryKind::Store | EntryKind::Mmio { .. } => self.sq_used += 1,
                EntryKind::Atomic { .. } => {
                    self.lq_used += 1;
                    self.sq_used += 1;
                }
                EntryKind::Alu => {}
            }
            // Resolve dependencies.
            let mut remaining = 0u8;
            for d in dep {
                if d == 0 {
                    continue;
                }
                let Some(dep_seq) = seq.checked_sub(d as u64) else {
                    continue;
                };
                if dep_seq < self.head_seq {
                    continue; // already retired → satisfied
                }
                let idx = (dep_seq - self.head_seq) as usize;
                if self.rob[idx].state == EntryState::Complete {
                    continue;
                }
                self.waiters.entry(dep_seq).or_default().push(seq);
                remaining += 1;
            }
            let state = if remaining == 0 {
                EntryState::Ready
            } else {
                EntryState::Waiting(remaining)
            };
            self.rob.push_back(Entry {
                kind,
                state,
                addr,
                stream,
            });
            if state == EntryState::Ready {
                self.route_ready(seq, now, self.cfg.alu_latency);
            }
        }
    }

    fn peek_op(&mut self) -> Option<CoreOp> {
        if self.peeked.is_none() && !self.stream_done {
            self.peeked = self.stream.next_op();
            if self.peeked.is_none() {
                self.stream_done = true;
            }
        }
        self.peeked
    }

    fn take_op(&mut self) {
        self.peeked = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::VecStream;
    use dx100_common::flags::FlagBoard;

    /// Fake memory: completes every issue after `latency` cycles.
    struct FakeMem {
        latency: Cycle,
        in_flight: DelayQueue<u64>,
        peak_outstanding: usize,
        outstanding: usize,
    }

    impl FakeMem {
        fn new(latency: Cycle) -> Self {
            FakeMem {
                latency,
                in_flight: DelayQueue::new(),
                peak_outstanding: 0,
                outstanding: 0,
            }
        }
    }

    fn run(core: &mut Core, mem: &mut FakeMem, max_cycles: Cycle) -> Cycle {
        let mut flags = FlagBoard::new();
        run_with_flags(core, mem, &mut flags, max_cycles)
    }

    fn run_with_flags(
        core: &mut Core,
        mem: &mut FakeMem,
        flags: &mut FlagBoard,
        max_cycles: Cycle,
    ) -> Cycle {
        for now in 0..max_cycles {
            while let Some(seq) = mem.in_flight.pop_ready(now) {
                mem.outstanding -= 1;
                core.mem_complete(seq, now);
            }
            let latency = mem.latency;
            let inflight = &mut mem.in_flight;
            let mut issued_now = 0;
            core.tick(now, flags, &mut |iss| {
                inflight.push_at(now + latency, iss.seq);
                issued_now += 1;
            });
            mem.outstanding += issued_now;
            mem.peak_outstanding = mem.peak_outstanding.max(mem.outstanding);
            if core.is_done() {
                return now;
            }
        }
        panic!("core did not finish in {max_cycles} cycles");
    }

    #[test]
    fn independent_loads_overlap() {
        // 16 independent loads at 100-cycle latency should take ~100 cycles,
        // not 1600: the ROB/LQ expose the parallelism.
        let ops: Vec<CoreOp> = (0..16).map(|i| CoreOp::load(i * 64, 0)).collect();
        let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
        let mut mem = FakeMem::new(100);
        let cycles = run(&mut core, &mut mem, 10_000);
        assert!(cycles < 130, "independent loads must overlap: {cycles}");
        assert!(mem.peak_outstanding >= 8);
        assert_eq!(core.stats().instructions, 16);
    }

    #[test]
    fn dependent_loads_serialize() {
        // A chain of 8 dependent loads serializes: ≥ 8 × latency.
        let ops: Vec<CoreOp> = (0..8)
            .map(|i| {
                if i == 0 {
                    CoreOp::load(0, 0)
                } else {
                    CoreOp::load(i * 64, 0).with_dep(1)
                }
            })
            .collect();
        let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
        let mut mem = FakeMem::new(100);
        let cycles = run(&mut core, &mut mem, 10_000);
        assert!(cycles >= 800, "dependent chain must serialize: {cycles}");
        assert!(mem.peak_outstanding <= 1);
    }

    #[test]
    fn lq_bounds_outstanding_loads() {
        let mut cfg = CoreConfig::paper();
        cfg.lq = 4;
        cfg.rob = 224;
        let ops: Vec<CoreOp> = (0..64).map(|i| CoreOp::load(i * 64, 0)).collect();
        let mut core = Core::new(0, cfg, VecStream::new(ops));
        let mut mem = FakeMem::new(50);
        run(&mut core, &mut mem, 100_000);
        assert!(mem.peak_outstanding <= 4, "LQ must cap MLP");
        assert!(core.stats().stall_lq_full > 0);
    }

    #[test]
    fn rob_bounds_window() {
        let mut cfg = CoreConfig::paper();
        cfg.rob = 8;
        // A long-latency load followed by many ALUs: the window fills.
        let mut ops = vec![CoreOp::load(0, 0)];
        ops.extend((0..64).map(|_| CoreOp::alu()));
        let mut core = Core::new(0, cfg, VecStream::new(ops));
        let mut mem = FakeMem::new(200);
        run(&mut core, &mut mem, 10_000);
        assert!(
            core.stats().stall_rob_full > 0,
            "ROB must fill behind a miss"
        );
    }

    #[test]
    fn atomics_serialize_and_pay_lock_latency() {
        // N plain stores vs N atomics to the same addresses.
        let n = 32u64;
        let plain: Vec<CoreOp> = (0..n).map(|i| CoreOp::store(i * 64, 0)).collect();
        let atomics: Vec<CoreOp> = (0..n).map(|i| CoreOp::atomic(i * 64, 0)).collect();
        let mut c1 = Core::new(0, CoreConfig::paper(), VecStream::new(plain));
        let mut m1 = FakeMem::new(20);
        let t_plain = run(&mut c1, &mut m1, 100_000);
        let mut c2 = Core::new(0, CoreConfig::paper(), VecStream::new(atomics));
        let mut m2 = FakeMem::new(20);
        let t_atomic = run(&mut c2, &mut m2, 100_000);
        let ratio = t_atomic as f64 / t_plain as f64;
        assert!(ratio > 3.0, "atomics must be several × slower: {ratio:.2}");
        assert!(m2.peak_outstanding <= 1, "fence caps MLP at 1");
    }

    #[test]
    fn width_bounds_alu_throughput() {
        let n = 800u64;
        let ops: Vec<CoreOp> = (0..n).map(|_| CoreOp::alu()).collect();
        let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
        let mut mem = FakeMem::new(1);
        let cycles = run(&mut core, &mut mem, 10_000);
        // 8-wide: at least n/8 cycles, and close to it.
        assert!(cycles as u64 >= n / 8);
        assert!(
            (cycles as u64) < n / 8 + 32,
            "ALUs should sustain full width"
        );
    }

    #[test]
    fn wait_flag_blocks_until_set() {
        let ops = vec![
            CoreOp::WaitFlag {
                flag: FlagId(0),
                spin: true,
            },
            CoreOp::alu(),
        ];
        let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
        let mut flags = FlagBoard::new();
        let flag = flags.alloc();
        let mut mem = FakeMem::new(1);
        // Set the flag at cycle 500 from "outside".
        for now in 0..1000u64 {
            if now == 500 {
                flags.set(flag);
            }
            while let Some(seq) = mem.in_flight.pop_ready(now) {
                core.mem_complete(seq, now);
            }
            let inflight = &mut mem.in_flight;
            core.tick(now, &mut flags, &mut |iss| {
                inflight.push_at(now + 1, iss.seq);
            });
            if core.is_done() {
                assert!(now >= 500, "must not finish before the flag is set");
                assert!(core.stats().wait_cycles >= 400);
                assert!(core.stats().spin_instructions > 0);
                return;
            }
        }
        panic!("core never finished");
    }

    #[test]
    fn profile_attribution_is_mece() {
        // A dependent miss chain: most cycles are memory-latency shadows.
        let ops: Vec<CoreOp> = (0..8)
            .map(|i| {
                if i == 0 {
                    CoreOp::load(0, 0)
                } else {
                    CoreOp::load(i * 64, 0).with_dep(1)
                }
            })
            .collect();
        let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
        core.enable_profile();
        let mut mem = FakeMem::new(100);
        run(&mut core, &mut mem, 10_000);
        let p = *core.profile().expect("profiling enabled");
        assert_eq!(
            p.attributed(),
            core.stats().cycles,
            "every live cycle must land in exactly one bucket: {p:?}"
        );
        assert!(p.active > 0);
        assert!(p.empty > 0, "latency shadows of a drained stream: {p:?}");
    }

    #[test]
    fn mmio_signals_delivered_in_order() {
        let ops = vec![
            CoreOp::Mmio {
                latency: 10,
                signal: None,
            },
            CoreOp::Mmio {
                latency: 10,
                signal: Some(42),
            },
            CoreOp::Mmio {
                latency: 10,
                signal: Some(43),
            },
        ];
        let mut core = Core::new(0, CoreConfig::paper(), VecStream::new(ops));
        let mut mem = FakeMem::new(1);
        let mut flags = FlagBoard::new();
        let mut signals = Vec::new();
        for now in 0..200u64 {
            core.tick(now, &mut flags, &mut |_| {});
            signals.extend(core.drain_mmio_signals());
            if core.is_done() {
                break;
            }
            let _ = &mut mem;
        }
        assert_eq!(signals, vec![42, 43]);
        assert_eq!(core.stats().instructions, 3);
    }

    #[test]
    fn set_flag_visible_to_other_waiters() {
        let mut flags = FlagBoard::new();
        let f = flags.alloc();
        let setter = vec![CoreOp::alu(), CoreOp::SetFlag { flag: f }];
        let waiter = vec![
            CoreOp::WaitFlag {
                flag: f,
                spin: false,
            },
            CoreOp::alu(),
        ];
        let mut c0 = Core::new(0, CoreConfig::paper(), VecStream::new(setter));
        let mut c1 = Core::new(1, CoreConfig::paper(), VecStream::new(waiter));
        for now in 0..100u64 {
            c0.tick(now, &mut flags, &mut |_| {});
            c1.tick(now, &mut flags, &mut |_| {});
            if c0.is_done() && c1.is_done() {
                return;
            }
        }
        panic!("flag handoff between cores failed");
    }
}
