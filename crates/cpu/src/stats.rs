//! Per-core execution statistics.

use dx100_common::stats::RunningAverage;

/// Counters for one core's execution.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Cycles the core was active (ticked while not done).
    pub cycles: u64,
    /// Retired instructions, including charged spin-loop instructions.
    pub instructions: u64,
    /// Instructions charged to spin-wait polling alone.
    pub spin_instructions: u64,
    /// Memory operations issued to the L1.
    pub mem_ops_issued: u64,
    /// Cycles dispatch was blocked on a wait flag.
    pub wait_cycles: u64,
    /// Dispatch stalls: ROB full.
    pub stall_rob_full: u64,
    /// Dispatch stalls: load queue full.
    pub stall_lq_full: u64,
    /// Dispatch stalls: store queue full.
    pub stall_sq_full: u64,
    /// Dispatch stalls: fence (atomic) draining.
    pub stall_fence: u64,
    /// Mean ROB occupancy (sampled per cycle).
    pub rob_occupancy: RunningAverage,
    /// Mean load-queue occupancy (sampled per cycle).
    pub lq_occupancy: RunningAverage,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Folds another core's counters into this one (for whole-workload
    /// aggregates). `cycles` takes the max since cores run concurrently.
    pub fn merge(&mut self, other: &CoreStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.instructions += other.instructions;
        self.spin_instructions += other.spin_instructions;
        self.mem_ops_issued += other.mem_ops_issued;
        self.wait_cycles += other.wait_cycles;
        self.stall_rob_full += other.stall_rob_full;
        self.stall_lq_full += other.stall_lq_full;
        self.stall_sq_full += other.stall_sq_full;
        self.stall_fence += other.stall_fence;
        self.rob_occupancy.merge(&other.rob_occupancy);
        self.lq_occupancy.merge(&other.lq_occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_math() {
        let s = CoreStats {
            cycles: 100,
            instructions: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn merge_takes_max_cycles_sums_instructions() {
        let mut a = CoreStats {
            cycles: 100,
            instructions: 10,
            ..Default::default()
        };
        let b = CoreStats {
            cycles: 80,
            instructions: 20,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.instructions, 30);
    }
}
