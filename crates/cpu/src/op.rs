//! Abstract micro-ops and the lazy op-stream interface workloads implement.

use dx100_common::flags::FlagId;
use dx100_common::Addr;

/// One abstract micro-op of a baseline kernel's core-side execution.
///
/// Dependencies are expressed as *relative distances*: `dep = [d1, d2]`
/// means this op consumes the results of the ops `d1` and `d2` positions
/// earlier in the same stream (0 = no dependency). Distances must stay
/// within the ROB depth; generators emit intra-iteration dependencies only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreOp {
    /// A load from `addr` tagged with a prefetcher `stream` id.
    Load {
        /// Byte address.
        addr: Addr,
        /// Logical stream id for stride-prefetcher training.
        stream: u32,
        /// Relative dependencies (see type docs).
        dep: [u16; 2],
    },
    /// A store to `addr`.
    Store {
        /// Byte address.
        addr: Addr,
        /// Logical stream id.
        stream: u32,
        /// Relative dependencies.
        dep: [u16; 2],
    },
    /// An atomic read-modify-write: fence semantics (drains the window) plus
    /// a locked memory access.
    AtomicRmw {
        /// Byte address.
        addr: Addr,
        /// Logical stream id.
        stream: u32,
        /// Relative dependencies.
        dep: [u16; 2],
    },
    /// One arithmetic/logic µop.
    Alu {
        /// Relative dependencies.
        dep: [u16; 2],
    },
    /// An uncacheable memory-mapped store (e.g. one 64-bit beat of a DX100
    /// instruction). Completes after a fixed NoC latency; when `signal` is
    /// set, the core reports it via [`crate::Core::drain_mmio_signals`] at
    /// completion time so the system glue can deliver the payload.
    Mmio {
        /// Round-trip latency in cycles.
        latency: u16,
        /// Optional payload tag delivered on completion.
        signal: Option<u32>,
    },
    /// Block dispatch until the flag is set. With `spin`, instructions are
    /// charged per poll (OpenMP critical-section spinning, as in the paper's
    /// BFS discussion).
    WaitFlag {
        /// Flag to wait on.
        flag: FlagId,
        /// Whether to charge spin-loop instructions while waiting.
        spin: bool,
    },
    /// Set a flag (releases waiters on other cores / the driver).
    SetFlag {
        /// Flag to set.
        flag: FlagId,
    },
}

impl CoreOp {
    /// A dependency-free load.
    pub fn load(addr: Addr, stream: u32) -> Self {
        CoreOp::Load {
            addr,
            stream,
            dep: [0, 0],
        }
    }

    /// A dependency-free store.
    pub fn store(addr: Addr, stream: u32) -> Self {
        CoreOp::Store {
            addr,
            stream,
            dep: [0, 0],
        }
    }

    /// A dependency-free ALU op.
    pub fn alu() -> Self {
        CoreOp::Alu { dep: [0, 0] }
    }

    /// A dependency-free atomic RMW.
    pub fn atomic(addr: Addr, stream: u32) -> Self {
        CoreOp::AtomicRmw {
            addr,
            stream,
            dep: [0, 0],
        }
    }

    /// Returns this op with an added dependency on the op `distance`
    /// positions earlier.
    ///
    /// # Panics
    /// Panics if both dependency slots are taken or `distance == 0`.
    pub fn with_dep(mut self, distance: u16) -> Self {
        assert!(distance > 0, "dependency distance must be positive");
        let dep = match &mut self {
            CoreOp::Load { dep, .. }
            | CoreOp::Store { dep, .. }
            | CoreOp::AtomicRmw { dep, .. }
            | CoreOp::Alu { dep } => dep,
            _ => panic!("op kind does not take dependencies"),
        };
        if dep[0] == 0 {
            dep[0] = distance;
        } else if dep[1] == 0 {
            dep[1] = distance;
        } else {
            panic!("both dependency slots in use");
        }
        self
    }

    /// Number of retired instructions this op accounts for.
    pub fn instruction_count(&self) -> u64 {
        match self {
            // Waits are pure stalls; spin charges are added separately.
            CoreOp::WaitFlag { .. } => 0,
            _ => 1,
        }
    }
}

/// A lazily generated stream of micro-ops (one per core).
///
/// Implementations walk the kernel's data structures and emit the baseline
/// loop body op-by-op, so multi-million-element workloads never materialize
/// their full traces in memory.
pub trait OpStream {
    /// The next op, or `None` when the stream is exhausted.
    fn next_op(&mut self) -> Option<CoreOp>;

    /// A deep copy of this stream at its current position, when the
    /// implementation supports checkpointing. Streams backed by plain data
    /// (index arrays, pre-built op vectors) return `Some`; streams that
    /// share interior state with the system (channels) return `None` and
    /// are checkpointed by their owner instead.
    fn try_clone(&self) -> Option<Box<dyn OpStream + Send + Sync>> {
        None
    }
}

/// An [`OpStream`] over a pre-built vector (tests and small phases).
#[derive(Debug, Clone)]
pub struct VecStream {
    pub(crate) ops: std::vec::IntoIter<CoreOp>,
}

impl VecStream {
    /// Wraps `ops` in a stream.
    pub fn new(ops: Vec<CoreOp>) -> Self {
        VecStream {
            ops: ops.into_iter(),
        }
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        self.ops.next()
    }

    fn try_clone(&self) -> Option<Box<dyn OpStream + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

/// An empty stream (idle core).
#[derive(Debug, Clone, Default)]
pub struct EmptyStream;

impl OpStream for EmptyStream {
    fn next_op(&mut self) -> Option<CoreOp> {
        None
    }

    fn try_clone(&self) -> Option<Box<dyn OpStream + Send + Sync>> {
        Some(Box::new(EmptyStream))
    }
}

/// The closed set of op sources a [`Core`](crate::Core) executes, dispatched
/// by `match` rather than through a `Box<dyn OpStream>` vtable.
///
/// The per-cycle hot path (`Core::peek_op`) runs once per dispatched µop,
/// so the indirection cost of a trait object is paid millions of times per
/// simulated millisecond. The *open* extension point for workloads remains
/// the [`OpStream`] trait — but generators now enter a core only through a
/// [`ChannelQueue`](crate::ChannelQueue) segment, where they are polled in
/// batches into flat op rings instead of once per op.
#[derive(Debug, Default)]
pub enum OpStreamKind {
    /// No ops at all (idle core).
    #[default]
    Empty,
    /// A pre-built op vector (tests and small phases).
    Vec(VecStream),
    /// A driver-fed channel of op and generator segments.
    Channel(crate::ChannelQueue),
}

impl OpStreamKind {
    /// An empty channel ready for driver pushes.
    pub fn channel() -> Self {
        OpStreamKind::Channel(crate::ChannelQueue::new())
    }

    /// The next op, or `None` when the stream is (currently) exhausted.
    #[inline]
    pub fn next_op(&mut self) -> Option<CoreOp> {
        match self {
            OpStreamKind::Empty => None,
            OpStreamKind::Vec(v) => v.ops.next(),
            OpStreamKind::Channel(c) => c.next_op(),
        }
    }
}

impl From<VecStream> for OpStreamKind {
    fn from(v: VecStream) -> Self {
        OpStreamKind::Vec(v)
    }
}

impl From<Vec<CoreOp>> for OpStreamKind {
    fn from(ops: Vec<CoreOp>) -> Self {
        OpStreamKind::Vec(VecStream::new(ops))
    }
}

impl From<EmptyStream> for OpStreamKind {
    fn from(_: EmptyStream) -> Self {
        OpStreamKind::Empty
    }
}

impl From<crate::ChannelQueue> for OpStreamKind {
    fn from(c: crate::ChannelQueue) -> Self {
        OpStreamKind::Channel(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_dep_fills_slots() {
        let op = CoreOp::load(0, 0).with_dep(3).with_dep(7);
        assert_eq!(
            op,
            CoreOp::Load {
                addr: 0,
                stream: 0,
                dep: [3, 7]
            }
        );
    }

    #[test]
    #[should_panic(expected = "both dependency slots in use")]
    fn with_dep_overflow_panics() {
        let _ = CoreOp::alu().with_dep(1).with_dep(2).with_dep(3);
    }

    #[test]
    fn instruction_counts() {
        assert_eq!(CoreOp::load(0, 0).instruction_count(), 1);
        assert_eq!(
            CoreOp::WaitFlag {
                flag: FlagId(0),
                spin: false
            }
            .instruction_count(),
            0
        );
    }

    #[test]
    fn vec_stream_drains_in_order() {
        let mut s = VecStream::new(vec![CoreOp::alu(), CoreOp::load(8, 1)]);
        assert_eq!(s.next_op(), Some(CoreOp::alu()));
        assert_eq!(s.next_op(), Some(CoreOp::load(8, 1)));
        assert_eq!(s.next_op(), None);
    }
}
