//! Core-owned op channels: the driver appends micro-ops or whole lazy
//! generators; the core drains them.
//!
//! Until PR 6 this lived in the sim crate behind an `Arc<Mutex<…>>` handle
//! shared between the [`System`] and the core's boxed trait-object stream.
//! The core now *owns* its channel inside [`OpStreamKind`], so the per-op
//! path is a plain ring pop — no lock, no virtual call. Generators (the
//! open, workload-defined half of the old `OpStream` hierarchy) are still
//! boxed, but they are polled in batches of [`GEN_BATCH`] ops that land in
//! a flat segment, amortizing the one remaining virtual call to under 1%
//! of ops.
//!
//! [`System`]: ../../dx100_sim/struct.System.html
//! [`OpStreamKind`]: crate::OpStreamKind

use std::collections::VecDeque;

use dx100_common::CheckpointError;

use crate::op::{CoreOp, OpStream};

/// How many ops a queued generator is polled for per refill. Large enough
/// to amortize the virtual call, small enough that a checkpoint taken
/// mid-segment stays cheap to clone.
const GEN_BATCH: usize = 128;

enum Segment {
    Ops(VecDeque<CoreOp>),
    Gen(Box<dyn OpStream + Send>),
}

impl Default for Segment {
    fn default() -> Self {
        Segment::Ops(VecDeque::new())
    }
}

/// One core's op channel: an ordered queue of literal-op and generator
/// segments.
#[derive(Default)]
pub struct ChannelQueue {
    segments: VecDeque<Segment>,
}

impl ChannelQueue {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends literal ops (merged into a trailing op segment).
    pub fn push_ops<I: IntoIterator<Item = CoreOp>>(&mut self, ops: I) {
        if let Some(Segment::Ops(q)) = self.segments.back_mut() {
            q.extend(ops);
            return;
        }
        self.segments
            .push_back(Segment::Ops(ops.into_iter().collect()));
    }

    /// Appends a lazy generator to run after everything queued so far.
    pub fn push_gen(&mut self, gen: Box<dyn OpStream + Send>) {
        self.segments.push_back(Segment::Gen(gen));
    }

    /// The next queued op. Generators at the front are drained in batches
    /// of [`GEN_BATCH`] into a flat segment first, so the common case is a
    /// ring pop.
    #[inline]
    pub fn next_op(&mut self) -> Option<CoreOp> {
        loop {
            match self.segments.front_mut() {
                None => return None,
                Some(Segment::Ops(q)) => match q.pop_front() {
                    Some(op) => return Some(op),
                    None => {
                        self.segments.pop_front();
                    }
                },
                Some(Segment::Gen(g)) => {
                    let mut buf = VecDeque::with_capacity(GEN_BATCH);
                    let mut exhausted = false;
                    for _ in 0..GEN_BATCH {
                        match g.next_op() {
                            Some(op) => buf.push_back(op),
                            None => {
                                exhausted = true;
                                break;
                            }
                        }
                    }
                    if exhausted {
                        self.segments.pop_front();
                    }
                    if !buf.is_empty() {
                        // Buffered ops run before the (possibly still
                        // live) generator they came from.
                        self.segments.push_front(Segment::Ops(buf));
                    }
                }
            }
        }
    }

    /// Whether nothing is queued (generators count as non-empty until they
    /// report exhaustion).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
            || self
                .segments
                .iter()
                .all(|s| matches!(s, Segment::Ops(q) if q.is_empty()))
    }

    /// Snapshots the queued segments for a checkpoint. Ops a generator has
    /// already been polled for sit in a literal segment ahead of it, so the
    /// snapshot reproduces the exact stream position. Fails with
    /// [`CheckpointError::UnclonableStream`] if a queued generator does not
    /// support `try_clone`.
    pub fn save_segments(&self) -> Result<Vec<SegmentState>, CheckpointError> {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Ops(q) => Ok(SegmentState::Ops(q.clone())),
                Segment::Gen(g) => g
                    .try_clone()
                    .map(SegmentState::Gen)
                    .ok_or(CheckpointError::UnclonableStream),
            })
            .collect()
    }

    /// Rebuilds a channel from a previously saved snapshot.
    pub fn from_saved(saved: &[SegmentState]) -> Self {
        ChannelQueue {
            segments: saved
                .iter()
                .map(|s| match s {
                    SegmentState::Ops(q) => Segment::Ops(q.clone()),
                    SegmentState::Gen(g) => Segment::Gen(
                        g.try_clone()
                            .expect("a saved generator clone must itself be clonable"),
                    ),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for ChannelQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelQueue")
            .field("segments", &self.segments.len())
            .field("empty", &self.is_empty())
            .finish()
    }
}

/// Saved form of one channel segment. Generators are stored as `Send +
/// Sync` clones so whole-system checkpoints can cross thread boundaries.
pub enum SegmentState {
    /// Literal queued micro-ops.
    Ops(VecDeque<CoreOp>),
    /// A lazy generator, captured via [`OpStream::try_clone`].
    Gen(Box<dyn OpStream + Send + Sync>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::VecStream;

    #[test]
    fn ops_then_gen_then_ops() {
        let mut ch = ChannelQueue::new();
        ch.push_ops([CoreOp::alu()]);
        ch.push_gen(Box::new(VecStream::new(vec![CoreOp::load(64, 1)])));
        ch.push_ops([CoreOp::store(128, 2)]);
        assert_eq!(ch.next_op(), Some(CoreOp::alu()));
        assert_eq!(ch.next_op(), Some(CoreOp::load(64, 1)));
        assert_eq!(ch.next_op(), Some(CoreOp::store(128, 2)));
        assert_eq!(ch.next_op(), None);
        // Refill after exhaustion works (driver appends later).
        ch.push_ops([CoreOp::alu()]);
        assert_eq!(ch.next_op(), Some(CoreOp::alu()));
    }

    #[test]
    fn trailing_ops_merge() {
        let mut ch = ChannelQueue::new();
        ch.push_ops([CoreOp::alu()]);
        ch.push_ops([CoreOp::alu()]);
        assert_eq!(ch.segments.len(), 1);
    }

    #[test]
    fn long_generator_batches_without_reordering() {
        // A generator longer than one batch, with trailing literal ops:
        // order must be exactly generator-then-literals.
        let n = GEN_BATCH * 3 + 7;
        let ops: Vec<CoreOp> = (0..n).map(|i| CoreOp::load(i as u64 * 64, 0)).collect();
        let mut ch = ChannelQueue::new();
        ch.push_gen(Box::new(VecStream::new(ops.clone())));
        ch.push_ops([CoreOp::alu()]);
        for (i, expect) in ops.iter().enumerate() {
            assert_eq!(ch.next_op().as_ref(), Some(expect), "op {i}");
        }
        assert_eq!(ch.next_op(), Some(CoreOp::alu()));
        assert_eq!(ch.next_op(), None);
    }

    #[test]
    fn save_mid_batch_round_trips() {
        let n = GEN_BATCH + 13;
        let ops: Vec<CoreOp> = (0..n).map(|i| CoreOp::load(i as u64 * 64, 0)).collect();
        let mut ch = ChannelQueue::new();
        ch.push_gen(Box::new(VecStream::new(ops.clone())));
        // Drain a few ops (forces one refill, leaves buffered ops + a
        // partially consumed generator).
        for op in ops.iter().take(5) {
            assert_eq!(ch.next_op().as_ref(), Some(op));
        }
        let saved = ch.save_segments().unwrap();
        let mut restored = ChannelQueue::from_saved(&saved);
        for op in ops.iter().skip(5) {
            assert_eq!(restored.next_op().as_ref(), Some(op));
        }
        assert_eq!(restored.next_op(), None);
    }
}
