//! Property tests for [`Core`] checkpoint round-trips.
//!
//! Three contracts, over random programs, memory latencies, and checkpoint
//! cycles:
//!   1. Saving a checkpoint mid-run must not perturb the run (the
//!      interrupted run finishes with the same cycle count and statistics
//!      as an uninterrupted reference).
//!   2. Restoring the checkpoint into a fresh core and resuming must
//!      reproduce the reference's final cycle count and statistics.
//!   3. Restore is deterministic: two cores restored from the same state
//!      emit identical statistics and identical trace events.

use dx100_common::flags::FlagBoard;
use dx100_common::{Checkpoint, Cycle, TraceHandle};
use dx100_cpu::{Core, CoreConfig, CoreOp, VecStream};
use proptest::prelude::*;

const MAX_CYCLES: Cycle = 500_000;

/// Deterministic fake memory: every issue completes `latency` cycles after
/// acceptance. Cloneable so checkpoints can capture in-flight requests.
#[derive(Clone)]
struct SimpleMem {
    latency: Cycle,
    in_flight: Vec<(Cycle, u64)>,
}

impl SimpleMem {
    fn new(latency: Cycle) -> Self {
        SimpleMem {
            latency,
            in_flight: Vec::new(),
        }
    }
}

/// Advances one cycle: deliver ready completions (in issue order), then tick.
fn step(core: &mut Core, mem: &mut SimpleMem, flags: &mut FlagBoard, now: Cycle) {
    let mut i = 0;
    while i < mem.in_flight.len() {
        if mem.in_flight[i].0 <= now {
            let (_, seq) = mem.in_flight.remove(i);
            core.mem_complete(seq, now);
        } else {
            i += 1;
        }
    }
    let latency = mem.latency;
    let in_flight = &mut mem.in_flight;
    core.tick(now, flags, &mut |iss| {
        in_flight.push((now + latency, iss.seq))
    });
}

/// Runs from cycle `start` until the core retires its last op; returns the
/// finish cycle.
fn run_from(core: &mut Core, mem: &mut SimpleMem, start: Cycle) -> Cycle {
    let mut flags = FlagBoard::new();
    for now in start..start + MAX_CYCLES {
        step(core, mem, &mut flags, now);
        if core.is_done() && mem.in_flight.is_empty() {
            return now;
        }
    }
    panic!("core did not finish within {MAX_CYCLES} cycles");
}

fn op_strategy() -> impl Strategy<Value = CoreOp> {
    prop_oneof![
        (0u64..64, 0u16..3).prop_map(|(a, d)| dep(CoreOp::load(a * 64, 1), d)),
        (0u64..64, 0u16..3).prop_map(|(a, d)| dep(CoreOp::store(a * 64, 2), d)),
        (0u16..3).prop_map(|d| dep(CoreOp::alu(), d)),
        (0u64..16).prop_map(|a| CoreOp::atomic(a * 64, 0)),
    ]
}

fn dep(op: CoreOp, d: u16) -> CoreOp {
    if d == 0 {
        op
    } else {
        op.with_dep(d)
    }
}

/// A restored clone of `state` with its own trace sink attached.
fn restored(cfg: &CoreConfig, state: &<Core as Checkpoint>::State) -> (Core, TraceHandle) {
    let mut core = Core::new(0, cfg.clone(), VecStream::new(Vec::new()));
    let root = TraceHandle::root(4096);
    core.set_trace(root.track("core0"));
    core.restore(state);
    (core, root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mid_run_checkpoint_resumes_identically(
        ops in proptest::collection::vec(op_strategy(), 1..48),
        latency in 1u64..80,
        frac_pct in 0u64..100,
    ) {
        let cfg = CoreConfig::paper();

        // Uninterrupted reference run.
        let mut reference = Core::new(0, cfg.clone(), VecStream::new(ops.clone()));
        let mut ref_mem = SimpleMem::new(latency);
        let total = run_from(&mut reference, &mut ref_mem, 0);
        let ref_stats = format!("{:?}", reference.stats());

        // Interrupted run: step to cycle k, checkpoint, keep going.
        let k = total * frac_pct / 100;
        let mut core_a = Core::new(0, cfg.clone(), VecStream::new(ops.clone()));
        let mut mem_a = SimpleMem::new(latency);
        let mut flags = FlagBoard::new();
        for now in 0..k {
            step(&mut core_a, &mut mem_a, &mut flags, now);
        }
        let state = core_a.save().expect("VecStream cores are always saveable");
        let mem_snap = mem_a.clone();

        // 1. The save itself must not perturb the remainder of the run.
        let end_a = run_from(&mut core_a, &mut mem_a, k);
        prop_assert_eq!(end_a, total);
        prop_assert_eq!(format!("{:?}", core_a.stats()), ref_stats.clone());

        // 2. Restore + resume matches the uninterrupted reference.
        let (mut core_b, trace_b) = restored(&cfg, &state);
        let mut mem_b = mem_snap.clone();
        let end_b = run_from(&mut core_b, &mut mem_b, k);
        core_b.finish_trace(end_b);
        prop_assert_eq!(end_b, total);
        prop_assert_eq!(format!("{:?}", core_b.stats()), ref_stats);

        // 3. Restore is deterministic, down to the trace events.
        let (mut core_c, trace_c) = restored(&cfg, &state);
        let mut mem_c = mem_snap.clone();
        let end_c = run_from(&mut core_c, &mut mem_c, k);
        core_c.finish_trace(end_c);
        prop_assert_eq!(end_c, end_b);
        prop_assert_eq!(
            format!("{:?}", core_c.stats()),
            format!("{:?}", core_b.stats())
        );
        let (snap_b, snap_c) = (trace_b.snapshot(), trace_c.snapshot());
        prop_assert_eq!(snap_b.events(), snap_c.events());
    }
}
