//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The mapping determines which bits of a cache-line address select the
//! channel, bank group, bank, row, and column — and therefore how much
//! channel/bank-group parallelism a given access stream enjoys. The default
//! scheme interleaves consecutive lines across channels and bank groups (as
//! server memory controllers do); an alternative column-major scheme is kept
//! for the interleaving ablation.
//!
//! Both directions are implemented: `decode` (address → coordinates) drives
//! the simulator, while `encode` (coordinates → address) lets the
//! microbenchmarks of Figure 8 construct index patterns with exact
//! row-buffer-hit and interleaving properties.

use crate::config::Organization;
use dx100_common::LineAddr;

/// DRAM coordinates of one cache-line column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Cache-line column within the row.
    pub col: u64,
}

impl DramCoord {
    /// Flat bank index within the channel (rank-major).
    pub fn bank_index(&self, org: &Organization) -> usize {
        org.bank_index(self.rank, self.bank_group, self.bank)
    }
}

/// Address-mapping schemes, named LSB-first by the field each bit range
/// selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AddrMap {
    /// `channel : bank-group : column : bank : rank : row` (LSB → MSB).
    ///
    /// Consecutive cache lines alternate channels, then bank groups, so
    /// streaming accesses achieve full channel and bank-group interleaving —
    /// the scheme the paper's baseline assumes.
    #[default]
    ChBgColBaRow,
    /// `channel : column : bank-group : bank : rank : row` (LSB → MSB).
    ///
    /// Consecutive lines walk a whole row in one bank before switching bank
    /// group; streams become `tCCD_L`-bound. Used by the interleaving
    /// ablation.
    ChColBgBaRow,
}

fn ilog2(v: usize) -> u32 {
    debug_assert!(
        v.is_power_of_two(),
        "organization dims must be powers of two"
    );
    v.trailing_zeros()
}

impl AddrMap {
    /// Decodes a cache-line address into DRAM coordinates.
    pub fn decode(self, line: LineAddr, org: &Organization) -> DramCoord {
        let mut bits = line.0;
        let mut take = |n: u32| -> u64 {
            let v = bits & ((1u64 << n) - 1);
            bits >>= n;
            v
        };
        let ch_b = ilog2(org.channels);
        let bg_b = ilog2(org.bank_groups);
        let ba_b = ilog2(org.banks_per_group);
        let ra_b = ilog2(org.ranks);
        let co_b = ilog2(org.cols_per_row as usize);
        match self {
            AddrMap::ChBgColBaRow => {
                let channel = take(ch_b) as usize;
                let bank_group = take(bg_b) as usize;
                let col = take(co_b);
                let bank = take(ba_b) as usize;
                let rank = take(ra_b) as usize;
                let row = bits;
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    col,
                }
            }
            AddrMap::ChColBgBaRow => {
                let channel = take(ch_b) as usize;
                let col = take(co_b);
                let bank_group = take(bg_b) as usize;
                let bank = take(ba_b) as usize;
                let rank = take(ra_b) as usize;
                let row = bits;
                DramCoord {
                    channel,
                    rank,
                    bank_group,
                    bank,
                    row,
                    col,
                }
            }
        }
    }

    /// Encodes DRAM coordinates back into a cache-line address; exact inverse
    /// of [`AddrMap::decode`].
    pub fn encode(self, coord: DramCoord, org: &Organization) -> LineAddr {
        let ch_b = ilog2(org.channels);
        let bg_b = ilog2(org.bank_groups);
        let ba_b = ilog2(org.banks_per_group);
        let ra_b = ilog2(org.ranks);
        let co_b = ilog2(org.cols_per_row as usize);
        let mut bits: u64 = 0;
        let mut shift: u32 = 0;
        let mut put = |v: u64, n: u32| {
            debug_assert!(n == 64 || v < (1u64 << n), "field value out of range");
            bits |= v << shift;
            shift += n;
        };
        match self {
            AddrMap::ChBgColBaRow => {
                put(coord.channel as u64, ch_b);
                put(coord.bank_group as u64, bg_b);
                put(coord.col, co_b);
                put(coord.bank as u64, ba_b);
                put(coord.rank as u64, ra_b);
                bits |= coord.row << shift;
            }
            AddrMap::ChColBgBaRow => {
                put(coord.channel as u64, ch_b);
                put(coord.col, co_b);
                put(coord.bank_group as u64, bg_b);
                put(coord.bank as u64, ba_b);
                put(coord.rank as u64, ra_b);
                bits |= coord.row << shift;
            }
        }
        LineAddr(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn org() -> Organization {
        DramConfig::ddr4_3200_2ch().organization
    }

    #[test]
    fn default_map_interleaves_channels_then_bank_groups() {
        let org = org();
        let m = AddrMap::ChBgColBaRow;
        let c0 = m.decode(LineAddr(0), &org);
        let c1 = m.decode(LineAddr(1), &org);
        let c2 = m.decode(LineAddr(2), &org);
        assert_eq!(c0.channel, 0);
        assert_eq!(c1.channel, 1);
        // After the channel bit, the next bits pick the bank group.
        assert_eq!(c2.channel, 0);
        assert_eq!(c2.bank_group, 1);
        assert_eq!(c0.bank_group, 0);
    }

    #[test]
    fn column_major_map_stays_in_one_bank_group() {
        let org = org();
        let m = AddrMap::ChColBgBaRow;
        for i in 0..(org.cols_per_row * 2) {
            let c = m.decode(LineAddr(i), &org);
            // Even lines are channel 0; all of them land in bank group 0
            // until a whole row's worth of columns has been consumed.
            if i % 2 == 0 {
                assert_eq!(c.channel, 0);
                assert_eq!(c.bank_group, 0, "line {i}");
            }
        }
    }

    #[test]
    fn encode_is_inverse_of_decode() {
        let org = org();
        for map in [AddrMap::ChBgColBaRow, AddrMap::ChColBgBaRow] {
            for raw in [0u64, 1, 2, 17, 12345, 0xf_ffff, 0xdead_beef] {
                let line = LineAddr(raw);
                let coord = map.decode(line, &org);
                assert_eq!(map.encode(coord, &org), line, "{map:?} {raw:#x}");
            }
        }
    }

    #[test]
    fn decode_fields_in_range() {
        let org = org();
        for raw in 0..4096u64 {
            let c = AddrMap::ChBgColBaRow.decode(LineAddr(raw), &org);
            assert!(c.channel < org.channels);
            assert!(c.bank_group < org.bank_groups);
            assert!(c.bank < org.banks_per_group);
            assert!(c.rank < org.ranks);
            assert!(c.col < org.cols_per_row);
        }
    }

    #[test]
    fn distinct_addresses_decode_distinctly() {
        let org = org();
        let mut seen = std::collections::HashSet::new();
        for raw in 0..8192u64 {
            let c = AddrMap::ChBgColBaRow.decode(LineAddr(raw), &org);
            assert!(seen.insert((c.channel, c.rank, c.bank_group, c.bank, c.row, c.col)));
        }
    }
}
