//! Per-bank state machine: open row tracking and intra-bank timing.

use dx100_common::Cycle;

use crate::config::DramTimings;

/// One DRAM bank: its row-buffer state plus the earliest tick at which each
/// command class may legally issue to it.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    open_row: Option<u64>,
    act_ready_at: Cycle,
    cas_ready_at: Cycle,
    pre_ready_at: Cycle,
}

impl Bank {
    /// Creates a closed bank with no pending timing constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// The row currently latched in the row buffer, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest tick an ACT may issue (assuming the bank is closed by then).
    pub fn act_ready_at(&self) -> Cycle {
        self.act_ready_at
    }

    /// Earliest tick a RD/WR may issue to the open row.
    pub fn cas_ready_at(&self) -> Cycle {
        self.cas_ready_at
    }

    /// Earliest tick a PRE may issue to the open row.
    pub fn pre_ready_at(&self) -> Cycle {
        self.pre_ready_at
    }

    /// Whether an ACT may issue at `now` (bank must be closed).
    pub fn can_act(&self, now: Cycle) -> bool {
        self.open_row.is_none() && now >= self.act_ready_at
    }

    /// Whether a RD/WR may issue at `now` to the given `row`.
    pub fn can_cas(&self, row: u64, now: Cycle) -> bool {
        self.open_row == Some(row) && now >= self.cas_ready_at
    }

    /// Whether a PRE may issue at `now` (bank must be open).
    pub fn can_pre(&self, now: Cycle) -> bool {
        self.open_row.is_some() && now >= self.pre_ready_at
    }

    /// Issues ACT: opens `row` and arms tRCD / tRAS / tRC constraints.
    ///
    /// # Panics
    /// Debug-panics if called while [`Bank::can_act`] is false.
    pub fn issue_act(&mut self, row: u64, now: Cycle, t: &DramTimings) {
        debug_assert!(self.can_act(now), "ACT issued while not ready");
        self.open_row = Some(row);
        self.cas_ready_at = now + t.t_rcd;
        self.pre_ready_at = now + t.t_ras;
        // tRC lower-bounds the next ACT even if PRE happens early.
        self.act_ready_at = now + t.t_rc();
    }

    /// Issues a column access; arms read-to-precharge or write-recovery.
    ///
    /// # Panics
    /// Debug-panics if called while [`Bank::can_cas`] is false.
    pub fn issue_cas(&mut self, row: u64, is_write: bool, now: Cycle, t: &DramTimings) {
        debug_assert!(self.can_cas(row, now), "CAS issued while not ready");
        let pre_after = if is_write {
            // Write data appears after CWL, occupies tBL, then tWR recovery.
            now + t.cwl + t.t_bl + t.t_wr
        } else {
            now + t.t_rtp
        };
        self.pre_ready_at = self.pre_ready_at.max(pre_after);
    }

    /// Issues PRE: closes the row and arms tRP before the next ACT.
    ///
    /// # Panics
    /// Debug-panics if called while [`Bank::can_pre`] is false.
    pub fn issue_pre(&mut self, now: Cycle, t: &DramTimings) {
        debug_assert!(self.can_pre(now), "PRE issued while not ready");
        self.open_row = None;
        self.act_ready_at = self.act_ready_at.max(now + t.t_rp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::ddr4_3200()
    }

    #[test]
    fn act_then_cas_respects_trcd() {
        let t = t();
        let mut b = Bank::new();
        assert!(b.can_act(0));
        b.issue_act(7, 0, &t);
        assert_eq!(b.open_row(), Some(7));
        assert!(!b.can_cas(7, t.t_rcd - 1));
        assert!(b.can_cas(7, t.t_rcd));
        assert!(!b.can_cas(8, t.t_rcd), "wrong row must not be accessible");
    }

    #[test]
    fn pre_respects_tras_and_trp() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(1, 0, &t);
        assert!(!b.can_pre(t.t_ras - 1));
        assert!(b.can_pre(t.t_ras));
        b.issue_pre(t.t_ras, &t);
        assert!(b.open_row().is_none());
        assert!(!b.can_act(t.t_ras + t.t_rp - 1));
        assert!(b.can_act(t.t_ras + t.t_rp));
    }

    #[test]
    fn read_to_pre_respects_trtp() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(1, 0, &t);
        let cas_at = t.t_ras; // late enough that tRAS is already satisfied
        b.issue_cas(1, false, cas_at, &t);
        assert!(!b.can_pre(cas_at + t.t_rtp - 1));
        assert!(b.can_pre(cas_at + t.t_rtp));
    }

    #[test]
    fn write_recovery_delays_pre() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(1, 0, &t);
        let cas_at = t.t_ras;
        b.issue_cas(1, true, cas_at, &t);
        let wr_done = cas_at + t.cwl + t.t_bl + t.t_wr;
        assert!(!b.can_pre(wr_done - 1));
        assert!(b.can_pre(wr_done));
    }

    #[test]
    fn trc_limits_back_to_back_acts() {
        let t = t();
        let mut b = Bank::new();
        b.issue_act(1, 0, &t);
        // Precharge as early as legal...
        b.issue_pre(t.t_ras, &t);
        // ...but the next ACT still cannot beat tRC.
        assert!(!b.can_act(t.t_rc() - 1));
        assert!(b.can_act(t.t_rc()));
    }
}
