//! FR-FCFS memory controller for one channel.
//!
//! First-Ready, First-Come-First-Served: column accesses that hit an open row
//! issue before older requests that need a row switch, which maximizes
//! row-buffer hits within the visibility window of the request buffer
//! (32 entries per channel, Table 3). The paper's core observation is that
//! this window is far too small for sparse indirect accesses — DX100's Row
//! Table widens effective visibility to an entire 16K-element tile *before*
//! requests ever reach this buffer.

use std::collections::VecDeque;

use dx100_common::{Cycle, DelayQueue, LineAddr, ReqId, TraceHandle};

use crate::channel::Channel;
use crate::config::DramConfig;
use crate::mapping::DramCoord;
use crate::profile::{CasOutcome, ChannelProfile};
use crate::stats::DramStats;
use crate::{MemRequest, MemResponse};

/// The request buffer in struct-of-arrays layout.
///
/// The FR-FCFS scheduler scans the buffer several times per tick (the CAS,
/// ACT, and PRE phases, plus the `next_event` probe under cycle skipping),
/// and each scan touches only two or three fields per entry. Parallel flat
/// vectors keep a scan inside a handful of cache lines instead of striding
/// over wide array-of-struct entries. FIFO age order *is* the vector order;
/// removal shifts the tail, which is fine at 32 entries (Table 3).
#[derive(Clone, Debug, Default)]
struct RequestBuffer {
    ids: Vec<ReqId>,
    lines: Vec<LineAddr>,
    is_write: Vec<bool>,
    rows: Vec<u64>,
    bank_idx: Vec<usize>,
    bank_group: Vec<usize>,
    rank: Vec<usize>,
    arrived_at: Vec<Cycle>,
    /// Whether this request triggered its own ACT (row miss) — used for the
    /// row-buffer hit-rate statistic.
    caused_act: Vec<bool>,
    /// Whether this request forced a PRE first (row conflict) — refines the
    /// profiled per-bank miss/conflict split.
    caused_pre: Vec<bool>,
}

/// What one controller tick did, for the profiled cmd/refresh/idle split.
#[derive(Clone, Copy)]
enum TickWork {
    /// A command issued this tick (CAS, ACT, PRE, or a refresh start).
    Command,
    /// The channel was blocked inside a tRFC refresh window.
    Refreshing,
    /// Nothing issued.
    Idle,
}

/// One request popped out of the [`RequestBuffer`] for issue.
struct Issued {
    id: ReqId,
    line: LineAddr,
    is_write: bool,
    row: u64,
    bank_idx: usize,
    bank_group: usize,
    arrived_at: Cycle,
    caused_act: bool,
    caused_pre: bool,
}

impl RequestBuffer {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn push(&mut self, req: MemRequest, coord: DramCoord, bank_idx: usize, now: Cycle) {
        self.ids.push(req.id);
        self.lines.push(req.line);
        self.is_write.push(req.is_write);
        self.rows.push(coord.row);
        self.bank_idx.push(bank_idx);
        self.bank_group.push(coord.bank_group);
        self.rank.push(coord.rank);
        self.arrived_at.push(now);
        self.caused_act.push(false);
        self.caused_pre.push(false);
    }

    fn remove(&mut self, i: usize) -> Issued {
        let issued = Issued {
            id: self.ids.remove(i),
            line: self.lines.remove(i),
            is_write: self.is_write.remove(i),
            row: self.rows.remove(i),
            bank_idx: self.bank_idx.remove(i),
            bank_group: self.bank_group.remove(i),
            arrived_at: self.arrived_at.remove(i),
            caused_act: self.caused_act.remove(i),
            caused_pre: self.caused_pre.remove(i),
        };
        self.rank.remove(i);
        issued
    }
}

/// FR-FCFS controller and its channel.
#[derive(Clone, Debug)]
pub struct ChannelController {
    #[allow(dead_code)]
    channel_id: usize,
    config: DramConfig,
    channel: Channel,
    buffer: RequestBuffer,
    /// Reads whose data burst is in flight.
    in_flight: DelayQueue<MemResponse>,
    stats: DramStats,
    /// Next refresh due time (tREFI cadence).
    next_refresh: Cycle,
    /// While set, the channel is mid-refresh and issues nothing.
    refresh_until: Cycle,
    /// Event sink for DRAM command tracing (`None` = tracing disabled).
    trace: Option<TraceHandle>,
    /// Tick attribution + per-bank CAS profile (`None` = profiling off).
    profile: Option<ChannelProfile>,
}

impl ChannelController {
    /// Creates a controller for channel `channel_id`.
    pub fn new(channel_id: usize, config: DramConfig) -> Self {
        let next_refresh = config.timings.t_refi;
        ChannelController {
            channel_id,
            channel: Channel::new(config.clone()),
            config,
            buffer: RequestBuffer::default(),
            in_flight: DelayQueue::new(),
            stats: DramStats::default(),
            next_refresh,
            refresh_until: 0,
            trace: None,
            profile: None,
        }
    }

    /// Turns on per-tick attribution and per-bank CAS profiling.
    pub fn enable_profile(&mut self) {
        self.profile = Some(ChannelProfile::new(self.channel.num_banks()));
    }

    /// The channel's attribution profile (`None` when profiling is off).
    pub fn profile(&self) -> Option<&ChannelProfile> {
        self.profile.as_ref()
    }

    /// Attaches an event sink; commands (ACT/PRE instants, RD/WR/REF spans)
    /// are recorded onto it from then on.
    pub fn set_trace(&mut self, handle: TraceHandle) {
        self.trace = Some(handle);
    }

    /// Free request-buffer slots.
    pub fn free_slots(&self) -> usize {
        self.config.request_buffer_size - self.buffer.len()
    }

    /// Attempts to accept a request; `false` when the buffer is full.
    pub fn try_enqueue(&mut self, req: MemRequest, coord: DramCoord, now: Cycle) -> bool {
        if self.buffer.len() >= self.config.request_buffer_size {
            return false;
        }
        let bank_idx = coord.bank_index(&self.config.organization);
        self.buffer.push(req, coord, bank_idx, now);
        true
    }

    /// Whether the controller has no buffered or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.buffer.is_empty() && self.in_flight.is_empty()
    }

    /// Statistics for this channel.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears statistics (ROI boundaries).
    pub fn reset_stats(&mut self) {
        let busy_base = self.channel.data_busy_ticks;
        let act_base = self.channel.activates;
        let pre_base = self.channel.precharges;
        self.stats = DramStats {
            data_busy_base: busy_base,
            act_base,
            pre_base,
            ..DramStats::default()
        };
        if self.profile.is_some() {
            self.profile = Some(ChannelProfile::new(self.channel.num_banks()));
        }
    }

    /// Advances one DRAM tick: deliver completed reads, sample occupancy,
    /// issue at most one command.
    pub fn tick(&mut self, now: Cycle, responses: &mut VecDeque<MemResponse>) {
        while let Some(resp) = self.in_flight.pop_ready(now) {
            responses.push_back(resp);
        }
        self.stats.ticks += 1;
        self.stats
            .occupancy
            .sample(self.buffer.len() as f64 / self.config.request_buffer_size as f64);
        self.stats.data_busy_ticks = self.channel.data_busy_ticks - self.stats.data_busy_base;
        self.stats.activates = self.channel.activates - self.stats.act_base;
        self.stats.precharges = self.channel.precharges - self.stats.pre_base;
        if let Some(p) = &mut self.profile {
            p.queue_depth.record(self.buffer.len() as u64);
        }

        let work = self.schedule(now, responses);
        if let Some(p) = &mut self.profile {
            match work {
                TickWork::Command => p.cmd_ticks += 1,
                TickWork::Refreshing => p.refresh_ticks += 1,
                TickWork::Idle => p.idle_ticks += 1,
            }
        }
    }

    /// The command-scheduling half of [`ChannelController::tick`], returning
    /// what kind of work (if any) this tick performed.
    fn schedule(&mut self, now: Cycle, responses: &mut VecDeque<MemResponse>) -> TickWork {
        // Refresh: at tREFI cadence, drain (precharge) every bank, then
        // block the channel for tRFC.
        if now < self.refresh_until {
            return TickWork::Refreshing;
        }
        if now >= self.next_refresh {
            if self.all_banks_closed() {
                self.refresh_until = now + self.config.timings.t_rfc;
                self.next_refresh += self.config.timings.t_refi;
                self.stats.refreshes += 1;
                if let Some(t) = &self.trace {
                    t.span("dram", "REF", now, self.refresh_until);
                }
                return TickWork::Command;
            }
            // Close open banks as their timing allows; no new ACT/CAS.
            return if self.drain_for_refresh(now) {
                TickWork::Command
            } else {
                TickWork::Idle
            };
        }

        if self.buffer.is_empty() {
            return TickWork::Idle;
        }

        // Starvation escape hatch: when the oldest request has waited too
        // long, consider only that request for every phase this tick.
        let starving =
            now.saturating_sub(self.buffer.arrived_at[0]) > self.config.starvation_threshold;

        if self.try_issue_cas(now, responses, starving)
            || self.try_issue_act(now, starving)
            || self.try_issue_pre(now, starving)
        {
            TickWork::Command
        } else {
            TickWork::Idle
        }
    }

    fn all_banks_closed(&self) -> bool {
        (0..self.channel.num_banks()).all(|b| self.channel.bank(b).open_row().is_none())
    }

    fn drain_for_refresh(&mut self, now: Cycle) -> bool {
        for b in 0..self.channel.num_banks() {
            if self.channel.bank(b).open_row().is_some() && self.channel.can_pre(b, now) {
                self.channel.issue_pre(b, now);
                if let Some(t) = &self.trace {
                    t.instant("dram", format!("PRE b{b}"), now);
                }
                return true;
            }
        }
        false
    }

    /// Phase 1: oldest pending request whose row is open and whose CAS is
    /// timing-ready, with no older conflicting same-line access.
    fn try_issue_cas(
        &mut self,
        now: Cycle,
        responses: &mut VecDeque<MemResponse>,
        starving: bool,
    ) -> bool {
        let limit = if starving { 1 } else { self.buffer.len() };
        // Open-row index: one bit per bank whose open row is CAS-timing-ready
        // at `now`. Most ticks under load have zero or few ready banks, so
        // the per-request test collapses to a bitmask probe instead of
        // re-deriving the full bank + channel timing chain per entry.
        let mut bank_ready = 0u64;
        for b in 0..self.channel.num_banks() {
            let bank = self.channel.bank(b);
            if bank.open_row().is_some() && now >= bank.cas_ready_at() {
                bank_ready |= 1u64 << b;
            }
        }
        if bank_ready == 0 {
            return false;
        }
        // Channel-level readiness depends only on (bank group, direction);
        // memoize it lazily across the scan. The scan itself touches only
        // the `bank_idx`/`rows` columns until a candidate passes the bank
        // filter, which is the common early-out under load.
        let mut ch_ready = [[None::<bool>; 2]; 8];
        let mut chosen = None;
        'outer: for i in 0..limit {
            let (bank_idx, row) = (self.buffer.bank_idx[i], self.buffer.rows[i]);
            if bank_ready & (1u64 << bank_idx) == 0
                || self.channel.bank(bank_idx).open_row() != Some(row)
            {
                continue;
            }
            let (bg, is_write) = (self.buffer.bank_group[i], self.buffer.is_write[i]);
            let dir = is_write as usize;
            let ready = if bg < ch_ready.len() {
                *ch_ready[bg][dir]
                    .get_or_insert_with(|| self.channel.cas_channel_ready(bg, is_write, now))
            } else {
                self.channel.cas_channel_ready(bg, is_write, now)
            };
            if !ready {
                continue;
            }
            // Never reorder conflicting accesses to the same line: an older
            // pending access (read or write) to the same line must go first.
            let line = self.buffer.lines[i];
            for j in 0..i {
                if self.buffer.lines[j] == line && (self.buffer.is_write[j] || is_write) {
                    continue 'outer;
                }
            }
            chosen = Some(i);
            break;
        }
        let Some(i) = chosen else { return false };
        let p = self.buffer.remove(i);
        let data_end = self
            .channel
            .issue_cas(p.bank_idx, p.bank_group, p.row, p.is_write, now);
        if let Some(t) = &self.trace {
            let op = if p.is_write { "WR" } else { "RD" };
            t.span("dram", format!("{op} b{}", p.bank_idx), now, data_end);
        }
        self.stats.row_hits_misses.record(!p.caused_act);
        self.stats.queue_latency.sample((now - p.arrived_at) as f64);
        if let Some(prof) = &mut self.profile {
            let outcome = if !p.caused_act {
                CasOutcome::Hit
            } else if p.caused_pre {
                CasOutcome::Conflict
            } else {
                CasOutcome::Miss
            };
            prof.record_cas(p.bank_idx, outcome);
        }
        if p.is_write {
            self.stats.writes += 1;
            responses.push_back(MemResponse {
                id: p.id,
                line: p.line,
                is_write: true,
                finished_at: data_end,
            });
        } else {
            self.stats.reads += 1;
            self.in_flight.push_at(
                data_end,
                MemResponse {
                    id: p.id,
                    line: p.line,
                    is_write: false,
                    finished_at: data_end,
                },
            );
        }
        true
    }

    /// Phase 2: ACT for the oldest request per closed bank.
    fn try_issue_act(&mut self, now: Cycle, starving: bool) -> bool {
        let limit = if starving { 1 } else { self.buffer.len() };
        let mut banks_seen = 0u64;
        for i in 0..limit {
            let bank_idx = self.buffer.bank_idx[i];
            let bank_bit = 1u64 << bank_idx;
            if banks_seen & bank_bit != 0 {
                continue; // an older request already owns this bank's next command
            }
            banks_seen |= bank_bit;
            if self.channel.bank(bank_idx).open_row().is_some() {
                continue;
            }
            let (rank, bg) = (self.buffer.rank[i], self.buffer.bank_group[i]);
            if self.channel.can_act(bank_idx, rank, bg, now) {
                let row = self.buffer.rows[i];
                self.buffer.caused_act[i] = true;
                self.channel.issue_act(bank_idx, rank, bg, row, now);
                if let Some(t) = &self.trace {
                    t.instant("dram", format!("ACT b{bank_idx}"), now);
                }
                return true;
            }
        }
        false
    }

    /// Phase 3: PRE a bank whose open row serves no pending request, on
    /// behalf of the oldest request that needs that bank.
    fn try_issue_pre(&mut self, now: Cycle, starving: bool) -> bool {
        let limit = if starving { 1 } else { self.buffer.len() };
        let mut banks_seen = 0u64;
        for i in 0..limit {
            let bank_idx = self.buffer.bank_idx[i];
            let bank_bit = 1u64 << bank_idx;
            if banks_seen & bank_bit != 0 {
                continue;
            }
            banks_seen |= bank_bit;
            let Some(open) = self.channel.bank(bank_idx).open_row() else {
                continue;
            };
            if open == self.buffer.rows[i] {
                continue;
            }
            // Keep the row open while any pending request can still use it —
            // unless we are in starvation mode, where the oldest wins.
            if !starving
                && self
                    .buffer
                    .bank_idx
                    .iter()
                    .zip(&self.buffer.rows)
                    .any(|(&b, &r)| b == bank_idx && r == open)
            {
                continue;
            }
            if self.channel.can_pre(bank_idx, now) {
                self.buffer.caused_pre[i] = true;
                self.channel.issue_pre(bank_idx, now);
                if let Some(t) = &self.trace {
                    t.instant("dram", format!("PRE b{bank_idx}"), now);
                }
                return true;
            }
        }
        false
    }

    /// Earliest DRAM tick ≥ `from` at which [`ChannelController::tick`]
    /// might do more than bookkeeping: deliver a completed read, start or
    /// progress a refresh, or have some command become timing-legal.
    ///
    /// The bound is *conservative* (it may name a tick where nothing issues
    /// after all — e.g. a PRE suppressed by the keep-row-open policy) but
    /// never late: while the controller's state is frozen, no command can
    /// become legal before the returned tick. Returning `Some(t) > from`
    /// therefore certifies that every tick in `[from, t)` takes the
    /// bookkeeping-only path, which [`ChannelController::credit_idle_ticks`]
    /// reproduces exactly.
    pub fn next_event(&self, from: Cycle) -> Option<Cycle> {
        let mut ev: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            ev = Some(match ev {
                Some(e) if e <= t => e,
                _ => t,
            })
        };
        if let Some(t) = self.in_flight.next_ready_at() {
            consider(t);
        }
        // Mid-refresh the channel issues nothing until `refresh_until`; only
        // response delivery can happen earlier.
        if from < self.refresh_until {
            consider(self.refresh_until);
            return ev;
        }
        consider(self.next_refresh);
        if from >= self.next_refresh {
            // Refresh drain in progress: PREs may issue as banks allow.
            // Treat as active now rather than modeling the drain schedule.
            consider(from);
            return ev;
        }
        if self.buffer.is_empty() {
            return ev;
        }
        // Starvation onset switches the scheduler into oldest-first mode,
        // which can unlock PREs the keep-row-open policy was suppressing.
        let onset = self.buffer.arrived_at[0] + self.config.starvation_threshold + 1;
        if onset > from {
            consider(onset);
        }
        // Per-request earliest command-legal tick, scanning the full buffer
        // (a superset of the starving scan, so never late in either mode).
        for i in 0..self.buffer.len() {
            let bank_idx = self.buffer.bank_idx[i];
            match self.channel.bank(bank_idx).open_row() {
                Some(row) if row == self.buffer.rows[i] => consider(self.channel.cas_ready_tick(
                    bank_idx,
                    self.buffer.bank_group[i],
                    self.buffer.is_write[i],
                )),
                Some(_) => consider(self.channel.pre_ready_tick(bank_idx)),
                None => consider(self.channel.act_ready_tick(
                    bank_idx,
                    self.buffer.rank[i],
                    self.buffer.bank_group[i],
                )),
            }
        }
        ev
    }

    /// Credits `n` skipped ticks' worth of bookkeeping starting at tick
    /// `from`: bit-identical to `n` [`ChannelController::tick`] calls that
    /// each took the bookkeeping-only path. The derived counters
    /// (`data_busy_ticks`, `activates`, `precharges`) are snapshots
    /// re-assigned on every real tick and cannot move while no command
    /// issues, so they need no update here.
    ///
    /// The skip certificate guarantees the span is command-free, but it may
    /// still overlap a tRFC refresh window (`next_event` names
    /// `refresh_until` as the next event, so the span ends at or before it).
    /// The profiled refresh/idle split therefore falls out of the frozen
    /// `refresh_until` watermark.
    pub fn credit_idle_ticks(&mut self, from: Cycle, n: u64) {
        self.stats.ticks += n;
        self.stats.occupancy.sample_n(
            self.buffer.len() as f64 / self.config.request_buffer_size as f64,
            n,
        );
        if let Some(p) = &mut self.profile {
            p.queue_depth.record_n(self.buffer.len() as u64, n);
            let refreshing = n.min(self.refresh_until.saturating_sub(from));
            p.refresh_ticks += refreshing;
            p.idle_ticks += n - refreshing;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddrMap;
    use dx100_common::LineAddr;

    fn run_until_drained(ctrl: &mut ChannelController, max_ticks: Cycle) -> Vec<MemResponse> {
        let mut out = VecDeque::new();
        let mut now = 0;
        while !ctrl.is_idle() {
            ctrl.tick(now, &mut out);
            now += 1;
            assert!(
                now < max_ticks,
                "controller did not drain in {max_ticks} ticks"
            );
        }
        out.into()
    }

    fn enqueue_line(
        ctrl: &mut ChannelController,
        cfg: &DramConfig,
        id: u64,
        line: LineAddr,
        write: bool,
    ) {
        let coord = cfg.addr_map.decode(line, &cfg.organization);
        assert_eq!(coord.channel, 0, "test lines must map to channel 0");
        let req = if write {
            MemRequest::write(id, line)
        } else {
            MemRequest::read(id, line)
        };
        assert!(ctrl.try_enqueue(req, coord, 0));
    }

    /// Build a line address with chosen row/col in channel 0, bank 0, bg 0.
    fn line(cfg: &DramConfig, row: u64, col: u64) -> LineAddr {
        AddrMap::ChBgColBaRow.encode(
            DramCoord {
                channel: 0,
                rank: 0,
                bank_group: 0,
                bank: 0,
                row,
                col,
            },
            &cfg.organization,
        )
    }

    #[test]
    fn single_read_completes_with_cold_latency() {
        let cfg = DramConfig::ddr4_3200_2ch();
        let mut ctrl = ChannelController::new(0, cfg.clone());
        enqueue_line(&mut ctrl, &cfg, 1, line(&cfg, 3, 5), false);
        let resps = run_until_drained(&mut ctrl, 1000);
        assert_eq!(resps.len(), 1);
        let t = &cfg.timings;
        // ACT at 0, CAS at tRCD, data done at tRCD + CL + tBL.
        assert_eq!(resps[0].finished_at, t.t_rcd + t.cl + t.t_bl);
    }

    #[test]
    fn fr_fcfs_reorders_for_row_hits() {
        let cfg = DramConfig::ddr4_3200_2ch();
        let mut ctrl = ChannelController::new(0, cfg.clone());
        // Row 1, then row 2, then row 1 again: FR-FCFS should serve both
        // row-1 requests before switching, giving 1 hit in 3 accesses.
        enqueue_line(&mut ctrl, &cfg, 1, line(&cfg, 1, 0), false);
        enqueue_line(&mut ctrl, &cfg, 2, line(&cfg, 2, 0), false);
        enqueue_line(&mut ctrl, &cfg, 3, line(&cfg, 1, 1), false);
        let resps = run_until_drained(&mut ctrl, 10_000);
        let order: Vec<u64> = resps.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![1, 3, 2], "row-hit request must jump the queue");
        let s = ctrl.stats();
        assert_eq!(s.row_hits_misses.hits(), 1);
        assert_eq!(s.row_hits_misses.misses(), 2);
    }

    #[test]
    fn same_line_raw_never_reorders() {
        let cfg = DramConfig::ddr4_3200_2ch();
        let mut ctrl = ChannelController::new(0, cfg.clone());
        let l = line(&cfg, 1, 0);
        enqueue_line(&mut ctrl, &cfg, 1, l, true); // write
        enqueue_line(&mut ctrl, &cfg, 2, l, false); // read of same line
        let resps = run_until_drained(&mut ctrl, 10_000);
        // The write command must issue before the read command even though
        // both are row hits once open.
        let widx = resps.iter().position(|r| r.id == 1).unwrap();
        let ridx = resps.iter().position(|r| r.id == 2).unwrap();
        // Write CAS issues first; its ack may be queued after the read's
        // completion only if its data time were later — check issue order via
        // finished_at ordering instead.
        assert!(resps[widx].finished_at <= resps[ridx].finished_at || widx < ridx);
    }

    #[test]
    fn buffer_back_pressure() {
        let cfg = DramConfig::ddr4_3200_2ch();
        let mut ctrl = ChannelController::new(0, cfg.clone());
        for i in 0..cfg.request_buffer_size as u64 {
            enqueue_line(&mut ctrl, &cfg, i, line(&cfg, i, 0), false);
        }
        assert_eq!(ctrl.free_slots(), 0);
        let coord = cfg.addr_map.decode(line(&cfg, 99, 0), &cfg.organization);
        assert!(!ctrl.try_enqueue(MemRequest::read(999, line(&cfg, 99, 0)), coord, 0));
    }

    #[test]
    fn starving_request_eventually_served() {
        let mut cfg = DramConfig::ddr4_3200_2ch();
        cfg.starvation_threshold = 200;
        let mut ctrl = ChannelController::new(0, cfg.clone());
        // One old request to row 2 buried under a stream of row-1 hits.
        enqueue_line(&mut ctrl, &cfg, 100, line(&cfg, 1, 0), false);
        enqueue_line(&mut ctrl, &cfg, 200, line(&cfg, 2, 0), false);
        let mut out = VecDeque::new();
        let mut now = 0;
        let mut col = 1;
        let mut done_at = None;
        while done_at.is_none() && now < 100_000 {
            // Keep refilling row-1 hits so FR would starve row 2 forever.
            if ctrl.free_slots() > 0 {
                let l = line(&cfg, 1, col % cfg.organization.cols_per_row);
                let coord = cfg.addr_map.decode(l, &cfg.organization);
                ctrl.try_enqueue(MemRequest::read(1000 + col, l), coord, now);
                col += 1;
            }
            ctrl.tick(now, &mut out);
            if out.iter().any(|r| r.id == 200) {
                done_at = Some(now);
            }
            out.clear();
            now += 1;
        }
        assert!(done_at.is_some(), "request to row 2 starved");
    }

    #[test]
    fn streaming_reads_saturate_bandwidth() {
        // A full row of consecutive columns across all 4 bank groups should
        // approach one burst per tCCD_S once rows are open.
        let cfg = DramConfig::ddr4_3200_2ch();
        let mut ctrl = ChannelController::new(0, cfg.clone());
        let mut out = VecDeque::new();
        let mut now = 0;
        let mut sent = 0u64;
        let total = 512u64;
        let mut got = 0;
        while got < total && now < 200_000 {
            // Stream across bank groups: line addresses with channel bit 0.
            while sent < total && ctrl.free_slots() > 0 {
                let l = LineAddr(sent * cfg.organization.channels as u64);
                let coord = cfg.addr_map.decode(l, &cfg.organization);
                assert_eq!(coord.channel, 0);
                ctrl.try_enqueue(MemRequest::read(sent, l), coord, now);
                sent += 1;
            }
            ctrl.tick(now, &mut out);
            got += out.len() as u64;
            out.clear();
            now += 1;
        }
        assert_eq!(got, total);
        let s = ctrl.stats();
        let util = s.data_busy_ticks as f64 / s.ticks as f64;
        assert!(util > 0.75, "streaming utilization too low: {util}");
        assert!(s.row_hits_misses.rate() > 0.9, "stream should be row hits");
    }
}
