//! Per-channel command issue: cross-bank timing (tCCD, tRRD, tFAW),
//! data-bus occupancy, and read/write turnaround.

use std::collections::VecDeque;

use dx100_common::Cycle;

use crate::bank::Bank;
use crate::config::DramConfig;

/// Record of the last column access on the channel, used for tCCD and
/// turnaround constraints.
#[derive(Debug, Clone, Copy)]
struct LastCas {
    tick: Cycle,
    bank_group: usize,
    is_write: bool,
}

/// One DRAM channel: its banks plus every cross-bank timing resource.
///
/// The channel issues at most one command per tick (shared command bus) and
/// tracks data-bus occupancy so bandwidth utilization can be measured as the
/// busy fraction of data-bus ticks.
#[derive(Clone, Debug)]
pub struct Channel {
    config: DramConfig,
    banks: Vec<Bank>,
    last_cas: Option<LastCas>,
    /// Per-rank sliding window of recent ACT ticks (tFAW).
    act_window: Vec<VecDeque<Cycle>>,
    /// Per-rank last ACT (tick, bank_group) for tRRD.
    last_act: Vec<Option<(Cycle, usize)>>,
    data_busy_until: Cycle,
    /// Total ticks of data-bus occupancy (bandwidth numerator).
    pub data_busy_ticks: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
}

impl Channel {
    /// Creates a channel with all banks closed.
    pub fn new(config: DramConfig) -> Self {
        let nbanks = config.organization.banks_per_channel();
        let ranks = config.organization.ranks;
        Channel {
            config,
            banks: (0..nbanks).map(|_| Bank::new()).collect(),
            last_cas: None,
            act_window: (0..ranks).map(|_| VecDeque::new()).collect(),
            last_act: vec![None; ranks],
            data_busy_until: 0,
            data_busy_ticks: 0,
            activates: 0,
            precharges: 0,
        }
    }

    /// Shared access to a bank's state.
    pub fn bank(&self, idx: usize) -> &Bank {
        &self.banks[idx]
    }

    /// Number of banks in this channel.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Earliest tick a CAS to `bank_group` may issue given channel-level
    /// constraints (tCCD_S/L, turnaround, data bus).
    fn cas_channel_ready_at(&self, bank_group: usize, is_write: bool) -> Cycle {
        let t = &self.config.timings;
        let mut ready = 0;
        if let Some(last) = self.last_cas {
            let ccd = if last.bank_group == bank_group {
                t.t_ccd_l
            } else {
                t.t_ccd_s
            };
            ready = ready.max(last.tick + ccd);
            match (last.is_write, is_write) {
                // Write → read: wait for write data plus tWTR.
                (true, false) => {
                    let wtr = if last.bank_group == bank_group {
                        t.t_wtr_l
                    } else {
                        t.t_wtr_s
                    };
                    ready = ready.max(last.tick + t.cwl + t.t_bl + wtr);
                }
                // Read → write: write data must not collide with read data.
                (false, true) => {
                    ready = ready.max(last.tick + t.cl + t.t_bl + 2 - t.cwl);
                }
                _ => {}
            }
        }
        // Data bus: the new burst must start after the previous burst ends.
        let data_latency = if is_write { t.cwl } else { t.cl };
        if self.data_busy_until > data_latency {
            ready = ready.max(self.data_busy_until - data_latency);
        }
        ready
    }

    /// Whether a CAS may issue at `now` to (`bank_idx`, `bank_group`, `row`).
    pub fn can_cas(
        &self,
        bank_idx: usize,
        bank_group: usize,
        row: u64,
        is_write: bool,
        now: Cycle,
    ) -> bool {
        self.banks[bank_idx].can_cas(row, now)
            && now >= self.cas_channel_ready_at(bank_group, is_write)
    }

    /// Whether channel-level constraints alone (tCCD, turnaround, data bus)
    /// allow a CAS to `bank_group` at `now`. Bank-level state is *not*
    /// checked; the FR-FCFS scan pairs this with a per-bank readiness index.
    pub fn cas_channel_ready(&self, bank_group: usize, is_write: bool, now: Cycle) -> bool {
        now >= self.cas_channel_ready_at(bank_group, is_write)
    }

    /// Earliest tick a CAS may issue to (`bank_idx`, `bank_group`), assuming
    /// the target row is already open. Channel state is taken as frozen: the
    /// bound is only valid while no intervening command issues.
    pub fn cas_ready_tick(&self, bank_idx: usize, bank_group: usize, is_write: bool) -> Cycle {
        self.banks[bank_idx]
            .cas_ready_at()
            .max(self.cas_channel_ready_at(bank_group, is_write))
    }

    /// Earliest tick an ACT may issue to (`bank_idx`, `rank`, `bank_group`),
    /// assuming the bank is (and stays) closed. Channel state is taken as
    /// frozen, as for [`Channel::cas_ready_tick`].
    pub fn act_ready_tick(&self, bank_idx: usize, rank: usize, bank_group: usize) -> Cycle {
        let t = &self.config.timings;
        let mut ready = self.banks[bank_idx].act_ready_at();
        if let Some((last, last_bg)) = self.last_act[rank] {
            let rrd = if last_bg == bank_group {
                t.t_rrd_l
            } else {
                t.t_rrd_s
            };
            ready = ready.max(last + rrd);
        }
        let window = &self.act_window[rank];
        if window.len() >= 4 {
            ready = ready.max(window[window.len() - 4] + t.t_faw);
        }
        ready
    }

    /// Earliest tick a PRE may issue to `bank_idx`, assuming its row stays
    /// open until then.
    pub fn pre_ready_tick(&self, bank_idx: usize) -> Cycle {
        self.banks[bank_idx].pre_ready_at()
    }

    /// Issues a CAS; returns the tick at which the data burst completes
    /// (read data available / write data absorbed).
    ///
    /// # Panics
    /// Debug-panics if [`Channel::can_cas`] is false at `now`.
    pub fn issue_cas(
        &mut self,
        bank_idx: usize,
        bank_group: usize,
        row: u64,
        is_write: bool,
        now: Cycle,
    ) -> Cycle {
        debug_assert!(self.can_cas(bank_idx, bank_group, row, is_write, now));
        let t = &self.config.timings;
        self.banks[bank_idx].issue_cas(row, is_write, now, t);
        let data_latency = if is_write { t.cwl } else { t.cl };
        let data_start = now + data_latency;
        let data_end = data_start + t.t_bl;
        self.data_busy_until = data_end;
        self.data_busy_ticks += t.t_bl;
        self.last_cas = Some(LastCas {
            tick: now,
            bank_group,
            is_write,
        });
        data_end
    }

    /// Whether an ACT may issue at `now` to (`bank_idx`, rank, bank group).
    pub fn can_act(&self, bank_idx: usize, rank: usize, bank_group: usize, now: Cycle) -> bool {
        if !self.banks[bank_idx].can_act(now) {
            return false;
        }
        let t = &self.config.timings;
        // tRRD against the previous ACT in the same rank.
        if let Some((last, last_bg)) = self.last_act[rank] {
            let rrd = if last_bg == bank_group {
                t.t_rrd_l
            } else {
                t.t_rrd_s
            };
            if now < last + rrd {
                return false;
            }
        }
        // tFAW: at most 4 ACTs per rank per window.
        let window = &self.act_window[rank];
        if window.len() >= 4 {
            let fourth_back = window[window.len() - 4];
            if now < fourth_back + t.t_faw {
                return false;
            }
        }
        true
    }

    /// Issues an ACT opening `row`.
    ///
    /// # Panics
    /// Debug-panics if [`Channel::can_act`] is false at `now`.
    pub fn issue_act(
        &mut self,
        bank_idx: usize,
        rank: usize,
        bank_group: usize,
        row: u64,
        now: Cycle,
    ) {
        debug_assert!(self.can_act(bank_idx, rank, bank_group, now));
        let t = self.config.timings.clone();
        self.banks[bank_idx].issue_act(row, now, &t);
        self.last_act[rank] = Some((now, bank_group));
        let window = &mut self.act_window[rank];
        window.push_back(now);
        while window.len() > 4 {
            window.pop_front();
        }
        self.activates += 1;
    }

    /// Whether a PRE may issue at `now` to `bank_idx`.
    pub fn can_pre(&self, bank_idx: usize, now: Cycle) -> bool {
        self.banks[bank_idx].can_pre(now)
    }

    /// Issues a PRE closing the bank's open row.
    ///
    /// # Panics
    /// Debug-panics if [`Channel::can_pre`] is false at `now`.
    pub fn issue_pre(&mut self, bank_idx: usize, now: Cycle) {
        debug_assert!(self.can_pre(bank_idx, now));
        let t = self.config.timings.clone();
        self.banks[bank_idx].issue_pre(now, &t);
        self.precharges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn ch() -> Channel {
        Channel::new(DramConfig::ddr4_3200_2ch())
    }

    #[test]
    fn tccd_l_limits_same_bank_group() {
        let mut c = ch();
        let t = c.config.timings.clone();
        // Open rows in two banks of bank group 0 (banks 0 and 1).
        c.issue_act(0, 0, 0, 5, 0);
        c.issue_act(1, 0, 0, 5, t.t_rrd_l);
        let first_cas = t.t_rrd_l + t.t_rcd;
        c.issue_cas(0, 0, 5, false, first_cas);
        assert!(!c.can_cas(1, 0, 5, false, first_cas + t.t_ccd_l - 1));
        assert!(c.can_cas(1, 0, 5, false, first_cas + t.t_ccd_l));
    }

    #[test]
    fn tccd_s_allows_faster_cross_bank_group() {
        let mut c = ch();
        let t = c.config.timings.clone();
        // Bank 0 is (bg 0, bank 0); bank 4 is (bg 1, bank 0).
        c.issue_act(0, 0, 0, 5, 0);
        c.issue_act(4, 0, 1, 5, t.t_rrd_s);
        let first_cas = t.t_rrd_s + t.t_rcd;
        c.issue_cas(0, 0, 5, false, first_cas);
        assert!(c.can_cas(4, 1, 5, false, first_cas + t.t_ccd_s));
        assert!(t.t_ccd_s < t.t_ccd_l);
    }

    #[test]
    fn tfaw_limits_activation_rate() {
        let mut c = ch();
        let t = c.config.timings.clone();
        // Issue 4 ACTs to different bank groups as fast as tRRD_S allows.
        let mut now = 0;
        for (i, bank) in [0usize, 4, 8, 12].iter().enumerate() {
            assert!(c.can_act(*bank, 0, i, now), "ACT {i} at {now}");
            c.issue_act(*bank, 0, i, 1, now);
            now += t.t_rrd_s;
        }
        // The 5th ACT (bank 1, bg 0) must wait for the tFAW window.
        assert!(!c.can_act(1, 0, 0, now));
        assert!(c.can_act(1, 0, 0, t.t_faw));
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut c = ch();
        let t = c.config.timings.clone();
        c.issue_act(0, 0, 0, 5, 0);
        c.issue_act(4, 0, 1, 5, t.t_rrd_s);
        let w_at = t.t_rrd_s + t.t_rcd;
        c.issue_cas(0, 0, 5, true, w_at);
        let earliest_read = w_at + t.cwl + t.t_bl + t.t_wtr_s;
        assert!(!c.can_cas(4, 1, 5, false, earliest_read - 1));
        assert!(c.can_cas(4, 1, 5, false, earliest_read));
    }

    #[test]
    fn data_bus_counts_busy_ticks() {
        let mut c = ch();
        let t = c.config.timings.clone();
        c.issue_act(0, 0, 0, 5, 0);
        c.issue_cas(0, 0, 5, false, t.t_rcd);
        c.issue_cas(0, 0, 5, false, t.t_rcd + t.t_ccd_l);
        assert_eq!(c.data_busy_ticks, 2 * t.t_bl);
    }
}
