//! Per-channel DRAM attribution: command/refresh/idle tick breakdown,
//! request-queue depth histogram, and per-bank CAS outcomes.
//!
//! Like the core profile, every counter here is batch-exact: elided
//! quiescent spans are command-free by the skip layer's certificate, so
//! [`crate::ChannelController::credit_idle_ticks`] can credit them in one
//! step — the queue depth is frozen over the span, and the refresh/idle
//! split falls out of the frozen `refresh_until` watermark.

use dx100_common::Pow2Histogram;

/// MECE per-tick breakdown plus utilization detail for one DRAM channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelProfile {
    /// Ticks where a command issued (CAS, ACT, PRE, or a refresh start).
    pub cmd_ticks: u64,
    /// Ticks blocked mid-refresh (tRFC window, nothing may issue).
    pub refresh_ticks: u64,
    /// Ticks where nothing issued and no refresh was in progress.
    pub idle_ticks: u64,
    /// Request-buffer depth, sampled once per tick.
    pub queue_depth: Pow2Histogram,
    /// Per-bank CAS outcomes: row hit — the open row was reused.
    pub bank_hits: Vec<u64>,
    /// Per-bank CAS outcomes: row miss — the bank was closed, ACT only.
    pub bank_misses: Vec<u64>,
    /// Per-bank CAS outcomes: row conflict — another row was open, so the
    /// request forced a PRE before its ACT.
    pub bank_conflicts: Vec<u64>,
}

/// The three CAS outcomes a profiled controller distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// Served from the already open row.
    Hit,
    /// Bank was closed; paid ACT.
    Miss,
    /// Evicted another row first; paid PRE + ACT.
    Conflict,
}

impl ChannelProfile {
    /// An empty profile with per-bank counters sized for `banks`.
    pub fn new(banks: usize) -> Self {
        ChannelProfile {
            bank_hits: vec![0; banks],
            bank_misses: vec![0; banks],
            bank_conflicts: vec![0; banks],
            ..ChannelProfile::default()
        }
    }

    /// Total ticks attributed (must equal the channel's `stats.ticks`).
    pub fn attributed(&self) -> u64 {
        self.cmd_ticks + self.refresh_ticks + self.idle_ticks
    }

    /// Records one CAS outcome on `bank`.
    pub fn record_cas(&mut self, bank: usize, outcome: CasOutcome) {
        match outcome {
            CasOutcome::Hit => self.bank_hits[bank] += 1,
            CasOutcome::Miss => self.bank_misses[bank] += 1,
            CasOutcome::Conflict => self.bank_conflicts[bank] += 1,
        }
    }

    /// Whole-channel hit/miss/conflict totals.
    pub fn cas_totals(&self) -> (u64, u64, u64) {
        (
            self.bank_hits.iter().sum(),
            self.bank_misses.iter().sum(),
            self.bank_conflicts.iter().sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_outcomes_land_per_bank() {
        let mut p = ChannelProfile::new(4);
        p.record_cas(3, CasOutcome::Hit);
        p.record_cas(3, CasOutcome::Conflict);
        p.record_cas(0, CasOutcome::Miss);
        assert_eq!(p.bank_hits[3], 1);
        assert_eq!(p.bank_conflicts[3], 1);
        assert_eq!(p.bank_misses[0], 1);
        assert_eq!(p.cas_totals(), (1, 1, 1));
    }

    #[test]
    fn attributed_sums_tick_buckets() {
        let p = ChannelProfile {
            cmd_ticks: 5,
            refresh_ticks: 2,
            idle_ticks: 9,
            ..ChannelProfile::new(1)
        };
        assert_eq!(p.attributed(), 16);
    }
}
