//! DRAM organization, timing parameters, and top-level configuration.

use crate::mapping::AddrMap;

/// Physical organization of the DRAM system.
///
/// The paper's configuration (Table 3) is two channels of DDR4-3200, each
/// with one rank of 4 bank groups × 4 banks and 8 KB rows (128 cache-line
/// columns per row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Organization {
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Cache-line-sized columns per row (row-buffer size / 64 B).
    pub cols_per_row: u64,
}

impl Organization {
    /// Total banks in one channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Flat bank index within a channel for (rank, bank group, bank).
    pub fn bank_index(&self, rank: usize, bank_group: usize, bank: usize) -> usize {
        (rank * self.bank_groups + bank_group) * self.banks_per_group + bank
    }
}

/// DDR4 timing constraints, in DRAM clock ticks (tCK).
///
/// Values are the paper's Table 3 parameters for DDR4-3200 (tCK = 625 ps)
/// plus the standard JEDEC values for the constraints Table 3 leaves
/// implicit (CL, CWL, tWR, tRRD, tFAW, tWTR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramTimings {
    /// Row precharge: PRE → ACT same bank. 12.5 ns = 20 tCK.
    pub t_rp: u64,
    /// RAS-to-CAS: ACT → RD/WR same bank. 12.5 ns = 20 tCK.
    pub t_rcd: u64,
    /// CAS-to-CAS, different bank group. 2.5 ns = 4 tCK.
    pub t_ccd_s: u64,
    /// CAS-to-CAS, same bank group. 5.0 ns = 8 tCK.
    pub t_ccd_l: u64,
    /// Read-to-precharge. 7.5 ns = 12 tCK.
    pub t_rtp: u64,
    /// ACT → PRE same bank. 32.5 ns = 52 tCK.
    pub t_ras: u64,
    /// CAS read latency. CL22 = 13.75 ns = 22 tCK.
    pub cl: u64,
    /// CAS write latency. CWL16 = 16 tCK.
    pub cwl: u64,
    /// Burst length on the data bus (BL8 = 4 tCK).
    pub t_bl: u64,
    /// Write recovery: end of write data → PRE. 15 ns = 24 tCK.
    pub t_wr: u64,
    /// ACT → ACT different bank, different bank group.
    pub t_rrd_s: u64,
    /// ACT → ACT different bank, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window per rank. ~21.25 ns = 34 tCK.
    pub t_faw: u64,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: u64,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: u64,
    /// Refresh interval (tREFI). 7.8 µs = 12480 tCK.
    pub t_refi: u64,
    /// Refresh cycle time (tRFC). ~350 ns = 560 tCK.
    pub t_rfc: u64,
}

impl DramTimings {
    /// JEDEC DDR4-3200AA timings used throughout the paper.
    pub fn ddr4_3200() -> Self {
        DramTimings {
            t_rp: 20,
            t_rcd: 20,
            t_ccd_s: 4,
            t_ccd_l: 8,
            t_rtp: 12,
            t_ras: 52,
            cl: 22,
            cwl: 16,
            t_bl: 4,
            t_wr: 24,
            t_rrd_s: 4,
            t_rrd_l: 8,
            t_faw: 34,
            t_wtr_s: 4,
            t_wtr_l: 12,
            t_refi: 12480,
            t_rfc: 560,
        }
    }

    /// ACT → ACT same bank (row cycle): `tRAS + tRP`.
    pub fn t_rc(&self) -> u64 {
        self.t_ras + self.t_rp
    }
}

/// Full configuration of the DRAM back-end.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Physical layout.
    pub organization: Organization,
    /// Timing constraints in tCK.
    pub timings: DramTimings,
    /// Address-to-coordinate mapping scheme.
    pub addr_map: AddrMap,
    /// FR-FCFS request buffer entries per channel (Table 3: 32).
    pub request_buffer_size: usize,
    /// Age (in tCK) after which the oldest request is serviced strictly
    /// first, bounding starvation under continuous row hits.
    pub starvation_threshold: u64,
    /// Peak bandwidth of one channel in bytes per tCK (64 B / 4 tCK = 16).
    pub bytes_per_tick_per_channel: f64,
}

impl DramConfig {
    /// The paper's Table 3 memory system: 2 channels of DDR4-3200,
    /// 51.2 GB/s peak, 32-entry request buffer per channel, FR-FCFS.
    pub fn ddr4_3200_2ch() -> Self {
        Self::ddr4_3200_n_ch(2)
    }

    /// Same device parameters with an arbitrary channel count (the paper's
    /// scalability study in Figure 14 uses 4 channels).
    pub fn ddr4_3200_n_ch(channels: usize) -> Self {
        DramConfig {
            organization: Organization {
                channels,
                ranks: 1,
                bank_groups: 4,
                banks_per_group: 4,
                cols_per_row: 128,
            },
            timings: DramTimings::ddr4_3200(),
            addr_map: AddrMap::ChBgColBaRow,
            request_buffer_size: 32,
            starvation_threshold: 4096,
            bytes_per_tick_per_channel: 16.0,
        }
    }

    /// Peak bandwidth across all channels in GB/s (tCK = 625 ps).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        // bytes per tick * ticks per second / 1e9; 1 tick = 625 ps.
        self.bytes_per_tick_per_channel * self.organization.channels as f64 * 1.6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timings_match_table3() {
        let t = DramTimings::ddr4_3200();
        // Table 3: tRP/RCD = 12.5 ns, tCCD_S/L = 2.5/5.0 ns, tRTP = 7.5 ns,
        // tRAS = 32.5 ns, tCK = 625 ps.
        assert_eq!(t.t_rp as f64 * 0.625, 12.5);
        assert_eq!(t.t_rcd as f64 * 0.625, 12.5);
        assert_eq!(t.t_ccd_s as f64 * 0.625, 2.5);
        assert_eq!(t.t_ccd_l as f64 * 0.625, 5.0);
        assert_eq!(t.t_rtp as f64 * 0.625, 7.5);
        assert_eq!(t.t_ras as f64 * 0.625, 32.5);
        assert_eq!(t.t_rc(), 72);
    }

    #[test]
    fn peak_bandwidth_matches_table3() {
        // Table 3: 2 channels DDR4-3200 → 51.2 GB/s max.
        let cfg = DramConfig::ddr4_3200_2ch();
        assert!((cfg.peak_bandwidth_gbps() - 51.2).abs() < 1e-9);
        let cfg4 = DramConfig::ddr4_3200_n_ch(4);
        assert!((cfg4.peak_bandwidth_gbps() - 102.4).abs() < 1e-9);
    }

    #[test]
    fn organization_bank_indexing() {
        let org = DramConfig::ddr4_3200_2ch().organization;
        assert_eq!(org.banks_per_channel(), 16);
        assert_eq!(org.bank_index(0, 0, 0), 0);
        assert_eq!(org.bank_index(0, 3, 3), 15);
        // Row buffer: 128 columns * 64 B = 8 KB.
        assert_eq!(org.cols_per_row * 64, 8192);
    }
}
