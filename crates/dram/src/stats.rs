//! DRAM statistics: the measured quantities behind Figures 8 and 10.

use dx100_common::stats::{Ratio, RunningAverage};

/// Per-channel (or aggregated) DRAM statistics.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// DRAM ticks elapsed since the last stats reset.
    pub ticks: u64,
    /// Data-bus busy ticks since the last reset (bandwidth numerator).
    pub data_busy_ticks: u64,
    /// Read CAS commands completed.
    pub reads: u64,
    /// Write CAS commands completed.
    pub writes: u64,
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Row-buffer hits vs misses, counted per serviced request: a request is
    /// a hit if it was served from a row opened by *another* request.
    pub row_hits_misses: Ratio,
    /// Mean request-buffer occupancy as a fraction of capacity, sampled every
    /// tick (the paper's Figure 10c metric).
    pub occupancy: RunningAverage,
    /// Mean queuing latency of serviced requests in ticks.
    pub queue_latency: RunningAverage,
    /// Refresh cycles performed.
    pub refreshes: u64,
    /// Internal: counter baselines captured at the last reset.
    pub(crate) data_busy_base: u64,
    pub(crate) act_base: u64,
    pub(crate) pre_base: u64,
}

impl DramStats {
    /// Fraction of data-bus ticks that carried data, in `[0, 1]`.
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.data_busy_ticks as f64 / self.ticks as f64
        }
    }

    /// Achieved bandwidth in GB/s for a given per-channel peak.
    pub fn bandwidth_gbps(&self, peak_per_channel_gbps: f64) -> f64 {
        self.bandwidth_utilization() * peak_per_channel_gbps
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_buffer_hit_rate(&self) -> f64 {
        self.row_hits_misses.rate()
    }

    /// Total serviced requests.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Folds another channel's statistics into this aggregate.
    ///
    /// Channels tick in lockstep, so `ticks` is the max rather than the sum;
    /// utilization then averages correctly across channels because
    /// `data_busy_ticks` sums.
    pub fn merge(&mut self, other: &DramStats) {
        self.data_busy_ticks += other.data_busy_ticks;
        self.reads += other.reads;
        self.writes += other.writes;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits_misses.merge(&other.row_hits_misses);
        self.occupancy.merge(&other.occupancy);
        self.queue_latency.merge(&other.queue_latency);
        self.ticks = self.ticks.max(other.ticks);
    }
}

/// Bandwidth utilization when `data_busy_ticks` spans multiple channels: the
/// utilization of the *system* is busy-ticks divided by `channels × ticks`.
pub fn system_bandwidth_utilization(agg: &DramStats, channels: usize) -> f64 {
    if agg.ticks == 0 {
        0.0
    } else {
        agg.data_busy_ticks as f64 / (agg.ticks as f64 * channels as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = DramStats {
            ticks: 100,
            data_busy_ticks: 40,
            ..Default::default()
        };
        assert_eq!(s.bandwidth_utilization(), 0.4);
        assert!((s.bandwidth_gbps(25.6) - 10.24).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = DramStats {
            ticks: 100,
            data_busy_ticks: 10,
            reads: 5,
            ..Default::default()
        };
        let b = DramStats {
            ticks: 100,
            data_busy_ticks: 30,
            reads: 7,
            writes: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ticks, 100);
        assert_eq!(a.data_busy_ticks, 40);
        assert_eq!(a.reads, 12);
        assert_eq!(a.writes, 2);
        assert_eq!(system_bandwidth_utilization(&a, 2), 0.2);
    }

    #[test]
    fn merge_preserves_hit_rate() {
        let mut a = DramStats::default();
        a.row_hits_misses.hit();
        a.row_hits_misses.miss();
        let mut b = DramStats::default();
        b.row_hits_misses.hit();
        b.row_hits_misses.hit();
        a.merge(&b);
        assert_eq!(a.row_hits_misses.hits(), 3);
        assert_eq!(a.row_hits_misses.misses(), 1);
        assert_eq!(a.row_buffer_hit_rate(), 0.75);
    }
}
