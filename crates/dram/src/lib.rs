//! Command-level DDR4 DRAM simulator with FR-FCFS memory controllers.
//!
//! This crate is the reproduction's substitute for Ramulator2: it models the
//! paper's memory system (Table 3) at DRAM-command granularity — channels,
//! ranks, bank groups, banks, row buffers, and the full set of timing
//! constraints (`tRP`, `tRCD`, `tCCD_S/L`, `tRTP`, `tRAS`, `tFAW`, ...), plus
//! a per-channel FR-FCFS scheduler with a 32-entry request buffer.
//!
//! The quantities the paper's Figures 8 and 10 measure fall out of this model
//! directly: **row-buffer hit rate** (was a request served from an already
//! open row?), **bandwidth utilization** (data-bus busy fraction), and
//! **request-buffer occupancy** (mean buffer fill sampled every DRAM tick).
//!
//! Everything inside this crate is clocked in DRAM ticks (`tCK` = 625 ps for
//! DDR4-3200); the system glue converts to CPU cycles (one DRAM tick = two
//! 3.2 GHz CPU cycles).
//!
//! # Example
//!
//! ```
//! use dx100_common::LineAddr;
//! use dx100_dram::{DramConfig, DramSystem, MemRequest};
//!
//! let mut dram = DramSystem::new(DramConfig::ddr4_3200_2ch());
//! assert!(dram.try_enqueue(MemRequest::read(1, LineAddr(0)), 0));
//! let mut tick = 0;
//! let resp = loop {
//!     dram.tick(tick);
//!     if let Some(r) = dram.pop_response() {
//!         break r;
//!     }
//!     tick += 1;
//! };
//! assert_eq!(resp.id, 1);
//! // A cold access pays at least ACT + CAS latency.
//! assert!(resp.finished_at >= 42);
//! ```

pub mod bank;
pub mod channel;
pub mod config;
pub mod controller;
pub mod mapping;
pub mod profile;
pub mod stats;

pub use config::{DramConfig, DramTimings, Organization};
pub use controller::ChannelController;
pub use mapping::{AddrMap, DramCoord};
pub use profile::{CasOutcome, ChannelProfile};
pub use stats::DramStats;

use dx100_common::{Cycle, LineAddr, ReqId, TraceHandle};

/// A memory request at cache-line granularity, as seen by the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier echoed in the matching [`MemResponse`].
    pub id: ReqId,
    /// Target cache line.
    pub line: LineAddr,
    /// True for writes (no data payload is modeled at this level).
    pub is_write: bool,
}

impl MemRequest {
    /// Convenience constructor for a read request.
    pub fn read(id: ReqId, line: LineAddr) -> Self {
        MemRequest {
            id,
            line,
            is_write: false,
        }
    }

    /// Convenience constructor for a write request.
    pub fn write(id: ReqId, line: LineAddr) -> Self {
        MemRequest {
            id,
            line,
            is_write: true,
        }
    }
}

/// Completion notification for a [`MemRequest`].
///
/// Reads complete when the last data beat leaves the DRAM; writes complete
/// when the write command issues (write data latency is accounted inside the
/// channel's bus model but the requester does not wait for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Identifier from the originating request.
    pub id: ReqId,
    /// Target cache line of the originating request.
    pub line: LineAddr,
    /// True if this acknowledges a write.
    pub is_write: bool,
    /// DRAM tick at which the request finished.
    pub finished_at: Cycle,
}

/// The full DRAM back-end: one FR-FCFS controller per channel plus shared
/// address mapping and aggregate statistics.
#[derive(Clone, Debug)]
pub struct DramSystem {
    config: DramConfig,
    controllers: Vec<ChannelController>,
    responses: std::collections::VecDeque<MemResponse>,
}

impl dx100_common::Checkpoint for DramSystem {
    type State = DramSystem;

    fn save(&self) -> Result<Self::State, dx100_common::CheckpointError> {
        Ok(self.clone())
    }

    fn restore(&mut self, state: &Self::State) {
        *self = state.clone();
    }
}

impl DramSystem {
    /// Builds the DRAM system for `config`.
    pub fn new(config: DramConfig) -> Self {
        let controllers = (0..config.organization.channels)
            .map(|ch| ChannelController::new(ch, config.clone()))
            .collect();
        DramSystem {
            config,
            controllers,
            responses: std::collections::VecDeque::new(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Channel index that `line` maps to.
    pub fn channel_of(&self, line: LineAddr) -> usize {
        self.config
            .addr_map
            .decode(line, &self.config.organization)
            .channel
    }

    /// Full DRAM coordinates of `line`.
    pub fn coord_of(&self, line: LineAddr) -> DramCoord {
        self.config.addr_map.decode(line, &self.config.organization)
    }

    /// Attempts to enqueue a request into its channel's request buffer at
    /// DRAM tick `now`. Returns `false` (and drops nothing — the caller keeps
    /// ownership semantics by value) if the buffer is full; the caller must
    /// retry later, which is exactly the back-pressure a real controller
    /// exerts on the on-chip fabric.
    pub fn try_enqueue(&mut self, req: MemRequest, now: Cycle) -> bool {
        let coord = self
            .config
            .addr_map
            .decode(req.line, &self.config.organization);
        self.controllers[coord.channel].try_enqueue(req, coord, now)
    }

    /// Free request-buffer slots in the channel that `line` maps to.
    pub fn free_slots(&self, line: LineAddr) -> usize {
        let ch = self.channel_of(line);
        self.controllers[ch].free_slots()
    }

    /// Advances every channel by one DRAM tick.
    pub fn tick(&mut self, now: Cycle) {
        for ctrl in &mut self.controllers {
            ctrl.tick(now, &mut self.responses);
        }
    }

    /// Pops the next completed request, if any (FIFO by completion).
    pub fn pop_response(&mut self) -> Option<MemResponse> {
        self.responses.pop_front()
    }

    /// Whether all request buffers are empty and no command is in flight.
    pub fn is_idle(&self) -> bool {
        self.responses.is_empty() && self.controllers.iter().all(|c| c.is_idle())
    }

    /// Whether any completed response is waiting to be popped.
    pub fn has_pending_responses(&self) -> bool {
        !self.responses.is_empty()
    }

    /// Earliest DRAM tick ≥ `from` at which any channel might do more than
    /// bookkeeping (see [`ChannelController::next_event`]). A pending
    /// undelivered response makes the system active immediately.
    pub fn next_event(&self, from: Cycle) -> Option<Cycle> {
        if !self.responses.is_empty() {
            return Some(from);
        }
        self.controllers
            .iter()
            .filter_map(|c| c.next_event(from))
            .min()
    }

    /// Credits `n` skipped ticks of bookkeeping starting at tick `from` to
    /// every channel (see [`ChannelController::credit_idle_ticks`]).
    pub fn credit_idle_ticks(&mut self, from: Cycle, n: u64) {
        for c in &mut self.controllers {
            c.credit_idle_ticks(from, n);
        }
    }

    /// Aggregate statistics across all channels.
    pub fn stats(&self) -> DramStats {
        let mut agg = DramStats::default();
        for c in &self.controllers {
            agg.merge(c.stats());
        }
        agg
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<DramStats> {
        self.controllers.iter().map(|c| c.stats().clone()).collect()
    }

    /// Turns on cycle attribution for every channel.
    pub fn enable_profile(&mut self) {
        for c in &mut self.controllers {
            c.enable_profile();
        }
    }

    /// Per-channel attribution profiles, in channel order. `None` entries
    /// mean profiling was never enabled.
    pub fn channel_profiles(&self) -> Vec<Option<&ChannelProfile>> {
        self.controllers.iter().map(|c| c.profile()).collect()
    }

    /// Resets all statistics counters (used to exclude warm-up phases from
    /// region-of-interest measurements).
    pub fn reset_stats(&mut self) {
        for c in &mut self.controllers {
            c.reset_stats();
        }
    }

    /// Attaches event tracing: each channel gets its own track, and
    /// `ts_scale` converts DRAM ticks onto the trace's CPU-cycle timeline
    /// (2 for DDR4-3200 under a 3.2 GHz core).
    pub fn attach_trace(&mut self, root: &TraceHandle, ts_scale: u64) {
        let scaled = root.scaled(ts_scale);
        for (ch, ctrl) in self.controllers.iter_mut().enumerate() {
            ctrl.set_trace(scaled.track(format!("DRAM ch{ch}")));
        }
    }
}
