//! Legality checks (paper Section 4.2 — Legality).
//!
//! Offloading requires that (a) no access in the loop stores to an array the
//! transformation hoists loads from — any aliasing would let a hoisted load
//! observe stale data (the Gauss–Seidel preconditioner is the paper's
//! example of a rejected kernel) — and (b) no scalar value is carried from
//! one iteration to the next, since DX100 executes iterations in bulk.

use std::collections::HashSet;

use crate::detect::{detect, AccessKind};
use crate::ir::{ArrayId, Expr, Loop, Stmt, VarId};

/// Why a loop cannot be offloaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Illegal {
    /// A hoisted load's array is also stored in the loop (aliasing).
    StoreAliasesHoistedLoad(ArrayId),
    /// A scalar is live across iterations.
    LoopCarriedScalar(VarId),
    /// No indirect access was found — nothing to offload.
    NothingToOffload,
}

impl std::fmt::Display for Illegal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Illegal::StoreAliasesHoistedLoad(a) => {
                write!(
                    f,
                    "array {a} is both loaded indirectly and stored in the loop"
                )
            }
            Illegal::LoopCarriedScalar(v) => write!(f, "scalar {v} is loop-carried"),
            Illegal::NothingToOffload => write!(f, "no indirect access to offload"),
        }
    }
}

impl std::error::Error for Illegal {}

/// Arrays written anywhere in a statement list (stores and RMWs).
fn stored_arrays(body: &[Stmt], out: &mut HashSet<ArrayId>) {
    for s in body {
        match s {
            Stmt::Store(a, _, _) | Stmt::Rmw(a, _, _, _) => {
                out.insert(*a);
            }
            Stmt::If(_, b) => stored_arrays(b, out),
            Stmt::For(l) => stored_arrays(&l.body, out),
            Stmt::Assign(_, _) | Stmt::BufWrite(_, _, _) => {}
        }
    }
}

/// Arrays loaded anywhere in a statement list (including index chains).
fn loaded_arrays(body: &[Stmt], out: &mut HashSet<ArrayId>) {
    fn expr(e: &Expr, out: &mut HashSet<ArrayId>) {
        let mut v = Vec::new();
        e.loaded_arrays(&mut v);
        out.extend(v);
    }
    for s in body {
        match s {
            Stmt::Store(_, i, v) => {
                expr(i, out);
                expr(v, out);
            }
            Stmt::Rmw(_, i, _, v) => {
                expr(i, out);
                expr(v, out);
            }
            Stmt::Assign(_, e) => expr(e, out),
            Stmt::If(c, b) => {
                expr(c, out);
                loaded_arrays(b, out);
            }
            Stmt::For(l) => {
                expr(&l.lo, out);
                expr(&l.hi, out);
                loaded_arrays(&l.body, out);
            }
            Stmt::BufWrite(_, i, v) => {
                expr(i, out);
                expr(v, out);
            }
        }
    }
}

/// Variables read before being assigned within one iteration — loop-carried
/// candidates. The induction variable is exempt.
fn loop_carried_vars(body: &[Stmt], iv: VarId) -> Vec<VarId> {
    let mut assigned: HashSet<VarId> = HashSet::new();
    let mut carried = Vec::new();
    fn expr_reads(e: &Expr, out: &mut Vec<VarId>) {
        match e {
            Expr::Var(v) => out.push(*v),
            Expr::Load(_, i) | Expr::BufRead(_, i) => expr_reads(i, out),
            Expr::Bin(_, a, b) => {
                expr_reads(a, out);
                expr_reads(b, out);
            }
            Expr::Const(_) => {}
        }
    }
    fn walk(body: &[Stmt], iv: VarId, assigned: &mut HashSet<VarId>, carried: &mut Vec<VarId>) {
        for s in body {
            let mut reads = Vec::new();
            match s {
                Stmt::Store(_, i, v) => {
                    expr_reads(i, &mut reads);
                    expr_reads(v, &mut reads);
                }
                Stmt::Rmw(_, i, _, v) => {
                    expr_reads(i, &mut reads);
                    expr_reads(v, &mut reads);
                }
                Stmt::Assign(v, e) => {
                    expr_reads(e, &mut reads);
                    for r in &reads {
                        if *r != iv && !assigned.contains(r) {
                            carried.push(*r);
                        }
                    }
                    assigned.insert(*v);
                    continue;
                }
                Stmt::If(c, b) => {
                    expr_reads(c, &mut reads);
                    for r in &reads {
                        if *r != iv && !assigned.contains(r) {
                            carried.push(*r);
                        }
                    }
                    walk(b, iv, assigned, carried);
                    continue;
                }
                Stmt::BufWrite(_, i, v) => {
                    expr_reads(i, &mut reads);
                    expr_reads(v, &mut reads);
                }
                Stmt::For(l) => {
                    expr_reads(&l.lo, &mut reads);
                    expr_reads(&l.hi, &mut reads);
                    let mut inner_assigned = assigned.clone();
                    inner_assigned.insert(l.iv);
                    for r in &reads {
                        if *r != iv && !assigned.contains(r) {
                            carried.push(*r);
                        }
                    }
                    walk(&l.body, iv, &mut inner_assigned, carried);
                    continue;
                }
            }
            for r in &reads {
                if *r != iv && !assigned.contains(r) {
                    carried.push(*r);
                }
            }
        }
    }
    walk(body, iv, &mut assigned, &mut carried);
    carried
}

/// Checks whether `l` may legally be offloaded to DX100.
///
/// # Errors
/// Returns the first violated rule.
pub fn check(l: &Loop) -> Result<(), Illegal> {
    // Loop-carried scalars are checked first: temp inlining inside `detect`
    // assumes iteration-local temporaries.
    if let Some(v) = loop_carried_vars(&l.body, l.iv).first() {
        return Err(Illegal::LoopCarriedScalar(*v));
    }
    let accesses = detect(l);
    if accesses.is_empty() {
        return Err(Illegal::NothingToOffload);
    }
    // Arrays whose loads would be hoisted: every array read through an
    // indirect chain, plus the index arrays feeding them.
    let mut hoisted_reads: HashSet<ArrayId> = HashSet::new();
    for a in &accesses {
        if a.kind == AccessKind::Load {
            hoisted_reads.insert(a.array);
        }
        let mut idx_arrays = Vec::new();
        a.index.loaded_arrays(&mut idx_arrays);
        hoisted_reads.extend(idx_arrays);
    }
    let mut stored = HashSet::new();
    stored_arrays(&l.body, &mut stored);
    if let Some(conflict) = hoisted_reads.intersection(&stored).next() {
        return Err(Illegal::StoreAliasesHoistedLoad(*conflict));
    }
    // RMW targets that are also plainly loaded elsewhere alias too.
    let mut all_loaded = HashSet::new();
    loaded_arrays(&l.body, &mut all_loaded);
    for a in &accesses {
        if matches!(a.kind, AccessKind::Rmw | AccessKind::Store) && all_loaded.contains(&a.array) {
            return Err(Illegal::StoreAliasesHoistedLoad(a.array));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Program, RmwOp};

    #[test]
    fn clean_gather_is_legal() {
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let c = p.array("C", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Store(
                c,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        };
        assert!(check(&l).is_ok());
    }

    #[test]
    fn gauss_seidel_pattern_rejected() {
        // A[B[i]] loaded AND A[i] stored: potential aliasing (the paper's
        // Gauss–Seidel example).
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Store(
                a,
                Expr::Var(i),
                Expr::load(a, Expr::load(b, Expr::Var(i))),
            )],
        };
        assert_eq!(check(&l), Err(Illegal::StoreAliasesHoistedLoad(a)));
    }

    #[test]
    fn index_array_store_rejected() {
        // B[i] = ...; x = A[B[i]] — storing the index array aliases the
        // hoisted index loads.
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let c = p.array("C", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![
                Stmt::Store(b, Expr::Var(i), Expr::Var(i)),
                Stmt::Store(c, Expr::Var(i), Expr::load(a, Expr::load(b, Expr::Var(i)))),
            ],
        };
        assert_eq!(check(&l), Err(Illegal::StoreAliasesHoistedLoad(b)));
    }

    #[test]
    fn loop_carried_scalar_rejected() {
        // acc = acc + A[B[i]]: acc read before assigned.
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let i = p.var();
        let acc = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Assign(
                acc,
                Expr::bin(
                    BinOp::Add,
                    Expr::Var(acc),
                    Expr::load(a, Expr::load(b, Expr::Var(i))),
                ),
            )],
        };
        assert_eq!(check(&l), Err(Illegal::LoopCarriedScalar(acc)));
    }

    #[test]
    fn rmw_to_unread_array_is_legal() {
        // A[B[i]] += C[i]: A never loaded directly, so reordering is safe.
        let mut p = Program::new();
        let a = p.array("A", 8);
        let b = p.array("B", 4);
        let c = p.array("C", 4);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(4),
            body: vec![Stmt::Rmw(
                a,
                Expr::load(b, Expr::Var(i)),
                RmwOp::Add,
                Expr::load(c, Expr::Var(i)),
            )],
        };
        assert!(check(&l).is_ok());
    }

    #[test]
    fn pure_streaming_loop_has_nothing_to_offload() {
        let mut p = Program::new();
        let a = p.array("A", 8);
        let c = p.array("C", 8);
        let i = p.var();
        let l = Loop {
            iv: i,
            lo: Expr::Const(0),
            hi: Expr::Const(8),
            body: vec![Stmt::Store(c, Expr::Var(i), Expr::load(a, Expr::Var(i)))],
        };
        assert_eq!(check(&l), Err(Illegal::NothingToOffload));
    }
}
